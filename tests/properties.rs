//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use tracecache_repro::bcg::{BcgConfig, BranchCorrelationGraph};
use tracecache_repro::bytecode::{BlockId, CmpOp, FuncId, Intrinsic, Program, ProgramBuilder};
use tracecache_repro::tracecache::{ConstructorConfig, TraceCache, TraceConstructor, TraceRuntime};
use tracecache_repro::vm::{NullObserver, Value, Vm};

fn blk(b: u32) -> BlockId {
    BlockId::new(FuncId(0), b)
}

/// A program whose entry function has at least `min_blocks` basic blocks,
/// used to give the trace runtime real block lengths.
fn many_block_program(min_blocks: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, false);
    let b = pb.function_mut(f);
    let exit = b.new_label();
    // A chain of conditional skips creates one block per test.
    for _ in 0..min_blocks {
        b.load(0).if_i(CmpOp::Lt, exit);
        b.nop();
    }
    b.bind(exit);
    b.ret_void();
    pb.build(f).expect("builds")
}

proptest! {
    /// The profiler's counters stay internally consistent on arbitrary
    /// block streams.
    #[test]
    fn bcg_invariants_hold_on_random_streams(
        stream in prop::collection::vec(0u32..8, 1..2000),
        delay in 1u32..128,
        threshold in 0.5f64..1.0,
        decay in prop::sample::select(vec![16u32, 64, 256]),
    ) {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig {
            start_delay: delay,
            threshold,
            decay_interval: decay,
            ..BcgConfig::paper_default()
        });
        for &s in &stream {
            bcg.observe(blk(s));
        }
        prop_assert_eq!(bcg.stats().dispatches, stream.len() as u64);
        for (_, node) in bcg.iter() {
            let sum: u32 = node.successors().iter().map(|s| u32::from(s.count)).sum();
            prop_assert_eq!(node.total_weight(), sum);
            for s in node.successors() {
                let c = node.correlation(s);
                prop_assert!((0.0..=1.0).contains(&c));
            }
            if let Some(p) = node.predicted() {
                prop_assert!(node.successors().iter().any(|s| s.to_block == p.to_block));
            }
            if let Some(m) = node.max_successor() {
                prop_assert!(u32::from(m.count) <= node.total_weight());
            }
        }
    }

    /// Every trace the constructor installs satisfies its completion
    /// threshold, length bounds, and entry-link discipline.
    #[test]
    fn constructed_traces_satisfy_invariants(
        stream in prop::collection::vec(0u32..6, 200..3000),
        threshold in prop::sample::select(vec![0.90f64, 0.95, 0.97, 0.99]),
    ) {
        let mut bcg = BranchCorrelationGraph::new(
            BcgConfig::paper_default()
                .with_start_delay(4)
                .with_threshold(threshold),
        );
        let mut cache = TraceCache::new();
        let mut ctor = TraceConstructor::new(
            ConstructorConfig::paper_default().with_threshold(threshold),
        );
        for &s in &stream {
            bcg.observe(blk(s));
            if bcg.has_signals() {
                let sigs = bcg.take_signals();
                ctor.handle_batch(&sigs, &mut bcg, &mut cache);
            }
        }
        let cfg = ctor.config();
        for trace in cache.iter_traces() {
            prop_assert!(trace.expected_completion() >= threshold - 1e-9);
            prop_assert!(trace.expected_completion() <= 1.0 + 1e-9);
            prop_assert!(trace.len() >= cfg.min_trace_blocks);
            prop_assert!(trace.len() <= cfg.max_trace_blocks);
        }
        for (entry, trace) in cache.iter_links() {
            prop_assert_eq!(entry.1, trace.blocks()[0]);
        }
    }

    /// The trace runtime's accounting balances on arbitrary streams over
    /// arbitrary caches.
    #[test]
    fn runtime_accounting_balances(
        stream in prop::collection::vec(0u32..8, 1..1500),
        traces in prop::collection::vec(
            (0u32..8, prop::collection::vec(0u32..8, 1..6)),
            0..10
        ),
    ) {
        let program = many_block_program(8);
        let mut cache = TraceCache::new();
        for (from, blocks) in traces {
            let seq: Vec<BlockId> = blocks.iter().map(|&b| blk(b)).collect();
            cache.insert_and_link((blk(from), seq[0]), seq, 0.97);
        }
        let mut rt = TraceRuntime::new();
        for &s in &stream {
            rt.on_block(blk(s), &cache, &program);
        }
        rt.finish_stream();
        let st = rt.stats();
        prop_assert_eq!(st.entered, st.completed + st.exited_early);
        // Every dispatched block lands in exactly one bucket.
        prop_assert_eq!(
            st.blocks_in_completed + st.blocks_in_partial + st.blocks_outside,
            stream.len() as u64
        );
        prop_assert!(st.trace_dispatches() <= stream.len() as u64);
    }

    /// Conditional-branch bytecode agrees with native comparison
    /// semantics for all operators and operands.
    #[test]
    fn branch_semantics_match_native(
        a in any::<i64>(),
        b in any::<i64>(),
        op_idx in 0usize..6,
    ) {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let op = ops[op_idx];
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 2, true);
        {
            let fb = pb.function_mut(f);
            let taken = fb.new_label();
            fb.load(0).load(1).if_icmp(op, taken);
            fb.iconst(0).ret();
            fb.bind(taken);
            fb.iconst(1).ret();
        }
        let program = pb.build(f).expect("builds");
        let mut vm = Vm::new(&program);
        let r = vm
            .run(&[Value::Int(a), Value::Int(b)], &mut NullObserver)
            .expect("runs");
        prop_assert_eq!(r, Some(Value::Int(i64::from(op.eval_i64(a, b)))));
    }

    /// Random straight-line arithmetic programs verify and execute with
    /// exactly one block dispatch.
    #[test]
    fn straight_line_programs_verify_and_run(
        ops in prop::collection::vec(0u8..7, 0..200),
        seed in any::<i64>(),
    ) {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        let mut depth = 0usize;
        let expected_len;
        {
            let fb = pb.function_mut(f);
            fb.load(0);
            depth += 1;
            for &o in &ops {
                // Only emit ops legal at the current stack depth.
                match o {
                    0 => {
                        fb.iconst(seed ^ 0x5a5a);
                        depth += 1;
                    }
                    1 if depth >= 1 => {
                        fb.dup();
                        depth += 1;
                    }
                    2 if depth >= 2 => {
                        fb.iadd();
                        depth -= 1;
                    }
                    3 if depth >= 2 => {
                        fb.imul();
                        depth -= 1;
                    }
                    4 if depth >= 2 => {
                        fb.ixor();
                        depth -= 1;
                    }
                    5 if depth >= 1 => {
                        fb.ineg();
                    }
                    6 if depth >= 2 => {
                        fb.swap();
                    }
                    _ => {}
                }
            }
            // Drain the stack through the checksum intrinsic.
            while depth > 0 {
                fb.intrinsic(Intrinsic::Checksum);
                depth -= 1;
            }
            fb.ret_void();
            expected_len = fb.len() as u64;
        }
        let program = pb.build(f).expect("straight-line code must verify");
        let mut vm = Vm::new(&program);
        vm.run(&[Value::Int(seed)], &mut NullObserver).expect("runs");
        prop_assert_eq!(vm.stats().block_dispatches, 1);
        prop_assert_eq!(vm.stats().instructions, expected_len);
    }
}

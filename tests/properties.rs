//! Property-based tests over the core data structures and invariants.
//!
//! Offline replacement for the former `proptest` suite: each property is
//! a seeded loop over the in-tree PRNG
//! ([`tracecache_repro::workloads::prng`]), so runs are deterministic
//! and reproducible from the printed seed. Case `k` of a property uses
//! `seed_stream(BASE_SEED, k)` — the workspace-wide seeding convention —
//! so a printed seed reproduces the exact inputs in any harness; every
//! assert message carries it.
//!
//! `cargo test` runs a quick sweep; build with
//! `--features exhaustive-tests` for a deeper one.

use tracecache_repro::bcg::{BcgConfig, BranchCorrelationGraph};
use tracecache_repro::bytecode::{BlockId, CmpOp, FuncId, Intrinsic, Program, ProgramBuilder};
use tracecache_repro::tracecache::{ConstructorConfig, TraceCache, TraceConstructor, TraceRuntime};
use tracecache_repro::vm::{NullObserver, Value, Vm};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};

/// Base seed for every property in this file (case `k` uses
/// `seed_stream(BASE_SEED, k)`).
const BASE_SEED: u64 = 0x7070_5eed;

/// Cases per property: quick by default, deep under `exhaustive-tests`.
fn cases() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        512
    } else {
        64
    }
}

fn blk(b: u32) -> BlockId {
    BlockId::new(FuncId(0), b)
}

/// A program whose entry function has at least `min_blocks` basic blocks,
/// used to give the trace runtime real block lengths.
fn many_block_program(min_blocks: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, false);
    let b = pb.function_mut(f);
    let exit = b.new_label();
    // A chain of conditional skips creates one block per test.
    for _ in 0..min_blocks {
        b.load(0).if_i(CmpOp::Lt, exit);
        b.nop();
    }
    b.bind(exit);
    b.ret_void();
    pb.build(f).expect("builds")
}

/// The profiler's counters stay internally consistent on arbitrary
/// block streams.
#[test]
fn bcg_invariants_hold_on_random_streams() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stream: Vec<u32> = (0..rng.range_usize(1, 2000))
            .map(|_| rng.range_u32(0, 8))
            .collect();
        let delay = rng.range_u32(1, 128);
        let threshold = rng.range_f64(0.5, 1.0);
        let decay = *rng.pick(&[16u32, 64, 256]);

        let mut bcg = BranchCorrelationGraph::new(BcgConfig {
            start_delay: delay,
            threshold,
            decay_interval: decay,
            ..BcgConfig::paper_default()
        });
        for &s in &stream {
            bcg.observe(blk(s));
        }
        assert_eq!(
            bcg.stats().dispatches,
            stream.len() as u64,
            "seed {seed:#x}"
        );
        for (_, node) in bcg.iter() {
            let sum: u32 = node.successors().iter().map(|s| u32::from(s.count)).sum();
            assert_eq!(node.total_weight(), sum, "seed {seed:#x}");
            for s in node.successors() {
                let c = node.correlation(s);
                assert!((0.0..=1.0).contains(&c), "seed {seed:#x}: correlation {c}");
            }
            if let Some(p) = node.predicted() {
                assert!(
                    node.successors().iter().any(|s| s.to_block == p.to_block),
                    "seed {seed:#x}"
                );
            }
            if let Some(m) = node.max_successor() {
                assert!(u32::from(m.count) <= node.total_weight(), "seed {seed:#x}");
            }
        }
    }
}

/// Every trace the constructor installs satisfies its completion
/// threshold, length bounds, and entry-link discipline.
#[test]
fn constructed_traces_satisfy_invariants() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stream: Vec<u32> = (0..rng.range_usize(200, 3000))
            .map(|_| rng.range_u32(0, 6))
            .collect();
        let threshold = *rng.pick(&[0.90f64, 0.95, 0.97, 0.99]);

        let mut bcg = BranchCorrelationGraph::new(
            BcgConfig::paper_default()
                .with_start_delay(4)
                .with_threshold(threshold),
        );
        let mut cache = TraceCache::new();
        let mut ctor =
            TraceConstructor::new(ConstructorConfig::paper_default().with_threshold(threshold));
        for &s in &stream {
            bcg.observe(blk(s));
            if bcg.has_signals() {
                let sigs = bcg.take_signals();
                ctor.handle_batch(&sigs, &mut bcg, &mut cache);
            }
        }
        let cfg = ctor.config();
        for trace in cache.iter_traces() {
            assert!(
                trace.expected_completion() >= threshold - 1e-9,
                "seed {seed:#x}"
            );
            assert!(trace.expected_completion() <= 1.0 + 1e-9, "seed {seed:#x}");
            assert!(trace.len() >= cfg.min_trace_blocks, "seed {seed:#x}");
            assert!(trace.len() <= cfg.max_trace_blocks, "seed {seed:#x}");
        }
        for (entry, trace) in cache.iter_links() {
            assert_eq!(entry.1, trace.blocks()[0], "seed {seed:#x}");
        }
    }
}

/// The trace runtime's accounting balances on arbitrary streams over
/// arbitrary caches.
#[test]
fn runtime_accounting_balances() {
    let program = many_block_program(8);
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stream: Vec<u32> = (0..rng.range_usize(1, 1500))
            .map(|_| rng.range_u32(0, 8))
            .collect();

        let mut cache = TraceCache::new();
        for _ in 0..rng.range_usize(0, 10) {
            let from = rng.range_u32(0, 8);
            let seq: Vec<BlockId> = (0..rng.range_usize(1, 6))
                .map(|_| blk(rng.range_u32(0, 8)))
                .collect();
            cache.insert_and_link((blk(from), seq[0]), seq, 0.97);
        }
        let mut rt = TraceRuntime::new();
        for &s in &stream {
            rt.on_block(blk(s), &cache, &program);
        }
        rt.finish_stream();
        let st = rt.stats();
        assert_eq!(st.entered, st.completed + st.exited_early, "seed {seed:#x}");
        // Every dispatched block lands in exactly one bucket.
        assert_eq!(
            st.blocks_in_completed + st.blocks_in_partial + st.blocks_outside,
            stream.len() as u64,
            "seed {seed:#x}"
        );
        assert!(
            st.trace_dispatches() <= stream.len() as u64,
            "seed {seed:#x}"
        );
    }
}

/// Conditional-branch bytecode agrees with native comparison semantics
/// for all operators and operands (every operator is swept each case).
#[test]
fn branch_semantics_match_native() {
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        // Mix full-range operands with near-equal ones so Eq/Ne/Le/Ge
        // see both outcomes often.
        let a = rng.next_i64();
        let b = if rng.chance(0.25) {
            a.wrapping_add(i64::from(rng.range_u32(0, 3)) - 1)
        } else {
            rng.next_i64()
        };
        for op in ops {
            let mut pb = ProgramBuilder::new();
            let f = pb.declare_function("main", 2, true);
            {
                let fb = pb.function_mut(f);
                let taken = fb.new_label();
                fb.load(0).load(1).if_icmp(op, taken);
                fb.iconst(0).ret();
                fb.bind(taken);
                fb.iconst(1).ret();
            }
            let program = pb.build(f).expect("builds");
            let mut vm = Vm::new(&program);
            let r = vm
                .run(&[Value::Int(a), Value::Int(b)], &mut NullObserver)
                .expect("runs");
            assert_eq!(
                r,
                Some(Value::Int(i64::from(op.eval_i64(a, b)))),
                "seed {seed:#x}: {a} {op:?} {b}"
            );
        }
    }
}

/// Random straight-line arithmetic programs verify and execute with
/// exactly one block dispatch.
#[test]
fn straight_line_programs_verify_and_run() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let ops: Vec<u8> = (0..rng.range_usize(0, 200))
            .map(|_| rng.range_u32(0, 7) as u8)
            .collect();
        let operand = rng.next_i64();

        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        let mut depth = 0usize;
        let expected_len;
        {
            let fb = pb.function_mut(f);
            fb.load(0);
            depth += 1;
            for &o in &ops {
                // Only emit ops legal at the current stack depth.
                match o {
                    0 => {
                        fb.iconst(operand ^ 0x5a5a);
                        depth += 1;
                    }
                    1 if depth >= 1 => {
                        fb.dup();
                        depth += 1;
                    }
                    2 if depth >= 2 => {
                        fb.iadd();
                        depth -= 1;
                    }
                    3 if depth >= 2 => {
                        fb.imul();
                        depth -= 1;
                    }
                    4 if depth >= 2 => {
                        fb.ixor();
                        depth -= 1;
                    }
                    5 if depth >= 1 => {
                        fb.ineg();
                    }
                    6 if depth >= 2 => {
                        fb.swap();
                    }
                    _ => {}
                }
            }
            // Drain the stack through the checksum intrinsic.
            while depth > 0 {
                fb.intrinsic(Intrinsic::Checksum);
                depth -= 1;
            }
            fb.ret_void();
            expected_len = fb.len() as u64;
        }
        let program = pb.build(f).expect("straight-line code must verify");
        let mut vm = Vm::new(&program);
        vm.run(&[Value::Int(operand)], &mut NullObserver)
            .expect("runs");
        assert_eq!(vm.stats().block_dispatches, 1, "seed {seed:#x}");
        assert_eq!(vm.stats().instructions, expected_len, "seed {seed:#x}");
    }
}

//! Fusion differential suite: the decoded interpreter with
//! profile-driven superinstruction fusion
//! ([`jvm_vm::fuse`](tracecache_repro::vm::fuse)) against the frozen
//! [`ReferenceVm`](tracecache_repro::vm::ReferenceVm) oracle — zero
//! divergence allowed.
//!
//! Fusion is a pure dispatch-cost optimisation, so everything
//! observable must be bit-identical to the unfused stream:
//!
//! * result value, checksum, captured output,
//! * every `ExecStats` field — `instructions` counts each *constituent*
//!   of a fused group, branch counters fire inside fused compare ops,
//! * heap behaviour,
//! * the **entire dispatch stream** (fusion never crosses a block
//!   marker),
//! * fuel semantics: `OutOfFuel` fires at exactly the reference
//!   instruction count even when the budget runs out *inside* a fused
//!   group,
//! * and trap parity: errors raised by a fused constituent carry the
//!   same error value at the same instruction count.
//!
//! The suite also proves selection is profile-driven (different
//! workloads choose different pattern sets) and that a planted
//! mis-fused block boundary ([`FuseQuirk::FuseAcrossBlockBoundary`]) is
//! caught — testing the testers.

use tracecache_repro::conformance::genprog::{args_from, build_program, gen_block};
use tracecache_repro::vm::fuse::FuseQuirk;
use tracecache_repro::vm::{
    BlockCounts, FusionConfig, RecordingObserver, ReferenceVm, Vm, VmConfig,
};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};
use tracecache_repro::workloads::registry::{self, Scale};

const BASE_SEED: u64 = 0xF05E_5EED;

fn cases() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        256
    } else {
        48
    }
}

/// Profiles one run of `vm`, fuses with `cfg`, and returns the rewrite
/// report.
fn profile_and_fuse(
    vm: &mut Vm,
    args: &[tracecache_repro::vm::Value],
    cfg: &FusionConfig,
) -> tracecache_repro::vm::FusionReport {
    let mut counts = BlockCounts::for_program(vm.program());
    vm.run(args, &mut counts).expect("profiling run succeeds");
    vm.fuse_with_profile(counts, cfg)
}

#[test]
fn fused_interpreter_matches_reference_on_all_six_workloads() {
    let mut any_fused = false;
    for w in registry::all(Scale::Test) {
        let mut reference = ReferenceVm::new(&w.program);
        let mut ref_stream = RecordingObserver::new();
        let ref_result = reference
            .run(&w.args, &mut ref_stream)
            .unwrap_or_else(|e| panic!("{}: reference trap {e}", w.name));

        let mut fused = Vm::new(&w.program);
        let report = profile_and_fuse(&mut fused, &w.args, &FusionConfig::default());
        any_fused |= report.fused() > 0;

        let mut fused_stream = RecordingObserver::new();
        let fused_result = fused
            .run(&w.args, &mut fused_stream)
            .unwrap_or_else(|e| panic!("{}: fused trap {e}", w.name));

        assert_eq!(fused_result, ref_result, "{}: result diverged", w.name);
        assert_eq!(
            fused.checksum(),
            reference.checksum(),
            "{}: checksum diverged",
            w.name
        );
        assert_eq!(
            fused.checksum(),
            w.expected_checksum,
            "{}: checksum does not match the workload reference",
            w.name
        );
        assert_eq!(
            fused.stats(),
            reference.stats(),
            "{}: exec stats diverged (fused constituents must count)",
            w.name
        );
        assert_eq!(
            fused.heap_stats(),
            reference.heap_stats(),
            "{}: heap stats diverged",
            w.name
        );
        assert_eq!(
            fused.output(),
            reference.output(),
            "{}: output diverged",
            w.name
        );
        assert_eq!(
            fused_stream.blocks.len(),
            ref_stream.blocks.len(),
            "{}: dispatch stream length diverged",
            w.name
        );
        assert_eq!(
            fused_stream, ref_stream,
            "{}: dispatch stream diverged",
            w.name
        );
    }
    assert!(
        any_fused,
        "default thresholds must fuse something at test scale"
    );
}

/// Different workloads must select different fusion sets: the selection
/// is driven by the measured profile, not a hand-picked static table.
#[test]
fn selection_is_profile_driven_across_workloads() {
    let mut sets = Vec::new();
    for w in registry::all(Scale::Small) {
        let mut vm = Vm::new(&w.program);
        let report = profile_and_fuse(&mut vm, &w.args, &FusionConfig::default());
        assert!(
            report.fused() > 0,
            "{}: expected fusions at small scale",
            w.name
        );
        sets.push((w.name, report.selected_union()));
    }
    let distinct: std::collections::HashSet<_> =
        sets.iter().map(|(_, names)| names.clone()).collect();
    assert!(
        distinct.len() >= 2,
        "workloads must not all select the same fusion set: {sets:?}"
    );
}

/// Seeded structured fuzz: the fused interpreter against the reference,
/// with every statically fusible site fused (aggressive selection, so
/// rare patterns get coverage too).
#[test]
fn fused_interpreter_matches_reference_on_random_programs() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());

        let mut reference = ReferenceVm::new(&program);
        let mut ref_stream = RecordingObserver::new();
        let ref_result = reference.run(&args, &mut ref_stream);

        let mut fused = Vm::new(&program);
        profile_and_fuse(&mut fused, &args, &FusionConfig::aggressive());
        let mut fused_stream = RecordingObserver::new();
        let fused_result = fused.run(&args, &mut fused_stream);

        assert_eq!(fused_result, ref_result, "seed {seed:#x}: result diverged");
        assert_eq!(
            fused.checksum(),
            reference.checksum(),
            "seed {seed:#x}: checksum diverged"
        );
        assert_eq!(
            fused.stats(),
            reference.stats(),
            "seed {seed:#x}: exec stats diverged"
        );
        assert_eq!(
            fused.heap_stats(),
            reference.heap_stats(),
            "seed {seed:#x}: heap stats diverged"
        );
        assert_eq!(
            fused_stream, ref_stream,
            "seed {seed:#x}: dispatch stream diverged"
        );
    }
}

/// Fuel parity: cutting the budget at every interesting point — *inside*
/// fused groups included — must produce `OutOfFuel` at exactly the
/// reference instruction count, with identical partial statistics.
#[test]
fn fuel_runs_out_at_identical_instruction_counts() {
    for case in 0..8u64 {
        let seed = seed_stream(BASE_SEED ^ 0xF0E1, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());

        // Learn the full instruction count (and the fusion profile)
        // with an uncut run, then cut the budget at a spread of points;
        // consecutive cuts straddle every fused group at least once.
        let mut counts = BlockCounts::for_program(&program);
        let mut probe = Vm::new(&program);
        if probe.run(&args, &mut counts).is_err() {
            continue;
        }
        let total = probe.stats().instructions;
        if total < 4 {
            continue;
        }
        let mut cuts = vec![1, 2, 3, total / 2, total - 2, total - 1];
        cuts.dedup();
        for cut in cuts {
            let cfg = VmConfig {
                max_steps: cut,
                ..VmConfig::default()
            };
            let mut reference = ReferenceVm::with_config(&program, cfg);
            let ref_result = reference.run(&args, &mut tracecache_repro::vm::NullObserver);

            let mut fused = Vm::with_config(&program, cfg);
            let report = fused.fuse_with_profile(counts.clone(), &FusionConfig::aggressive());
            let _ = report;
            let fused_result = fused.run(&args, &mut tracecache_repro::vm::NullObserver);

            assert_eq!(
                fused_result, ref_result,
                "seed {seed:#x} cut {cut}: error diverged"
            );
            assert_eq!(
                fused.stats(),
                reference.stats(),
                "seed {seed:#x} cut {cut}: partial stats diverged"
            );
        }
    }
}

/// Testing the testers: a deliberately mis-fused block boundary (a
/// group that swallows an `ENTER_BLOCK` marker) must be caught by the
/// differential's dispatch-stream and stats comparison.
#[test]
fn planted_boundary_quirk_is_caught() {
    use tracecache_repro::bytecode::{CmpOp, ProgramBuilder};
    use tracecache_repro::vm::Value;

    // main(x): a fall-through block that ends in a bare `load` feeding
    // the merge block — exactly the shape the quirk mis-fuses.
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, true);
    {
        let b = pb.function_mut(f);
        let other = b.new_label();
        let merge = b.new_label();
        b.load(0).if_i(CmpOp::Gt, other);
        b.load(0); // block ends here; falls through into `merge`
        b.bind(merge);
        b.iconst(1).iadd().ret();
        // The deeper expression here keeps the verified max_stack above
        // what the mis-fused group needs, so the quirk shows up as
        // divergence rather than a frame overflow.
        b.bind(other);
        b.load(0).iconst(1).iconst(2).iadd().iadd().goto(merge);
    }
    let program = pb.build(f).expect("program builds");
    let args = [Value::Int(-3)]; // takes the fall-through path

    let mut reference = ReferenceVm::new(&program);
    let mut ref_stream = RecordingObserver::new();
    let ref_result = reference.run(&args, &mut ref_stream).expect("runs");

    let mut quirky = Vm::new(&program);
    assert!(
        quirky.plant_fuse_quirk(FuseQuirk::FuseAcrossBlockBoundary),
        "the program must offer a load-before-marker site"
    );
    let mut quirky_stream = RecordingObserver::new();
    let quirky_result = quirky.run(&args, &mut quirky_stream);

    // The harness catches the bug: the swallowed marker loses a block
    // dispatch, so the stream and stats comparisons both fire.
    let diverged = quirky_result != Ok(ref_result)
        || quirky_stream != ref_stream
        || quirky.stats() != reference.stats();
    assert!(
        diverged,
        "a fused group crossing a block boundary must be detected"
    );
    assert_ne!(
        quirky_stream.blocks.len(),
        ref_stream.blocks.len(),
        "the swallowed marker must drop a dispatch from the stream"
    );
}

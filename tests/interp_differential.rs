//! Differential oracle: the pre-decoded threaded interpreter
//! ([`Vm`](tracecache_repro::vm::Vm)) against the frozen
//! [`ReferenceVm`](tracecache_repro::vm::ReferenceVm) on all six
//! workloads — zero divergence allowed.
//!
//! The reference is the classic fetch-decode-execute loop the VM shipped
//! with before the decoded engine replaced it; it is kept bit-for-bit
//! intact precisely so this suite can pin the new engine to it:
//!
//! * result value and checksum,
//! * every [`ExecStats`](tracecache_repro::vm::ExecStats) field
//!   (instructions, block dispatches, branches, calls, returns, frame
//!   depth, …),
//! * heap behaviour (allocations, collections, frees),
//! * captured print output,
//! * and the **entire dispatch stream**, block by block, in order.

use tracecache_repro::vm::{RecordingObserver, ReferenceVm, Vm};
use tracecache_repro::workloads::registry::{self, Scale};

#[test]
fn decoded_engine_matches_reference_on_all_six_workloads() {
    for w in registry::all(Scale::Test) {
        let mut reference = ReferenceVm::new(&w.program);
        let mut ref_stream = RecordingObserver::new();
        let ref_result = reference
            .run(&w.args, &mut ref_stream)
            .unwrap_or_else(|e| panic!("{}: reference trap {e}", w.name));

        let mut decoded = Vm::new(&w.program);
        let mut dec_stream = RecordingObserver::new();
        let dec_result = decoded
            .run(&w.args, &mut dec_stream)
            .unwrap_or_else(|e| panic!("{}: decoded trap {e}", w.name));

        assert_eq!(dec_result, ref_result, "{}: result diverged", w.name);
        assert_eq!(
            decoded.checksum(),
            reference.checksum(),
            "{}: checksum diverged",
            w.name
        );
        assert_eq!(
            decoded.checksum(),
            w.expected_checksum,
            "{}: checksum does not match the workload reference",
            w.name
        );
        assert_eq!(
            decoded.stats(),
            reference.stats(),
            "{}: exec stats diverged",
            w.name
        );
        assert_eq!(
            decoded.heap_stats(),
            reference.heap_stats(),
            "{}: heap stats diverged",
            w.name
        );
        assert_eq!(
            decoded.output(),
            reference.output(),
            "{}: captured output diverged",
            w.name
        );
        assert_eq!(
            dec_stream.blocks.len(),
            ref_stream.blocks.len(),
            "{}: dispatch count diverged",
            w.name
        );
        // Element-wise with a located failure message, not one huge diff.
        for (i, (d, r)) in dec_stream
            .blocks
            .iter()
            .zip(ref_stream.blocks.iter())
            .enumerate()
        {
            assert_eq!(d, r, "{}: dispatch stream diverged at event {i}", w.name);
        }
    }
}

#[test]
fn engines_stay_identical_across_reuse() {
    // Both VMs reset per run; a second run must reproduce the first.
    let w = registry::compress(Scale::Test);
    let mut reference = ReferenceVm::new(&w.program);
    let mut decoded = Vm::new(&w.program);
    for round in 0..2 {
        let r = reference
            .run(&w.args, &mut RecordingObserver::new())
            .expect("reference runs");
        let d = decoded
            .run(&w.args, &mut RecordingObserver::new())
            .expect("decoded runs");
        assert_eq!(d, r, "round {round}: result diverged");
        assert_eq!(
            decoded.stats(),
            reference.stats(),
            "round {round}: stats diverged"
        );
        assert_eq!(
            decoded.checksum(),
            reference.checksum(),
            "round {round}: checksum diverged"
        );
    }
}

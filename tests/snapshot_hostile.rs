//! Hostile-input battery for the snapshot decoder.
//!
//! Contract under attack: the snapshot reader is **total** — every
//! mutation of valid snapshot bytes (bit flips, truncations, section
//! swaps, hostile length fields) yields a clean
//! [`SnapshotError`](tracecache_repro::persist::SnapshotError), never a
//! panic and never a silently accepted corrupt snapshot.
//!
//! The campaign machinery lives in
//! [`tracecache_repro::conformance::snapshot`]; this suite points it at
//! snapshots of real warmed workloads and generated fuzz programs, in
//! release CI at full scale. The planted
//! [`Quirk::StaleSnapshotAccepted`] trio proves the battery is not
//! vacuous: a reader whose program-hash check is disabled *does* get
//! caught, by exactly the mutants that rewrite the hash field.

use tracecache_repro::conformance::genprog::{args_from, build_program, gen_block};
use tracecache_repro::conformance::snapshot::{
    must_reject, reader_with_quirk, run_snapshot_campaign, stale_hash_mutants,
};
use tracecache_repro::conformance::Quirk;
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::persist::{program_hash, SnapshotError, SnapshotReader};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};
use tracecache_repro::workloads::registry::{all, Scale};

const BASE_SEED: u64 = 0xB05_711E;

fn mutants_per_source() -> usize {
    if cfg!(feature = "exhaustive-tests") {
        1024
    } else {
        256
    }
}

fn config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        ..EngineConfig::paper_default()
    }
}

fn warmed_snapshot(
    program: &tracecache_repro::bytecode::Program,
    args: &[tracecache_repro::vm::Value],
) -> (Vec<u8>, u64) {
    let mut vm = TracingVm::new(program, config());
    vm.run(args).expect("warming run");
    (vm.snapshot(), program_hash(program))
}

/// ≥256 mutants per workload snapshot: zero panics, zero silent
/// acceptances, every differing mutant rejected.
#[test]
fn workload_snapshots_survive_the_campaign() {
    for (i, w) in all(Scale::Test).iter().enumerate() {
        let (bytes, hash) = warmed_snapshot(&w.program, &w.args);
        let report = run_snapshot_campaign(
            &bytes,
            hash,
            &SnapshotReader::new(),
            seed_stream(BASE_SEED, i as u64),
            mutants_per_source(),
        );
        assert!(report.is_clean(), "{}: {report:?}", w.name);
        assert_eq!(
            report.rejected, report.mutants_run,
            "{}: every differing mutant must be rejected: {report:?}",
            w.name
        );
        assert!(
            report.mutants_run >= mutants_per_source() - report.identical_skipped,
            "{}: campaign under-ran: {report:?}",
            w.name
        );
    }
}

/// The battery holds beyond hand-written workloads: snapshots of seeded
/// fuzz programs survive it too.
#[test]
fn fuzz_program_snapshots_survive_the_campaign() {
    for case in 0..4u64 {
        let seed = seed_stream(BASE_SEED ^ 0xF022, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        let (bytes, hash) = warmed_snapshot(&program, &args);
        let report = run_snapshot_campaign(
            &bytes,
            hash,
            &SnapshotReader::new(),
            seed,
            mutants_per_source() / 4,
        );
        assert!(report.is_clean(), "fuzz seed {seed:#x}: {report:?}");
        assert_eq!(report.rejected, report.mutants_run, "fuzz seed {seed:#x}");
    }
}

/// Planted-quirk regression trio: three mutants that differ from a valid
/// snapshot only in the program-hash field. The strict reader rejects
/// each with `StaleProgram`; the quirky reader (hash check disabled —
/// [`Quirk::StaleSnapshotAccepted`]) silently accepts all three, which
/// is precisely the failure mode the battery exists to catch.
#[test]
fn stale_snapshot_quirk_is_caught() {
    let w = &all(Scale::Test)[0];
    let (bytes, hash) = warmed_snapshot(&w.program, &w.args);
    let trio = stale_hash_mutants(&bytes, 0x5A1E_5A1E);
    assert_eq!(trio.len(), 3);

    let strict = SnapshotReader::new();
    let quirky = reader_with_quirk(Some(Quirk::StaleSnapshotAccepted));
    let mut silently_accepted = 0;
    for (i, m) in trio.iter().enumerate() {
        match must_reject(&strict, m, hash) {
            Ok(SnapshotError::StaleProgram { expected, found }) => {
                assert_eq!(expected, hash, "mutant {i}");
                assert_ne!(found, hash, "mutant {i}");
            }
            other => panic!("mutant {i}: strict reader must report StaleProgram, got {other:?}"),
        }
        if quirky.read(m, hash).is_ok() {
            silently_accepted += 1;
        }
    }
    assert_eq!(
        silently_accepted, 3,
        "the planted quirk must silently accept the whole trio — \
         if this fails the battery can no longer detect a missing hash check"
    );
}

/// No partial state on rejection: a VM that refuses a mutant snapshot
/// is left exactly as it was — empty profiler-visible cache, nothing
/// pre-built.
#[test]
fn rejected_mutants_apply_no_partial_state() {
    let w = &all(Scale::Test)[0];
    let (bytes, _) = warmed_snapshot(&w.program, &w.args);
    for k in 0..32u64 {
        let (mutant, _) = tracecache_repro::conformance::snapshot::mutate(
            &bytes,
            seed_stream(BASE_SEED ^ 0xAB, 0),
            k,
        );
        if mutant == bytes {
            continue;
        }
        let mut vm = TracingVm::new(&w.program, config());
        if vm.load_snapshot(&mutant).is_err() {
            assert_eq!(vm.cache().trace_count(), 0, "mutant {k} left cache state");
            assert_eq!(vm.cache().link_count(), 0, "mutant {k} left links");
            assert_eq!(vm.compiled_count(), 0, "mutant {k} left artifacts");
        }
    }
}

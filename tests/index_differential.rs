//! Differential tests: the overhauled hot path (packed-key
//! open-addressed index, inline successors, budgeted fast path, inline
//! trace-link slots) against the frozen pre-overhaul reference.
//!
//! [`ReferenceBcg`] is the straightforward `HashMap` + `Vec` profiler
//! exactly as it existed before the overhaul; these tests drive it and
//! [`BranchCorrelationGraph`] with the *same* dynamic block streams —
//! the six workload analogues at test scale — and require bit-identical
//! signal sequences, node structure, statistics, and trace-monitor
//! behaviour. Any divergence introduced by the optimised path fails
//! here, not in a benchmark.

use tracecache_repro::bcg::{BcgConfig, BranchCorrelationGraph, ReferenceBcg, Signal};
use tracecache_repro::bytecode::BlockId;
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::tracecache::{TraceCache, TraceConstructor, TraceRuntime};
use tracecache_repro::vm::Vm;
use tracecache_repro::workloads::registry::{self, Scale};

/// The dynamic block stream of one workload, captured from a plain
/// interpreter run.
fn stream_of(w: &registry::Workload) -> Vec<BlockId> {
    let mut stream = Vec::new();
    let mut vm = Vm::new(&w.program);
    vm.run(&w.args, &mut |b| {
        stream.push(b);
    })
    .expect("workload runs");
    stream
}

/// Configurations worth sweeping: the paper default plus a short-delay /
/// low-threshold variant that exercises decay and signal churn harder.
fn configs() -> Vec<BcgConfig> {
    vec![
        BcgConfig::paper_default(),
        BcgConfig::paper_default()
            .with_start_delay(4)
            .with_threshold(0.90),
    ]
}

/// Replays `stream` into both profilers, asserting the signal sequences
/// are identical dispatch-by-dispatch, then compares the final graphs
/// node by node.
fn assert_profilers_agree(name: &str, stream: &[BlockId], config: BcgConfig) {
    let mut new = BranchCorrelationGraph::new(config);
    let mut reference = ReferenceBcg::new(config);
    let mut new_sigs: Vec<Signal> = Vec::new();

    for (i, &b) in stream.iter().enumerate() {
        new.observe(b);
        reference.observe(b);
        if new.has_signals() || reference.has_signals() {
            new.drain_signals_into(&mut new_sigs);
            let ref_sigs = reference.take_signals();
            assert_eq!(
                new_sigs, ref_sigs,
                "{name}: signal mismatch at dispatch {i}"
            );
        }
    }

    assert_eq!(new.stats(), reference.stats(), "{name}: stats diverged");
    assert_eq!(new.len(), reference.len(), "{name}: node count diverged");
    for (idx, ref_node) in reference.iter() {
        let node = new.node(idx);
        assert_eq!(node.branch(), ref_node.branch(), "{name}: {idx} branch");
        assert_eq!(node.state(), ref_node.state(), "{name}: {idx} state");
        assert_eq!(
            node.executions(),
            ref_node.executions(),
            "{name}: {idx} executions"
        );
        assert_eq!(
            node.total_weight(),
            ref_node.total_weight(),
            "{name}: {idx} weight"
        );
        // Successor lists: same order, same counts, same targets.
        let succs: Vec<(BlockId, u16, u32)> = node
            .successors()
            .iter()
            .map(|s| (s.to_block, s.count, s.node.0))
            .collect();
        let ref_succs: Vec<(BlockId, u16, u32)> = ref_node
            .successors()
            .iter()
            .map(|s| (s.to_block, s.count, s.node.0))
            .collect();
        assert_eq!(succs, ref_succs, "{name}: {idx} successors");
        assert_eq!(
            node.predecessors(),
            ref_node.predecessors(),
            "{name}: {idx} predecessors"
        );
        assert_eq!(
            node.predicted().map(|s| s.to_block),
            ref_node.predicted().map(|s| s.to_block),
            "{name}: {idx} prediction"
        );
    }
}

#[test]
fn profilers_agree_on_all_workload_streams() {
    for w in registry::all(Scale::Test) {
        let stream = stream_of(&w);
        for config in configs() {
            assert_profilers_agree(w.name, &stream, config);
        }
    }
}

/// Node-index lookups agree with the reference's `HashMap` exactly,
/// including for branches that were never observed.
#[test]
fn node_index_lookups_agree_with_reference() {
    let w = registry::compress(Scale::Test);
    let stream = stream_of(&w);
    let config = BcgConfig::paper_default();
    let mut new = BranchCorrelationGraph::new(config);
    let mut reference = ReferenceBcg::new(config);
    for &b in &stream {
        new.observe(b);
        reference.observe(b);
    }
    // Every realized branch, plus synthetic never-seen pairs.
    for (_, node) in reference.iter() {
        assert_eq!(
            new.node_index(node.branch()),
            reference.node_index(node.branch())
        );
    }
    for i in 0..64u32 {
        let bogus = (
            BlockId::new(tracecache_repro::bytecode::FuncId(7), i),
            BlockId::new(tracecache_repro::bytecode::FuncId(9), i + 1),
        );
        assert_eq!(new.node_index(bogus), None);
        assert_eq!(reference.node_index(bogus), None);
    }
}

/// Runs the full profile→construct→monitor pipeline twice over the same
/// stream — once answering entry checks with direct cache lookups, once
/// through the per-node inline trace-link slots — and requires identical
/// trace caches and monitor statistics.
#[test]
fn node_slot_monitor_matches_direct_monitor_on_workloads() {
    for w in registry::all(Scale::Test) {
        let stream = stream_of(&w);
        let config = TraceJitConfig::paper_default().with_start_delay(16);

        let run = |use_slots: bool| {
            let mut bcg = BranchCorrelationGraph::new(config.bcg_config());
            let mut ctor = TraceConstructor::new(config.constructor_config());
            let mut cache = TraceCache::new();
            let mut rt = TraceRuntime::new();
            let mut buf = Vec::new();
            bcg.begin_stream();
            for &b in &stream {
                let node = bcg.observe(b);
                if use_slots {
                    rt.on_block_at_node(b, node, &mut bcg, &cache, &w.program);
                } else {
                    rt.on_block(b, &cache, &w.program);
                }
                if bcg.has_signals() {
                    bcg.drain_signals_into(&mut buf);
                    ctor.handle_batch(&buf, &mut bcg, &mut cache);
                }
            }
            rt.finish_stream();
            (rt.stats(), cache.stats(), cache.version())
        };

        let direct = run(false);
        let slotted = run(true);
        assert_eq!(direct, slotted, "{}: monitor paths diverged", w.name);
    }
}

/// After a full pipeline run, every node's cached trace-link answer
/// agrees with a direct lookup; after unlinking everything (a version
/// bump), every cached answer revalidates to `None`.
#[test]
fn trace_links_stay_coherent_through_cache_mutation() {
    let w = registry::javac(Scale::Test);
    let stream = stream_of(&w);
    let config = TraceJitConfig::paper_default().with_start_delay(16);

    let mut bcg = BranchCorrelationGraph::new(config.bcg_config());
    let mut ctor = TraceConstructor::new(config.constructor_config());
    let mut cache = TraceCache::new();
    let mut rt = TraceRuntime::new();
    let mut buf = Vec::new();
    for &b in &stream {
        let node = bcg.observe(b);
        rt.on_block_at_node(b, node, &mut bcg, &cache, &w.program);
        if bcg.has_signals() {
            bcg.drain_signals_into(&mut buf);
            ctor.handle_batch(&buf, &mut bcg, &mut cache);
        }
    }
    rt.finish_stream();
    assert!(cache.trace_count() > 0, "javac must produce traces");

    // Coherence: cached answers equal direct answers on every node.
    let indices: Vec<_> = bcg.iter().map(|(i, _)| i).collect();
    for &idx in &indices {
        let branch = bcg.node(idx).branch();
        let direct = cache.lookup_entry(branch);
        let cached = cache.lookup_entry_cached(&mut bcg, idx);
        assert_eq!(cached, direct, "node {idx} link incoherent");
    }

    // Unlink every entry: the version bumps, and previously-positive
    // cached answers must revalidate to None.
    let entries: Vec<_> = cache.iter_links().map(|(b, _)| b).collect();
    assert!(!entries.is_empty());
    for entry in entries {
        cache.unlink(entry);
    }
    for &idx in &indices {
        assert_eq!(
            cache.lookup_entry_cached(&mut bcg, idx),
            None,
            "stale positive link survived an unlink at node {idx}"
        );
    }
}

//! Golden test: the register-lowered form of a fixed trace is stable
//! and readable. The companion of `decoded_golden.rs` one layer up:
//! same program shape, but listing the three-address virtual-register
//! code a hot trace actually executes — stack traffic folded away,
//! compares fused into guards, constants hoisted into the per-trace
//! table, and every side exit's frame-reconstruction image spelled out.

use tracecache_repro::bytecode::{BlockId, CmpOp, Intrinsic, ProgramBuilder};
use tracecache_repro::exec::{compile_blocks, disassemble, lower_reg};
use tracecache_repro::tracecache::TraceId;
use tracecache_repro::vm::DecodedProgram;

#[test]
fn register_listing_matches_golden() {
    // The decoded_golden program: a counted loop calling a leaf, so the
    // lowering exhibits a conditional guard, a static call, a return
    // guard and an intrinsic in one short trace.
    let mut pb = ProgramBuilder::new();
    let leaf = pb.declare_function("leaf", 1, true);
    pb.function_mut(leaf).load(0).iconst(1).iadd().ret();
    let main_f = pb.declare_function("main", 1, false);
    {
        let b = pb.function_mut(main_f);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(0).invoke_static(leaf).intrinsic(Intrinsic::Checksum);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.ret_void();
    }
    let program = pb.build(main_f).unwrap();
    let decoded = DecodedProgram::decode(&program);

    // The loop trace, entered at the body: call the leaf, return, close
    // the back edge, and re-test the loop condition.
    let chain = vec![
        BlockId::new(main_f, 1),
        BlockId::new(leaf, 0),
        BlockId::new(main_f, 2),
        BlockId::new(main_f, 0),
    ];
    let ct = compile_blocks(&program, TraceId::from_raw(7), &chain).unwrap();
    let rt = lower_reg(&program, &decoded, &ct).expect("trace lowers to register form");

    // The full listing is pinned: any change to virtual-register
    // assignment, weight accounting, guard fusion, or exit images must
    // show up here as a reviewed diff.
    let expected = "\
reg trace: 7 rinstrs, 4 regs, 1 consts, 1 exits
  const r1 = int 1
   0: r0 = local 0 [w=1]
   1: call fn#0 ret=6 img=0 [w=1]
   2: r2 = iadd r0, r1 [w=3]
   3: ret.static [w=1]
   4: checksum r2 [w=1]
   5: r3 = r0 + -1 [w=1]
   6: finish exit 0 [pre=2]
exit 0: fn#1 dpc=2 block=0 done=3 base=0 stack=[r3] dirty=[0<-r3]
";
    assert_eq!(disassemble(&rt), expected);

    // The lowering's own accounting agrees with the listing: 11
    // compiled trace instructions became 7, the pure stack traffic
    // vanished, and the trailing compare fused into the exit.
    assert_eq!((rt.stats.before, rt.stats.after), (11, 7));
    assert_eq!(rt.stats.eliminated, 4);
    assert_eq!(rt.stats.regs, 4);
}

//! Warm-boot staleness regression: snapshot a VM warmed on workload A,
//! load it into a phase-shifted A′, and require the restored (now
//! pathological) traces to be demoted within a bounded number of
//! dispatches while the run stays bit-exact with the interpreter.
//!
//! The phase-shift program takes its flip point as an *argument*, so A
//! and A′ share one program hash — exactly the situation a persisted
//! trace cache cannot distinguish at load time. Health counters are
//! deliberately excluded from snapshots: the restored traces start with
//! a clean ledger and must be re-convicted from live evidence alone.
//!
//! Staleness heals through two tiers, and both are pinned here:
//!
//! * an *abrupt* shift (cold from dispatch one) flips the profiler's
//!   branch prediction within a few dozen observations, so the
//!   constructor rebuilds and replaces the stale links directly;
//! * a *delayed* shift re-warms the restored traces first — prediction
//!   stays loyal to the old arm long after the flip, and it falls to
//!   the health ladder's side-exit streak to demote the rot.

use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::vm::Value;
use tracecache_repro::workloads::phase_shift::reference_checksum;
use tracecache_repro::workloads::{registry, Scale};

fn config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        ..EngineConfig::paper_default()
    }
}

/// Warm a VM on the never-flipping phase_shift instance (every trace is
/// built along the 95% arm) and return its snapshot plus the iteration
/// count shared by all variants.
fn warm_snapshot() -> (Vec<u8>, i64) {
    let w = registry::phase_shift(Scale::Test);
    let n = match w.args[0] {
        Value::Int(n) => n,
        _ => panic!("phase_shift arg 0 must be the iteration count"),
    };
    let hot_args = [Value::Int(n), Value::Int(n)];
    let mut warm = TracingVm::new(&w.program, config());
    let report = warm.run(&hot_args).expect("warm run succeeds");
    assert_eq!(
        report.checksum,
        reference_checksum(n, n),
        "warm run diverged from the interpreter oracle"
    );
    assert!(
        warm.cache().link_count() > 0,
        "phase A must leave linked traces to persist"
    );
    (warm.snapshot(), n)
}

/// A′ flips mid-run: the restored traces serve the first phase, then
/// rot. The booted VM sets a start delay beyond the run length so that
/// *fresh* branches never trace — but the restored BCG nodes are past
/// their delay, so the old entries stay live. With preemptive
/// rebuild-and-replace suppressed, the health ladder is the line of
/// defense: it must demote the restored traces within a bounded number
/// of dispatches (re-admission through the normal constructor may then
/// follow once the quarantine cooldown expires).
#[test]
fn warm_boot_into_a_delayed_shift_is_demoted_by_the_ladder() {
    let (bytes, n) = warm_snapshot();
    let w = registry::phase_shift(Scale::Test);

    let boot_config = EngineConfig {
        jit: TraceJitConfig {
            start_delay: 100_000_000,
            ..config().jit
        },
        ..config()
    };
    let mut booted = TracingVm::new(&w.program, boot_config);
    booted
        .load_snapshot(&bytes)
        .expect("snapshot loads into the same program");
    let restored_links = booted.cache().link_count();
    assert!(restored_links > 0, "snapshot must restore the stale traces");

    let report = booted.run(&w.args).expect("shifted run succeeds");
    let hs = booted.health_stats();
    eprintln!(
        "delayed shift: restored_links={} reused={} quarantined={} demotions={} \
         (streak {}) recorded={} epochs={} completed={} exited_early={}",
        restored_links,
        report.cache.traces_reused,
        report.cache.traces_quarantined,
        hs.demotions,
        hs.streak_demotions,
        hs.recorded,
        hs.epochs,
        report.traces.completed,
        report.traces.exited_early,
    );

    // Bit-exact with the interpreter despite booting on doomed traces.
    let flip = match w.args[1] {
        Value::Int(flip) => flip,
        _ => panic!("phase_shift arg 1 must be the flip point"),
    };
    assert_eq!(
        report.checksum,
        reference_checksum(n, flip),
        "shifted run diverged from the interpreter oracle"
    );

    // The restored traces really did serve the first phase: nothing new
    // was constructed before the flip forced the ladder's hand.
    assert!(
        report.traces.completed > 0,
        "restored traces never executed"
    );
    // After the flip, the (restored) pathological trace was demoted.
    assert!(
        report.cache.traces_quarantined >= 1,
        "no stale trace was ever quarantined"
    );
    assert!(hs.demotions >= 1, "the health ladder never convicted");
    // Bounded-dispatch demotion: the rot must not soak the run — the
    // rebuilt cold-arm trace dominates with completions.
    assert!(
        report.traces.completed > report.traces.exited_early,
        "stale traces soaked the run: {} completions vs {} early exits",
        report.traces.completed,
        report.traces.exited_early
    );
}

/// A′ shifted from the very first dispatch: the profiler's prediction
/// flips almost immediately, so the constructor's rebuild-and-replace
/// path heals the cache before the ladder needs to act.
#[test]
fn warm_boot_into_an_abrupt_shift_is_healed_by_replacement() {
    let (bytes, n) = warm_snapshot();
    let w = registry::phase_shift(Scale::Test);

    let mut booted = TracingVm::new(&w.program, config());
    booted.load_snapshot(&bytes).expect("snapshot loads");
    assert!(booted.cache().link_count() > 0);

    let cold_args = [Value::Int(n), Value::Int(0)];
    let report = booted.run(&cold_args).expect("shifted run succeeds");
    eprintln!(
        "abrupt shift: replaced={} quarantined={} completed={} exited_early={}",
        report.cache.links_replaced,
        report.cache.traces_quarantined,
        report.traces.completed,
        report.traces.exited_early,
    );

    assert_eq!(
        report.checksum,
        reference_checksum(n, 0),
        "shifted run diverged from the interpreter oracle"
    );
    // One healing tier or the other removed every stale link.
    assert!(
        report.cache.links_replaced + report.cache.traces_quarantined >= 1,
        "the stale links were never removed"
    );
    assert!(
        report.traces.completed > report.traces.exited_early,
        "stale traces soaked the run"
    );
}

/// Health counters are excluded from snapshots by design: a freshly
/// booted VM starts with a clean ledger even when the donor VM had
/// demotions on the books.
#[test]
fn snapshots_do_not_carry_health_counters() {
    let w = registry::phase_shift(Scale::Test);
    let mut donor = TracingVm::new(&w.program, config());
    donor.run(&w.args).expect("donor run succeeds");
    let donor_hs = donor.health_stats();
    assert!(
        donor_hs.recorded > 0,
        "donor must have health history to (not) persist"
    );
    let bytes = donor.snapshot();

    let mut booted = TracingVm::new(&w.program, config());
    booted.load_snapshot(&bytes).expect("snapshot loads");
    let hs = booted.health_stats();
    assert_eq!(hs.recorded, 0, "ledger history must not survive a boot");
    assert_eq!(hs.epochs, 0);
    assert_eq!(hs.demotions, 0);
    assert_eq!(hs.probations, 0);
}

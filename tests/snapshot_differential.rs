//! Snapshot round-trip differential suite.
//!
//! Property: persistence is lossless and canonical. For every warmed VM
//! — all six registry workloads plus a seeded sweep of generated fuzz
//! programs — capturing a snapshot, decoding it, and re-encoding it is
//! byte-identical; booting a fresh VM from the snapshot reproduces the
//! BCG tables and trace listings bit-for-bit (its own snapshot equals
//! the one it was booted from); and the warm-booted VM's execution
//! matches the plain interpreter exactly (result, observation checksum,
//! instruction count) while paying measurably less warm-up than the
//! cold VM did.
//!
//! Case seeds come from the workspace-wide
//! [`seed_stream`](tracecache_repro::workloads::prng::seed_stream)
//! convention; every assert carries enough context to reproduce.

use tracecache_repro::conformance::genprog::{args_from, build_program, gen_block};
use tracecache_repro::conformance::snapshot::run_warm_boot_case;
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::persist::{program_hash, SnapshotReader};
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};
use tracecache_repro::workloads::registry::{all, Scale};

const BASE_SEED: u64 = 0x5AAD_5EED;

fn fuzz_cases() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        192
    } else {
        48
    }
}

/// Aggressive tracing parameters so test-scale programs actually build
/// traces worth persisting.
fn config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        ..EngineConfig::paper_default()
    }
}

/// Sorted `(entry, block path)` listing of a cache — hash-order free,
/// so two caches compare structurally.
fn trace_listing(
    cache: &tracecache_repro::tracecache::TraceCache,
) -> Vec<(
    (
        tracecache_repro::bytecode::BlockId,
        tracecache_repro::bytecode::BlockId,
    ),
    Vec<tracecache_repro::bytecode::BlockId>,
)> {
    let mut listing: Vec<_> = cache
        .iter_links()
        .map(|(entry, trace)| (entry, trace.blocks().to_vec()))
        .collect();
    listing.sort();
    listing
}

/// Warms a VM, snapshots it, and checks the full round-trip contract:
/// decode → re-encode canonical, boot → snapshot byte-identical, booted
/// listings bit-identical, booted run semantically transparent.
fn check_round_trip(
    name: &str,
    program: &tracecache_repro::bytecode::Program,
    args: &[Vec<tracecache_repro::vm::Value>],
) {
    let mut warm = TracingVm::new(program, config());
    for a in args {
        warm.run(a)
            .unwrap_or_else(|e| panic!("{name}: warming run failed: {e:?}"));
    }
    let bytes = warm.snapshot();
    let hash = program_hash(program);

    // Decode → re-encode is byte-identical (canonical encoding).
    let snap = SnapshotReader::new()
        .read(&bytes, hash)
        .unwrap_or_else(|e| panic!("{name}: own snapshot must decode: {e}"));
    assert_eq!(snap.to_bytes(), bytes, "{name}: re-encode not canonical");

    // Boot a fresh VM: its own snapshot must be byte-identical — the
    // merged BCG tables and restored trace listings reproduce the image
    // exactly, bit for bit.
    let mut booted = TracingVm::new(program, config());
    let report = booted
        .load_snapshot(&bytes)
        .unwrap_or_else(|e| panic!("{name}: snapshot must load: {e}"));
    assert_eq!(
        booted.snapshot(),
        bytes,
        "{name}: boot → snapshot not bit-identical"
    );
    assert_eq!(
        trace_listing(booted.cache()),
        trace_listing(warm.cache()),
        "{name}: trace listings diverged"
    );
    assert_eq!(
        report.links_installed,
        warm.cache().link_count(),
        "{name}: link count diverged"
    );

    // The booted VM matches the plain interpreter exactly.
    if let Some(a) = args.first() {
        let mut plain = Vm::new(program);
        let want = plain
            .run(a, &mut NullObserver)
            .unwrap_or_else(|e| panic!("{name}: interpreter failed: {e:?}"));
        let got = booted
            .run(a)
            .unwrap_or_else(|e| panic!("{name}: warm-booted run failed: {e:?}"));
        assert_eq!(got.result, want, "{name}: result diverged");
        assert_eq!(got.checksum, plain.checksum(), "{name}: checksum diverged");
        assert_eq!(
            got.exec.instructions,
            plain.stats().instructions,
            "{name}: instruction count diverged"
        );
    }
}

/// All six workloads round-trip losslessly and canonically.
#[test]
fn workloads_round_trip_bit_identically() {
    let workloads = all(Scale::Test);
    assert_eq!(workloads.len(), 6, "registry must hold the six workloads");
    for w in &workloads {
        check_round_trip(w.name, &w.program, std::slice::from_ref(&w.args));
    }
}

/// Warm boot matches the interpreter oracle on every workload and pays
/// less warm-up than cold start wherever the cold run traced at all.
#[test]
fn warm_boot_matches_oracle_with_less_warm_up() {
    let mut traced_somewhere = false;
    for w in &all(Scale::Test) {
        let report = run_warm_boot_case(&w.program, &w.args, config())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        if report.cold_first_entry_dispatch > 0 {
            traced_somewhere = true;
            assert!(
                report.warm_first_entry_dispatch > 0,
                "{}: warm boot lost the traces the cold run built",
                w.name
            );
            assert!(
                report.warm_first_entry_dispatch <= report.cold_first_entry_dispatch,
                "{}: warm boot warmed up slower than cold start ({} vs {})",
                w.name,
                report.warm_first_entry_dispatch,
                report.cold_first_entry_dispatch
            );
            assert!(
                report.boot.artifacts_prebuilt > 0,
                "{}: nothing was pre-built",
                w.name
            );
        }
    }
    assert!(
        traced_somewhere,
        "no workload traced; the property is vacuous"
    );
}

/// Seeded fuzz programs round-trip losslessly: the canonical-bytes and
/// boot-reproduces-the-image properties hold beyond the hand-written
/// workloads.
#[test]
fn fuzz_programs_round_trip_bit_identically() {
    for case in 0..fuzz_cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        check_round_trip(&format!("fuzz seed {seed:#x}"), &program, &[args]);
    }
}

/// A snapshot taken after several runs (deep counters, decay activity,
/// possibly quarantined entries) still round-trips bit-identically.
#[test]
fn multi_run_snapshots_round_trip() {
    let w = &all(Scale::Test)[0];
    check_round_trip(
        w.name,
        &w.program,
        &[w.args.clone(), w.args.clone(), w.args.clone()],
    );
}

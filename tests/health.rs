//! Trace-health integration suite: the whole-lifetime demotion ladder
//! driven through the full engine by the phase-shift workload family.
//!
//! A phase-shift workload builds a trace along a 95%-taken guard arm,
//! then flips the bias to 5% mid-run: the trace is correct but rotten.
//! With health on (the default), the ladder must demote it within a
//! bounded number of dispatches and the constructor must rebuild along
//! the new hot arm; with `--no-health` only the immediate-entry-exit
//! fast trigger remains. Either way the run must stay bit-exact with
//! the interpreter oracle.

use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::registry;
use tracecache_repro::workloads::{Scale, Workload};

/// Aggressive tracing parameters so test-scale programs trace well
/// before the phase flip (same tunables as the snapshot suite).
fn config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        ..EngineConfig::paper_default()
    }
}

fn variants() -> [Workload; 3] {
    [
        registry::phase_shift(Scale::Test),
        registry::phase_shift_early(Scale::Test),
        registry::phase_shift_late(Scale::Test),
    ]
}

/// The interpreter oracle for one workload: result, checksum,
/// instruction count.
fn oracle(w: &Workload) -> (Option<tracecache_repro::vm::Value>, u64, u64) {
    let mut plain = Vm::new(&w.program);
    let result = plain
        .run(&w.args, &mut NullObserver)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e:?}", w.name));
    (result, plain.checksum(), plain.stats().instructions)
}

#[test]
fn phase_shift_demotes_the_rotten_traces_and_matches_the_oracle() {
    for w in variants() {
        let (want, want_sum, want_instrs) = oracle(&w);
        let mut vm = TracingVm::new(&w.program, config());
        let report = vm
            .run(&w.args)
            .unwrap_or_else(|e| panic!("{}: engine run failed: {e:?}", w.name));
        let hs = vm.health_stats();
        eprintln!(
            "{}: quarantined={} demotions={} (streak {}) probations={} recoveries={} \
             recorded={} epochs={} entered={} completed={} exited_early={}",
            w.name,
            report.cache.traces_quarantined,
            hs.demotions,
            hs.streak_demotions,
            hs.probations,
            hs.recoveries,
            hs.recorded,
            hs.epochs,
            report.traces.entered,
            report.traces.completed,
            report.traces.exited_early,
        );

        // Bit-exact with the interpreter, demotions and all.
        assert_eq!(report.result, want, "{}: result diverged", w.name);
        assert_eq!(report.checksum, want_sum, "{}: checksum diverged", w.name);
        assert_eq!(
            report.exec.instructions, want_instrs,
            "{}: instruction count diverged",
            w.name
        );

        // The rotten trace was removed (health ladder or fast trigger).
        assert!(
            report.cache.traces_quarantined >= 1,
            "{}: the rotten trace was never quarantined",
            w.name
        );
        // The ladder actually observed the run.
        assert!(hs.recorded > 0, "{}: no outcomes recorded", w.name);
        assert!(hs.epochs > 0, "{}: no health epoch ran", w.name);
        // The post-flip hot arm was rebuilt and runs to completion.
        assert!(
            report.traces.completed > 0,
            "{}: nothing completed after the flip",
            w.name
        );
    }
}

#[test]
fn health_off_restores_fast_trigger_only_behavior() {
    for w in variants() {
        let (_, want_sum, _) = oracle(&w);
        let mut vm = TracingVm::new(&w.program, config().with_health(false));
        let report = vm
            .run(&w.args)
            .unwrap_or_else(|e| panic!("{}: engine run failed: {e:?}", w.name));
        assert_eq!(report.checksum, want_sum, "{}: checksum diverged", w.name);
        let hs = vm.health_stats();
        assert_eq!(hs.recorded, 0, "{}: ledger must stay cold", w.name);
        assert_eq!(hs.epochs, 0, "{}: no epochs with health off", w.name);
        assert_eq!(hs.demotions, 0, "{}: no demotions with health off", w.name);
        assert_eq!(vm.degraded_reason(), Some("health-off"), "{}", w.name);
    }
}

#[test]
fn health_on_is_the_default_and_reports_no_degradation() {
    let w = registry::phase_shift(Scale::Test);
    let mut vm = TracingVm::new(&w.program, config());
    vm.run(&w.args).expect("run succeeds");
    assert_eq!(vm.degraded_reason(), None, "healthy run must not degrade");
    assert!(
        EngineConfig::paper_default().health,
        "self-healing must be on by default"
    );
}

/// Hysteresis at engine scale: the ladder may demote each rotten trace
/// once (and escalate on a genuine re-rot), but must not flap — the
/// demotion count stays within a small multiple of the distinct entries
/// that ever misbehaved.
#[test]
fn demotions_are_bounded_no_flapping() {
    for w in variants() {
        let mut vm = TracingVm::new(&w.program, config());
        vm.run(&w.args)
            .unwrap_or_else(|e| panic!("{}: engine run failed: {e:?}", w.name));
        let hs = vm.health_stats();
        assert!(
            hs.demotions <= 8,
            "{}: {} demotions looks like flapping",
            w.name,
            hs.demotions
        );
    }
}

/// The six paper workloads have stable branch behavior: the ladder
/// watches them closely but demotes (at most) the odd marginal trace —
/// mpegaudio and soot carry a couple of borderline entries at the
/// aggressive 0.90 admission threshold.
#[test]
fn steady_workloads_are_barely_demoted() {
    for w in registry::all(Scale::Test) {
        let mut vm = TracingVm::new(&w.program, config());
        let report = vm
            .run(&w.args)
            .unwrap_or_else(|e| panic!("{}: engine run failed: {e:?}", w.name));
        assert_eq!(report.checksum, w.expected_checksum, "{}", w.name);
        let hs = vm.health_stats();
        eprintln!(
            "{}: recorded={} epochs={} probations={} demotions={}",
            w.name, hs.recorded, hs.epochs, hs.probations, hs.demotions
        );
        assert!(
            hs.demotions <= 3,
            "{}: {} demotions on a steady workload",
            w.name,
            hs.demotions
        );
    }
}

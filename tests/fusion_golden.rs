//! Golden test: the fused decoded listing of a fixed function under a
//! fixed profile is pinned. The companion of `decoded_golden.rs` with
//! the superinstruction pass applied: any change to the fusion table,
//! the greedy matcher, or the selection thresholds must show up here as
//! a reviewed diff.
//!
//! Two profiles drive the same program to different fused forms, which
//! is the whole point of *profile-driven* selection:
//!
//! * a hot profile (large loop count) clears the default thresholds and
//!   fuses the loop body;
//! * a cold profile (a couple of iterations) clears nothing and leaves
//!   the stream untouched.

use tracecache_repro::bytecode::{CmpOp, Program, ProgramBuilder};
use tracecache_repro::vm::{BlockCounts, FusionConfig, NullObserver, Value, Vm};

/// `main(n): acc = 0; while (n > 0) { acc += n; n -= 1 }; return acc` —
/// the loop body offers a `load load iadd` triple and an `iinc goto`
/// back-edge, the header a `load if`.
fn loop_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, true);
    {
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
    }
    pb.build(f).unwrap()
}

/// Runs the program once with `n`, collecting the block-visit profile,
/// then fuses under default thresholds and returns the fused listing.
fn fused_listing(program: &Program, n: i64) -> (String, tracecache_repro::vm::FusionReport) {
    let mut vm = Vm::new(program);
    let mut counts = BlockCounts::for_program(program);
    vm.run(&[Value::Int(n)], &mut counts).unwrap();
    let report = vm.fuse_with_profile(counts, &FusionConfig::default());
    (vm.decoded().disassemble(program), report)
}

#[test]
fn hot_profile_fused_listing_matches_golden() {
    let program = loop_program();
    let (listing, report) = fused_listing(&program, 1000);
    assert!(report.fused() > 0, "hot profile must fuse the loop body");

    // In-place quickening: only group heads change; shadow slots keep
    // the original constituents, so indices and jump targets are those
    // of `decoded_golden.rs` verbatim.
    let expected = "\
fn main (fn#0) params=1 locals=2 max_stack=2 frame=4
     0: enter_block b0
     1: iconst 0
     2: store 1
     3: enter_block b1
     4: load 0
     5: if le -> 13
     6: enter_block b2
     7: {load_load_ibin} load 1
     8: load 0
     9: iadd
    10: store 1
    11: {iinc_goto} iinc 0, -1
    12: goto -> 3
    13: enter_block b3
    14: load 1
    15: return
";
    assert_eq!(listing, expected);
}

#[test]
fn cold_profile_selects_nothing() {
    let program = loop_program();
    // Two iterations: every candidate count sits far below the default
    // `min_count` floor of 32, so the stream must be untouched.
    let (listing, report) = fused_listing(&program, 2);
    assert_eq!(report.fused(), 0, "cold profile must not fuse");
    assert!(
        !listing.contains('{'),
        "no fused heads may appear in the cold listing:\n{listing}"
    );
    // And it is exactly the unfused decoded listing.
    let plain = tracecache_repro::vm::DecodedProgram::decode(&program).disassemble(&program);
    assert_eq!(listing, plain);
}

/// The same stream, unfused again, is bit-identical to a fresh decode —
/// quickening is fully reversible.
#[test]
fn unfuse_restores_the_original_stream() {
    let program = loop_program();
    let mut vm = Vm::new(&program);
    let mut counts = BlockCounts::for_program(&program);
    vm.run(&[Value::Int(1000)], &mut counts).unwrap();
    let report = vm.fuse_with_profile(counts, &FusionConfig::default());
    assert!(report.fused() > 0);
    vm.unfuse();
    let plain = tracecache_repro::vm::DecodedProgram::decode(&program).disassemble(&program);
    assert_eq!(vm.decoded().disassemble(&program), plain);
    // Still runs correctly after the round-trip.
    let got = vm.run(&[Value::Int(10)], &mut NullObserver).unwrap();
    assert_eq!(got, Some(Value::Int(55)));
}

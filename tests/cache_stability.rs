//! Cache stability (the paper's third design constraint, §3.6): "we need
//! to minimize the number of times we replace traces". On steady-state
//! workloads the cache must settle — entry links stop being replaced —
//! while on phase-changing workloads the decaying profiler must keep
//! adapting (replacements tracking the phase changes, not runaway churn).

use tracecache_repro::bytecode::{CmpOp, Program, ProgramBuilder};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};
use tracecache_repro::workloads::{registry, Scale};

/// Base seed for the randomised sweeps below (case `k` uses
/// `seed_stream(BASE_SEED, k)`; every failure message carries the seed).
const BASE_SEED: u64 = 0x57AB_5EED;

#[test]
fn steady_workloads_have_stable_caches() {
    for w in registry::all(Scale::Test) {
        let mut tvm = TraceVm::new(
            &w.program,
            TraceJitConfig::paper_default().with_start_delay(16),
        );
        let r = tvm.run(&w.args).unwrap();
        // Replacements may happen during warmup, but must stay far below
        // the number of trace dispatches: the cache is not thrashing.
        let entered = r.traces.entered.max(1);
        assert!(
            r.cache.links_replaced * 20 <= entered,
            "{}: {} replacements for {} trace entries",
            w.name,
            r.cache.links_replaced,
            entered,
        );
    }
}

#[test]
fn second_run_constructs_almost_nothing_new() {
    // A warmed cache on an unchanged workload should need few or no new
    // traces: the profiler's statistics already describe the program.
    let w = registry::compress(Scale::Test);
    let mut tvm = TraceVm::new(
        &w.program,
        TraceJitConfig::paper_default().with_start_delay(16),
    );
    let r1 = tvm.run(&w.args).unwrap();
    let r2 = tvm.run(&w.args).unwrap();
    let new_traces = r2.cache.traces_constructed - r1.cache.traces_constructed;
    assert!(
        new_traces * 4 <= r1.cache.traces_constructed.max(4),
        "second run built {new_traces} new traces vs {} in the first",
        r1.cache.traces_constructed
    );
}

fn phase_program(phases: i64, phase_len: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 0, true);
    let b = pb.function_mut(f);
    let acc = b.alloc_local();
    let p = b.alloc_local();
    let i = b.alloc_local();
    b.iconst(0).store(acc).iconst(0).store(p);
    let p_head = b.bind_new_label();
    let p_exit = b.new_label();
    b.load(p).iconst(phases).if_icmp(CmpOp::Ge, p_exit);
    b.iconst(0).store(i);
    let i_head = b.bind_new_label();
    let i_exit = b.new_label();
    b.load(i).iconst(phase_len).if_icmp(CmpOp::Ge, i_exit);
    let odd = b.new_label();
    let cont = b.new_label();
    b.load(p).iconst(1).iand().if_i(CmpOp::Ne, odd);
    b.load(acc).iconst(3).imul().load(i).iadd().store(acc);
    b.goto(cont);
    b.bind(odd);
    b.load(acc).load(i).ixor().iconst(7).iadd().store(acc);
    b.bind(cont);
    b.iinc(i, 1).goto(i_head);
    b.bind(i_exit);
    b.iinc(p, 1).goto(p_head);
    b.bind(p_exit);
    b.load(acc).ret();
    pb.build(f).expect("builds")
}

#[test]
fn decay_keeps_adapting_where_cumulative_counters_stall() {
    let program = phase_program(20, 4_000);
    let run = |decay_interval: u32| {
        let mut cfg = TraceJitConfig::paper_default().with_start_delay(16);
        cfg.decay_interval = decay_interval;
        TraceVm::new(&program, cfg).run(&[]).unwrap()
    };
    let decaying = run(256);
    let cumulative = run(u32::MAX);
    assert!(
        decaying.profiler.total_signals() > cumulative.profiler.total_signals(),
        "decay must keep signalling across phases: {} vs {}",
        decaying.profiler.total_signals(),
        cumulative.profiler.total_signals()
    );
    // And the adaptation must pay off in trace quality on the phase-
    // changing stream.
    assert!(
        decaying.coverage_incl_partial() >= cumulative.coverage_incl_partial(),
        "decay coverage {} vs cumulative {}",
        decaying.coverage_incl_partial(),
        cumulative.coverage_incl_partial()
    );
}

/// The no-thrashing bound holds across randomly shaped phase programs,
/// not just the six workloads; each case's seed reproduces its program.
#[test]
fn random_phase_programs_do_not_thrash_the_cache() {
    for case in 0..8u64 {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let phases = i64::from(rng.range_u32(2, 12));
        let phase_len = i64::from(rng.range_u32(500, 4_000));
        let program = phase_program(phases, phase_len);
        let mut tvm = TraceVm::new(
            &program,
            TraceJitConfig::paper_default().with_start_delay(16),
        );
        let r = tvm
            .run(&[])
            .unwrap_or_else(|e| panic!("seed {seed:#x}: run failed: {e:?}"));
        let entered = r.traces.entered.max(1);
        assert!(
            r.cache.links_replaced * 10 <= entered,
            "seed {seed:#x} ({phases} phases x {phase_len}): {} replacements \
             for {} trace entries",
            r.cache.links_replaced,
            entered,
        );
    }
}

//! Golden pin of the snapshot container format.
//!
//! A snapshot written today must load in tomorrow's build (or fail
//! loudly with a version error), so the byte-level layout is part of
//! the public contract. This suite builds a small fixed snapshot from a
//! hand-seeded profiler and cache and pins its exact encoding: any
//! accidental format change — field width, order, endianness, CRC
//! coverage, section layout — fails here first, forcing a deliberate
//! `SNAPSHOT_VERSION` bump instead of a silent skew.

use tracecache_repro::bcg::{BcgConfig, BranchCorrelationGraph};
use tracecache_repro::bytecode::{BlockId, FuncId};
use tracecache_repro::persist::{
    Snapshot, SnapshotError, SnapshotReader, MAGIC, SECTION_BCG, SECTION_CACHE, SECTION_QUARANTINE,
    SNAPSHOT_VERSION,
};
use tracecache_repro::tracecache::TraceCache;

fn blk(b: u32) -> BlockId {
    BlockId::new(FuncId(0), b)
}

/// Program hash of the golden fixture (arbitrary fixed value — the
/// format does not interpret it).
const GOLDEN_HASH: u64 = 0x0123_4567_89AB_CDEF;

/// A small, fully deterministic snapshot: a profiler warmed past its
/// start delay on a fixed block stream, one shared trace with two entry
/// links, one quarantine entry, and a payload budget.
fn golden_snapshot() -> Snapshot {
    let mut bcg = BranchCorrelationGraph::new(BcgConfig::paper_default().with_start_delay(2));
    for i in 0..8 {
        bcg.observe(blk(0));
        bcg.observe(blk(1));
        bcg.observe(blk(if i == 7 { 3 } else { 2 }));
    }
    let mut cache = TraceCache::new();
    cache.insert_and_link((blk(2), blk(0)), vec![blk(0), blk(1), blk(2)], 0.9375);
    cache.insert_and_link((blk(3), blk(0)), vec![blk(0), blk(1), blk(2)], 0.9375);
    cache.restore_quarantine((blk(1), blk(3)), vec![blk(3), blk(0)], 2);
    cache.set_budget(Some(2048));
    Snapshot::capture(GOLDEN_HASH, &bcg, &cache)
}

/// The pinned container bytes, as hex.
const GOLDEN_HEX: &str = "5443534e41500d0a0100000000000000efcdab896745230142434731b8000000000000000400000000000000000000000000000001000000010800000000000000000000000800000002000000000002000000070000000000030000000100000000000100000000000000020000000107000000000000000000000007000000010000000000000000000700000000000200000000000000000000000107000000000000000000000007000000010000000000010000000700000000000100000000000000030000000000000000000000000200000000000000000015326ac1434143315d0000000000000001000800000000000001000000000000000000ee3f0300000000000000000000000000000001000000000000000200000002000000000000000200000000000000000000000000000000000000030000000000000000000000000000004a50222a515541312c000000000000000100000000000000010000000000000003000000020000000200000000000000030000000000000000000000bfe5c95a";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The full container encoding is pinned byte for byte.
#[test]
fn golden_bytes_are_pinned() {
    let bytes = golden_snapshot().to_bytes();
    assert_eq!(
        hex(&bytes),
        GOLDEN_HEX,
        "snapshot encoding changed — if intentional, bump SNAPSHOT_VERSION \
         and re-pin this golden"
    );
}

/// Header and section framing sit at the pinned offsets.
#[test]
fn header_and_section_layout_is_pinned() {
    let bytes = golden_snapshot().to_bytes();

    // header := magic[8] version:u32 flags:u32 program_hash:u64
    assert_eq!(&bytes[0..8], &MAGIC);
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        SNAPSHOT_VERSION
    );
    assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 0);
    assert_eq!(
        u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        GOLDEN_HASH
    );

    // section := tag:u32 payload_len:u64 payload crc:u32, fixed order.
    let mut pos = 24;
    for (expected_tag, name) in [
        (SECTION_BCG, "bcg"),
        (SECTION_CACHE, "cache"),
        (SECTION_QUARANTINE, "quarantine"),
    ] {
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        assert_eq!(tag, expected_tag, "{name} tag at {pos}");
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload = &bytes[pos + 12..pos + 12 + len];
        let crc = u32::from_le_bytes(bytes[pos + 12 + len..pos + 16 + len].try_into().unwrap());
        assert_eq!(
            crc,
            tracecache_repro::persist::crc32(payload),
            "{name} crc at {pos}"
        );
        pos += 16 + len;
    }
    assert_eq!(pos, bytes.len(), "no trailing bytes after the last section");
}

/// Version skew in either direction is rejected with the right error —
/// a future v2 reader may accept v1, but a v1 reader must never guess
/// at bytes it does not understand.
#[test]
fn version_skew_is_rejected() {
    let snap = golden_snapshot();
    let bytes = snap.to_bytes();

    for skew in [SNAPSHOT_VERSION - 1, SNAPSHOT_VERSION + 1] {
        let mut m = bytes.clone();
        m[8..12].copy_from_slice(&skew.to_le_bytes());
        assert_eq!(
            SnapshotReader::new().read(&m, GOLDEN_HASH),
            Err(SnapshotError::UnsupportedVersion { found: skew }),
            "version {skew} must be rejected"
        );
    }
}

/// The golden bytes decode back to the golden snapshot (the pin is not
/// write-only).
#[test]
fn golden_bytes_decode() {
    let snap = golden_snapshot();
    let back = SnapshotReader::new()
        .read(&snap.to_bytes(), GOLDEN_HASH)
        .expect("golden bytes decode");
    assert_eq!(back, snap);
    assert_eq!(back.cache.budget, Some(2048));
    assert_eq!(back.cache.traces.len(), 1, "shared trace stored once");
    assert_eq!(back.cache.links.len(), 2);
    assert_eq!(back.cache.quarantine.len(), 1);
    assert!(!back.bcg.nodes.is_empty());
}

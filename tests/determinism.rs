//! Determinism: every layer of the system is seeded and re-runnable —
//! identical inputs must give bit-identical reports.

use tracecache_repro::jit::experiment::run_point;
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::workloads::{registry, Scale};

#[test]
fn repeated_runs_are_bit_identical() {
    for w in registry::all(Scale::Test) {
        let a = run_point(&w.program, &w.args, TraceJitConfig::paper_default()).unwrap();
        let b = run_point(&w.program, &w.args, TraceJitConfig::paper_default()).unwrap();
        assert_eq!(a, b, "{} must be deterministic", w.name);
    }
}

#[test]
fn rebuilt_workloads_are_identical() {
    for (a, b) in registry::all(Scale::Test)
        .into_iter()
        .zip(registry::all(Scale::Test))
    {
        assert_eq!(a.expected_checksum, b.expected_checksum);
        assert_eq!(
            a.program.total_instructions(),
            b.program.total_instructions()
        );
    }
}

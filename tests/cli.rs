//! End-to-end tests of the `tracevm` command-line interface.

use std::process::Command;

fn tracevm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracevm"))
}

#[test]
fn list_names_all_six_workloads() {
    let out = tracevm().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "compress",
        "javac",
        "raytrace",
        "mpegaudio",
        "soot",
        "scimark",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn run_reports_matching_checksum_on_every_engine() {
    for engine in ["interp", "trace", "exec", "exec-opt"] {
        let out = tracevm()
            .args([
                "run", "compress", "--scale", "test", "--engine", engine, "--delay", "16",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "engine {engine} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("matches reference"),
            "engine {engine} checksum mismatch:\n{stdout}"
        );
    }
}

#[test]
fn disasm_lists_blocks() {
    let out = tracevm()
        .args(["disasm", "javac", "--scale", "test"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("`main`"));
    assert!(stdout.contains("b0"));
    assert!(stdout.contains("tableswitch"));
}

#[test]
fn compare_prints_all_three_selectors() {
    let out = tracevm()
        .args(["compare", "raytrace", "--scale", "test"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for sel in ["bcg", "net", "replay"] {
        assert!(stdout.contains(sel), "missing {sel}:\n{stdout}");
    }
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = tracevm()
        .args(["run", "quake", "--scale", "test"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload"));
}

#[test]
fn bad_option_shows_usage() {
    let out = tracevm()
        .args(["run", "compress", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn dot_writes_both_files() {
    let dir = std::env::temp_dir().join("tracevm_dot_test");
    let _ = std::fs::create_dir_all(&dir);
    let out = tracevm()
        .args([
            "dot",
            "soot",
            "--scale",
            "test",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let bcg = std::fs::read_to_string(dir.join("bcg.dot")).expect("bcg.dot written");
    assert!(bcg.starts_with("digraph bcg {"));
    let traces = std::fs::read_to_string(dir.join("traces.dot")).expect("traces.dot written");
    assert!(traces.starts_with("digraph traces {"));
}

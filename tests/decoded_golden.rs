//! Golden test: the decoded (pre-decoded threaded) form of a fixed
//! program is stable and readable. The companion of `disasm_golden.rs`
//! one layer down: same program shape, but listing the flat opcode
//! stream the interpreter actually executes — block-entry markers baked
//! in, jump targets resolved to absolute decoded indices, constants
//! interned into pools.

use tracecache_repro::bytecode::{CmpOp, Intrinsic, ProgramBuilder};
use tracecache_repro::vm::DecodedProgram;

#[test]
fn decoded_listing_matches_golden() {
    let mut pb = ProgramBuilder::new();
    let leaf = pb.declare_function("leaf", 1, true);
    pb.function_mut(leaf).load(0).iconst(1).iadd().ret();
    let main_f = pb.declare_function("main", 1, false);
    {
        let b = pb.function_mut(main_f);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(0).invoke_static(leaf).intrinsic(Intrinsic::Checksum);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.ret_void();
    }
    let program = pb.build(main_f).unwrap();
    let decoded = DecodedProgram::decode(&program);

    // The full listing is pinned: any layout change (marker placement,
    // operand packing, pool interning, jump resolution) must show up
    // here as a reviewed diff.
    let expected = "\
fn leaf (fn#0) params=1 locals=1 max_stack=2 frame=3
     0: enter_block b0
     1: load 0
     2: iconst 1
     3: iadd
     4: return
fn main (fn#1) params=1 locals=1 max_stack=1 frame=2
     0: enter_block b0
     1: load 0
     2: if le -> 10
     3: enter_block b1
     4: load 0
     5: invokestatic fn#0 argc=1
     6: enter_block b2
     7: checksum
     8: iinc 0, -1
     9: goto -> 0
    10: enter_block b3
    11: return_void
";
    assert_eq!(decoded.disassemble(&program), expected);
}

#[test]
fn decoded_layout_law_holds_on_the_golden_program() {
    // The closed-form layout: the instruction at original pc `p` inside
    // block `bi` lands at decoded index `p + bi + 1`, so a block starting
    // at original pc `t` has its marker at `pc_map[t] - 1`.
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, true);
    {
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
    }
    let program = pb.build(f).unwrap();
    let decoded = DecodedProgram::decode(&program);
    let df = decoded.func(program.entry());

    // Every original pc maps to its decoded slot; each block's first
    // original instruction is preceded by that block's marker.
    let func = program.function(program.entry());
    for (bi, block) in func.blocks().iter().enumerate() {
        let marker = df.code[df.block_entry(block.start) as usize];
        assert_eq!(marker.op, tracecache_repro::vm::decode::op::ENTER_BLOCK);
        assert_eq!(marker.b as usize, bi);
        assert_eq!(
            df.block_entry(block.start),
            df.pc_map[block.start as usize] - 1
        );
    }
    // Markers are not instructions: decoded stream = instrs + blocks.
    assert_eq!(
        df.code.len(),
        func.code().len() + func.blocks().len(),
        "one marker per block, nothing else added"
    );
}

//! Differential testing of the trace-executing engine against the plain
//! interpreter: on every workload, with and without the optimizer, the
//! engine must produce identical results and checksums — the trace
//! machinery, guards, side exits and peephole passes may never change
//! observable semantics.

use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::{registry, Scale};

// `reg_ir: false` keeps this suite pinned on the decoded-trace path —
// the register path has its own differential suite (reg_differential.rs).
fn engine_config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig::paper_default().with_start_delay(16),
        optimize: false,
        superinstructions: true,
        reg_ir: false,
        dop_fusion: true,
        health: true,
    }
}

#[test]
fn engine_matches_interpreter_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let mut plain = Vm::new(&w.program);
        let want = plain.run(&w.args, &mut NullObserver).unwrap();

        let mut engine = TracingVm::new(&w.program, engine_config());
        let report = engine.run(&w.args).unwrap();

        assert_eq!(report.result, want, "{} result", w.name);
        assert_eq!(report.checksum, w.expected_checksum, "{} checksum", w.name);
        assert_eq!(
            report.exec.instructions,
            plain.stats().instructions,
            "{}: unoptimized trace execution must execute the same \
             instruction sequence",
            w.name
        );
    }
}

#[test]
fn engine_actually_executes_traces_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let mut engine = TracingVm::new(&w.program, engine_config());
        let report = engine.run(&w.args).unwrap();
        assert!(
            engine.compiled_count() > 0,
            "{}: no traces were compiled",
            w.name
        );
        assert!(
            report.traces.completed > 0,
            "{}: no trace ran to completion",
            w.name
        );
    }
}

#[test]
fn engine_reduces_dispatches_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let mut plain = Vm::new(&w.program);
        plain.run(&w.args, &mut NullObserver).unwrap();

        let mut engine = TracingVm::new(&w.program, engine_config());
        let report = engine.run(&w.args).unwrap();
        assert!(
            report.exec.block_dispatches < plain.stats().block_dispatches,
            "{}: engine {} vs interpreter {} dispatches",
            w.name,
            report.exec.block_dispatches,
            plain.stats().block_dispatches
        );
    }
}

#[test]
fn optimized_engine_preserves_semantics_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let mut engine = TracingVm::new(&w.program, engine_config().with_optimizer(true));
        let report = engine.run(&w.args).unwrap();
        assert_eq!(
            report.checksum, w.expected_checksum,
            "{}: optimizer broke semantics",
            w.name
        );
        let baseline = {
            let mut e = TracingVm::new(&w.program, engine_config());
            e.run(&w.args).unwrap()
        };
        assert!(
            report.exec.instructions <= baseline.exec.instructions,
            "{}: optimizer must never add instructions",
            w.name
        );
    }
}

#[test]
fn warm_engine_runs_stay_correct() {
    let w = registry::compress(Scale::Test);
    let mut engine = TracingVm::new(&w.program, engine_config());
    for i in 0..3 {
        let report = engine.run(&w.args).unwrap();
        assert_eq!(report.checksum, w.expected_checksum, "run {i}");
    }
}

//! Differential testing of the register-lowered trace path: with
//! `reg_ir` on, the engine executes hot traces from three-address
//! virtual-register code, and nothing observable may change — results,
//! checksums, and (unoptimized) the exact instruction count must match
//! the plain interpreter bit-for-bit.
//!
//! Coverage is three-pronged:
//!
//! * all six paper workloads, asserting traces really take the register
//!   path (not the decoded fallback);
//! * a seeded fuzz corpus over the shared [`genprog`] generator;
//! * hand-built side-exit-heavy chaos programs that force every guard
//!   kind to *fail* — conditional, switch, virtual-dispatch and
//!   return-continuation (including the depth-0 recursive-entry case) —
//!   so the register→frame reconstruction at each exit kind is proven
//!   against the interpreter, not just the guard-passes fast path.
//!
//! [`genprog`]: tracecache_repro::conformance::genprog

use tracecache_repro::bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use tracecache_repro::conformance::genprog::{args_from, build_program, gen_block};
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::vm::{NullObserver, Value, Vm};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};
use tracecache_repro::workloads::{registry, Scale};

const BASE_SEED: u64 = 0xD1FF_5EED ^ 0x4E67;

fn reg_config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig::paper_default().with_start_delay(16),
        optimize: false,
        superinstructions: true,
        reg_ir: true,
        dop_fusion: true,
        health: true,
    }
}

/// Aggressive tracing so the tiny chaos programs actually trace.
fn chaos_config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90),
        optimize: false,
        superinstructions: true,
        reg_ir: true,
        dop_fusion: true,
        health: true,
    }
}

/// Runs `program` under the plain interpreter and the register-trace
/// engine and asserts bit-exact agreement, returning the engine's trace
/// counters for exit-coverage assertions.
fn assert_reg_matches(
    program: &Program,
    args: &[Value],
    config: EngineConfig,
    label: &str,
) -> (tracecache_repro::tracecache::TraceExecStats, usize) {
    let mut plain = Vm::new(program);
    let want = plain.run(args, &mut NullObserver).unwrap();

    let mut engine = TracingVm::new(program, config);
    let report = engine.run(args).unwrap();
    assert_eq!(report.result, want, "{label}: result diverged");
    assert_eq!(
        report.checksum,
        plain.checksum(),
        "{label}: checksum diverged"
    );
    assert_eq!(
        report.exec.instructions,
        plain.stats().instructions,
        "{label}: register traces must execute the same instruction sequence"
    );
    (report.traces, engine.reg_lowered_count())
}

#[test]
fn reg_engine_matches_interpreter_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let (traces, reg_count) = assert_reg_matches(&w.program, &w.args, reg_config(), w.name);
        assert!(traces.entered > 0, "{}: no traces dispatched", w.name);
        assert!(reg_count > 0, "{}: no trace took the register path", w.name);
    }
}

#[test]
fn optimized_reg_engine_preserves_semantics_on_all_workloads() {
    for w in registry::all(Scale::Test) {
        let mut engine = TracingVm::new(&w.program, reg_config().with_optimizer(true));
        let report = engine.run(&w.args).unwrap();
        assert_eq!(
            report.checksum, w.expected_checksum,
            "{}: optimizer + register lowering broke semantics",
            w.name
        );
    }
}

#[test]
fn reg_engine_matches_interpreter_on_random_programs() {
    let cases = if cfg!(feature = "exhaustive-tests") {
        256
    } else {
        48
    };
    for case in 0..cases {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        assert_reg_matches(&program, &args, chaos_config(), &format!("seed {seed:#x}"));
    }
}

/// Warm register traces stay correct across runs (the constant table and
/// register file are rebuilt per dispatch, never stale).
#[test]
fn warm_reg_engine_runs_stay_correct() {
    let w = registry::compress(Scale::Test);
    let mut engine = TracingVm::new(&w.program, reg_config());
    for i in 0..3 {
        let report = engine.run(&w.args).unwrap();
        assert_eq!(report.checksum, w.expected_checksum, "run {i}");
    }
    assert!(engine.reg_lowered_count() > 0);
}

/// A hot loop whose conditional flips every 16th iteration: the trace
/// guards the 15/16-biased direction and must side-exit (reconstructing
/// the frame) on each flip.
fn cond_flip_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, true);
    let b = pb.function_mut(f);
    let s = b.alloc_local();
    b.iconst(0).store(s);
    let head = b.bind_new_label();
    let exit = b.new_label();
    let rare = b.new_label();
    let join = b.new_label();
    b.load(0).if_i(CmpOp::Le, exit);
    b.load(0).iconst(15).iand().if_i(CmpOp::Eq, rare);
    // common arm: s = s*3 + i
    b.load(s)
        .iconst(3)
        .imul()
        .load(0)
        .iadd()
        .store(s)
        .goto(join);
    b.bind(rare);
    b.load(s).iconst(31).iadd().store(s).goto(join);
    b.bind(join);
    b.load(s).intrinsic(Intrinsic::Checksum);
    b.iinc(0, -1).goto(head);
    b.bind(exit);
    b.load(s).ret();
    pb.build(f).unwrap()
}

#[test]
fn cond_guard_side_exits_reconstruct_the_frame() {
    let program = cond_flip_program();
    let (traces, reg_count) =
        assert_reg_matches(&program, &[Value::Int(4_000)], chaos_config(), "cond-flip");
    assert!(reg_count > 0, "register traces must lower");
    assert!(traces.entered > 0 && traces.exited_early > 0, "{traces:?}");
}

/// A 15/16-biased tableswitch: the trace guards the dominant arm and
/// must side-exit through the switch guard on the rare selector.
fn switch_flip_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 1, true);
    let b = pb.function_mut(f);
    let s = b.alloc_local();
    b.iconst(0).store(s);
    let head = b.bind_new_label();
    let exit = b.new_label();
    let rare = b.new_label();
    let common = b.new_label();
    let join = b.new_label();
    b.load(0).if_i(CmpOp::Le, exit);
    b.load(0).iconst(15).iand().table_switch(0, &[rare], common);
    b.bind(rare);
    b.load(s).iconst(999).iadd().store(s).goto(join);
    b.bind(common);
    b.load(s)
        .iconst(5)
        .imul()
        .load(0)
        .iadd()
        .store(s)
        .goto(join);
    b.bind(join);
    b.load(s).intrinsic(Intrinsic::Checksum);
    b.iinc(0, -1).goto(head);
    b.bind(exit);
    b.load(s).ret();
    pb.build(f).unwrap()
}

#[test]
fn switch_guard_side_exits_reconstruct_the_frame() {
    let program = switch_flip_program();
    let (traces, reg_count) = assert_reg_matches(
        &program,
        &[Value::Int(4_000)],
        chaos_config(),
        "switch-flip",
    );
    assert!(reg_count > 0, "register traces must lower");
    assert!(traces.entered > 0 && traces.exited_early > 0, "{traces:?}");
}

/// Virtual dispatch whose receiver class flips every 16th iteration,
/// selected branch-free through an array so the *receiver guard* (not an
/// earlier conditional guard) takes the miss. Also covers allocation and
/// array traffic inside register traces.
fn virtual_flip_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let ma = pb.declare_function("A.m", 1, true);
    pb.function_mut(ma).iconst(17).ret();
    let mb = pb.declare_function("B.m", 1, true);
    pb.function_mut(mb).iconst(91).ret();
    let a = pb.declare_class("A", None, 0);
    let slot = pb.add_method(a, ma);
    let bcls = pb.declare_class("B", None, 0);
    let slot_b = pb.add_method(bcls, mb);
    assert_eq!(slot, slot_b);

    let f = pb.declare_function("main", 1, true);
    let b = pb.function_mut(f);
    let s = b.alloc_local();
    let arr = b.alloc_local();
    // arr = [B, A]; arr[1] is the common receiver.
    b.iconst(0).store(s);
    b.iconst(2).new_array().store(arr);
    b.load(arr).iconst(0).new_obj(bcls).astore();
    b.load(arr).iconst(1).new_obj(a).astore();
    let head = b.bind_new_label();
    let exit = b.new_label();
    b.load(0).if_i(CmpOp::Le, exit);
    // idx = ((i & 15) + 15) >> 4  — branch-free: 0 iff (i & 15) == 0.
    b.load(arr);
    b.load(0)
        .iconst(15)
        .iand()
        .iconst(15)
        .iadd()
        .iconst(4)
        .ishr();
    b.aload().invoke_virtual(slot, 1);
    b.load(s).iadd().store(s);
    b.load(s).intrinsic(Intrinsic::Checksum);
    b.iinc(0, -1).goto(head);
    b.bind(exit);
    b.load(s).ret();
    pb.build(f).unwrap()
}

#[test]
fn virtual_guard_side_exits_reconstruct_the_frame() {
    let program = virtual_flip_program();
    let (traces, reg_count) = assert_reg_matches(
        &program,
        &[Value::Int(4_000)],
        chaos_config(),
        "virtual-flip",
    );
    assert!(reg_count > 0, "register traces must lower");
    assert!(traces.entered > 0 && traces.exited_early > 0, "{traces:?}");
}

/// A recursive *entry* function: traces form inside the recursion and
/// cross its return (a depth-0 lowering — the trace enters mid-callee
/// with an empty abstract caller). Dispatching the same trace in the
/// outermost frame makes the return guard fire with no caller at all,
/// covering the `frames.len() < 2` exit arm; returning into the
/// wrong-continuation caller covers the mismatch arm.
fn recursive_return_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("f", 1, true);
    let b = pb.function_mut(f);
    let acc = b.alloc_local();
    let k = b.alloc_local();
    let base = b.new_label();
    b.load(0).if_i(CmpOp::Le, base);
    b.iconst(0).store(acc).iconst(8).store(k);
    let head = b.bind_new_label();
    let done = b.new_label();
    b.load(k).if_i(CmpOp::Le, done);
    b.load(acc).iconst(2).imul().load(k).iadd().store(acc);
    b.load(acc).intrinsic(Intrinsic::Checksum);
    b.iinc(k, -1).goto(head);
    b.bind(done);
    b.load(0).iconst(1).isub().invoke_static(f);
    b.load(acc).iadd().ret();
    b.bind(base);
    b.iconst(0).ret();
    pb.build(f).unwrap()
}

#[test]
fn return_guard_side_exits_reconstruct_the_frame() {
    let program = recursive_return_program();
    let (traces, reg_count) = assert_reg_matches(
        &program,
        &[Value::Int(400)],
        chaos_config(),
        "recursive-return",
    );
    assert!(reg_count > 0, "register traces must lower");
    assert!(traces.entered > 0, "{traces:?}");
}

/// Every chaos program stays correct across warm re-runs and under the
/// optimizer — the side-exit-heavy paths are where stale register state
/// would show.
#[test]
fn chaos_programs_survive_warm_optimized_runs() {
    for (name, program, n) in [
        ("cond-flip", cond_flip_program(), 2_000),
        ("switch-flip", switch_flip_program(), 2_000),
        ("virtual-flip", virtual_flip_program(), 2_000),
        ("recursive-return", recursive_return_program(), 200),
    ] {
        let args = [Value::Int(n)];
        let mut plain = Vm::new(&program);
        plain.run(&args, &mut NullObserver).unwrap();
        let want = plain.checksum();
        let mut engine = TracingVm::new(&program, chaos_config().with_optimizer(true));
        for run in 0..3 {
            let report = engine.run(&args).unwrap();
            assert_eq!(report.checksum, want, "{name} run {run}");
        }
    }
}

//! Cross-crate trace-quality invariants: the headline properties the
//! paper's evaluation establishes, checked at test scale.

use tracecache_repro::jit::experiment::{
    delay_sweep, run_point, threshold_sweep, PAPER_DELAYS, PAPER_THRESHOLDS,
};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::workloads::{registry, Scale};

fn paper_cfg() -> TraceJitConfig {
    // Start delay scaled down with the Test-scale inputs so the loops get
    // hot within the shorter runs, as in the paper's delay discussion.
    TraceJitConfig::paper_default().with_start_delay(16)
}

#[test]
fn all_workloads_reach_reasonable_coverage() {
    for w in registry::all(Scale::Test) {
        let r = run_point(&w.program, &w.args, paper_cfg()).unwrap();
        assert!(
            r.coverage_completed() > 0.5,
            "{}: coverage {:.2}",
            w.name,
            r.coverage_completed()
        );
    }
}

#[test]
fn completion_rate_is_high_at_97_percent_threshold() {
    // Table III's shape: at the 97% threshold, completion must be ≥ 90%
    // everywhere (the paper reports ≥ 97% at full scale).
    for w in registry::all(Scale::Test) {
        let r = run_point(&w.program, &w.args, paper_cfg()).unwrap();
        assert!(r.traces.entered > 0, "{}: no traces entered", w.name);
        assert!(
            r.completion_rate() > 0.9,
            "{}: completion {:.3}",
            w.name,
            r.completion_rate()
        );
    }
}

#[test]
fn traces_reduce_dispatches_on_every_workload() {
    for w in registry::all(Scale::Test) {
        let r = run_point(&w.program, &w.args, paper_cfg()).unwrap();
        let d = r.dispatch_counts();
        assert!(d.per_trace < d.per_block, "{}: {d:?}", w.name);
        assert!(d.per_block < d.per_instruction, "{}: {d:?}", w.name);
    }
}

#[test]
fn threshold_sweep_produces_valid_metrics_everywhere() {
    let w = registry::raytrace(Scale::Test);
    let pts = threshold_sweep(&w.program, &w.args, &PAPER_THRESHOLDS, 16, paper_cfg()).unwrap();
    assert_eq!(pts.len(), PAPER_THRESHOLDS.len());
    for p in &pts {
        let r = &p.report;
        assert!(r.coverage_completed() >= 0.0 && r.coverage_completed() <= 1.0);
        assert!(r.coverage_incl_partial() >= r.coverage_completed());
        assert!(r.completion_rate() >= 0.0 && r.completion_rate() <= 1.0);
        assert!(r.avg_trace_length() >= 0.0);
    }
}

#[test]
fn larger_delay_increases_trace_event_interval() {
    // Table V's shape: the trace event interval grows with the start
    // delay (fewer branches become hot, fewer signals + traces).
    let w = registry::compress(Scale::Test);
    let pts = delay_sweep(
        &w.program,
        &w.args,
        &PAPER_DELAYS,
        0.97,
        TraceJitConfig::paper_default(),
    )
    .unwrap();
    let intervals: Vec<f64> = pts
        .iter()
        .map(|p| p.report.trace_event_interval())
        .collect();
    assert!(
        intervals[0] <= intervals[1] && intervals[1] <= intervals[2],
        "event interval must grow with delay: {intervals:?}"
    );
}

#[test]
fn every_constructed_trace_satisfies_its_threshold() {
    let w = registry::soot(Scale::Test);
    let mut tvm = TraceVm::new(&w.program, paper_cfg());
    tvm.run(&w.args).unwrap();
    for trace in tvm.cache().iter_traces() {
        assert!(
            trace.expected_completion() >= 0.97 - 1e-9,
            "trace {} below threshold: {}",
            trace.id(),
            trace.expected_completion()
        );
        assert!(trace.len() >= 2);
        assert!(trace.len() <= paper_cfg().max_trace_blocks);
    }
}

#[test]
fn entered_traces_balance_completed_plus_early_exits() {
    for w in registry::all(Scale::Test) {
        let r = run_point(&w.program, &w.args, paper_cfg()).unwrap();
        assert_eq!(
            r.traces.entered,
            r.traces.completed + r.traces.exited_early,
            "{}",
            w.name
        );
    }
}

#[test]
fn mpegaudio_and_scimark_are_most_predictable() {
    // §5.1's characterisation: the DSP/scientific workloads have the most
    // regular branches, so their inline-cache hit ratios must top the
    // irregular ones (javac, soot).
    let mut ratios = std::collections::HashMap::new();
    for w in registry::all(Scale::Test) {
        let r = run_point(&w.program, &w.args, paper_cfg()).unwrap();
        ratios.insert(w.name, r.profiler.cache_hit_ratio());
    }
    assert!(ratios["mpegaudio"] > ratios["javac"], "{ratios:?}");
    assert!(ratios["scimark"] > ratios["javac"], "{ratios:?}");
}

//! Cross-crate correctness: the trace machinery must never change
//! program semantics, and every workload must match its reference
//! implementation under every execution model.

use tracecache_repro::baselines::{run_with_selector, NetSelector, ReplaySelector};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::{registry, Scale};

#[test]
fn plain_vm_matches_reference_checksums() {
    for w in registry::all(Scale::Test) {
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert_eq!(vm.checksum(), w.expected_checksum, "{}", w.name);
    }
}

#[test]
fn trace_vm_is_semantically_transparent() {
    for w in registry::all(Scale::Test) {
        let mut plain = Vm::new(&w.program);
        let plain_result = plain.run(&w.args, &mut NullObserver).unwrap();

        let mut tvm = TraceVm::new(&w.program, TraceJitConfig::paper_default());
        let report = tvm.run(&w.args).unwrap();

        assert_eq!(report.result, plain_result, "{} result", w.name);
        assert_eq!(report.checksum, w.expected_checksum, "{} checksum", w.name);
        assert_eq!(
            report.exec.instructions,
            plain.stats().instructions,
            "{} instruction count",
            w.name
        );
        assert_eq!(
            report.exec.block_dispatches,
            plain.stats().block_dispatches,
            "{} block dispatches",
            w.name
        );
    }
}

#[test]
fn trace_vm_transparent_at_every_threshold() {
    let w = registry::compress(Scale::Test);
    for &threshold in &[1.0, 0.99, 0.97, 0.95, 0.5] {
        let mut tvm = TraceVm::new(
            &w.program,
            TraceJitConfig::paper_default()
                .with_threshold(threshold)
                .with_start_delay(4),
        );
        let report = tvm.run(&w.args).unwrap();
        assert_eq!(
            report.checksum, w.expected_checksum,
            "threshold {threshold}"
        );
    }
}

#[test]
fn baseline_selectors_are_semantically_transparent() {
    for w in registry::all(Scale::Test) {
        let mut net = NetSelector::new();
        let r = run_with_selector(&w.program, &w.args, &mut net).unwrap();
        assert_eq!(r.checksum, w.expected_checksum, "{} under NET", w.name);

        let mut rp = ReplaySelector::new();
        let r = run_with_selector(&w.program, &w.args, &mut rp).unwrap();
        assert_eq!(r.checksum, w.expected_checksum, "{} under rePLay", w.name);
    }
}

#[test]
fn workload_scales_share_program_shape() {
    // Small-scale programs must differ from Test only in constants, so
    // static block counts stay equal — a guard against scale-dependent
    // codegen drift.
    for (t, s) in registry::all(Scale::Test)
        .into_iter()
        .zip(registry::all(Scale::Small))
    {
        assert_eq!(t.name, s.name);
        assert_eq!(
            t.program.total_blocks(),
            s.program.total_blocks(),
            "{}: scale must only change constants",
            t.name
        );
    }
}

//! Differential fuzzing: random structured programs executed under the
//! plain interpreter, the trace-monitoring VM, and the trace-executing
//! engine (with and without the optimizer) must agree bit-for-bit.
//!
//! The generator builds verified programs from a random AST of statements
//! (arithmetic on integer locals, `if`/`else`, bounded counted loops,
//! checksum emissions) — enough control-flow variety to exercise trace
//! construction, guard compilation, side exits and loop unrolling, while
//! every generated program terminates by construction.

use proptest::prelude::*;

use tracecache_repro::bytecode::{CmpOp, FuncId, Intrinsic, Program, ProgramBuilder};
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::vm::{NullObserver, Value, Vm};

/// A terminating statement AST over a fixed set of integer locals.
#[derive(Debug, Clone)]
enum Stmt {
    /// `l[d] = l[a] <op> l[b]` with op ∈ {+,-,*,^,&,|}.
    Arith { d: u8, a: u8, b: u8, op: u8 },
    /// `l[d] = c`.
    Const { d: u8, c: i8 },
    /// Emit `l[a]` into the checksum.
    Emit { a: u8 },
    /// `if l[a] <cmp> l[b] { then } else { other }`.
    If {
        a: u8,
        b: u8,
        cmp: u8,
        then: Vec<Stmt>,
        other: Vec<Stmt>,
    },
    /// `for _ in 0..n { body }` with its own loop counter.
    Loop { n: u8, body: Vec<Stmt>, scratch: u8 },
}

const NUM_LOCALS: u8 = 4;

fn stmt_strategy(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (0..NUM_LOCALS, 0..NUM_LOCALS, 0..NUM_LOCALS, 0u8..6)
            .prop_map(|(d, a, b, op)| { Stmt::Arith { d, a, b, op } }),
        (0..NUM_LOCALS, any::<i8>()).prop_map(|(d, c)| Stmt::Const { d, c }),
        (0..NUM_LOCALS).prop_map(|a| Stmt::Emit { a }),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                0..NUM_LOCALS,
                0..NUM_LOCALS,
                0u8..6,
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4),
            )
                .prop_map(|(a, b, cmp, then, other)| Stmt::If {
                    a,
                    b,
                    cmp,
                    then,
                    other
                }),
            (1u8..40, prop::collection::vec(inner, 1..4)).prop_map(|(n, body)| Stmt::Loop {
                n,
                body,
                scratch: 0
            }),
        ]
    })
}

fn cmp_of(idx: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][idx as usize % 6]
}

/// Emits a statement list; loop counters use locals allocated past the
/// program-visible ones.
fn emit_stmts(b: &mut tracecache_repro::bytecode::FunctionBuilder, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Arith { d, a, b: rb, op } => {
                b.load(u16::from(*a)).load(u16::from(*rb));
                match op % 6 {
                    0 => b.iadd(),
                    1 => b.isub(),
                    2 => b.imul(),
                    3 => b.ixor(),
                    4 => b.iand(),
                    _ => b.ior(),
                };
                b.store(u16::from(*d));
            }
            Stmt::Const { d, c } => {
                b.iconst(i64::from(*c)).store(u16::from(*d));
            }
            Stmt::Emit { a } => {
                b.load(u16::from(*a)).intrinsic(Intrinsic::Checksum);
            }
            Stmt::If {
                a,
                b: rb,
                cmp,
                then,
                other,
            } => {
                let else_l = b.new_label();
                let end = b.new_label();
                b.load(u16::from(*a)).load(u16::from(*rb));
                b.if_icmp(cmp_of(*cmp).negate(), else_l);
                emit_stmts(b, then);
                b.goto(end);
                b.bind(else_l);
                emit_stmts(b, other);
                b.bind(end);
                b.nop(); // keeps `end` bindable even when it's at the tail
            }
            Stmt::Loop { n, body, .. } => {
                let i = b.alloc_local();
                b.iconst(i64::from(*n)).store(i);
                let head = b.bind_new_label();
                let exit = b.new_label();
                b.load(i).if_i(CmpOp::Le, exit);
                emit_stmts(b, body);
                b.iinc(i, -1).goto(head);
                b.bind(exit);
            }
        }
    }
}

fn build_program(stmts: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", NUM_LOCALS as u16, false);
    {
        let b = pb.function_mut(f);
        emit_stmts(b, stmts);
        // Emit all visible locals so every program has observable output.
        for l in 0..NUM_LOCALS {
            b.load(u16::from(l)).intrinsic(Intrinsic::Checksum);
        }
        b.ret_void();
    }
    pb.build(FuncId(0)).expect("generated programs must verify")
}

fn args_from(seed: i64) -> Vec<Value> {
    (0..NUM_LOCALS)
        .map(|i| Value::Int(seed.wrapping_mul(i64::from(i) + 1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four execution configurations agree on every generated program.
    #[test]
    fn engines_agree_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(3), 1..8),
        seed in any::<i64>(),
    ) {
        let program = build_program(&stmts);
        let args = args_from(seed);

        let mut plain = Vm::new(&program);
        plain.run(&args, &mut NullObserver).expect("interpreter runs");
        let want = plain.checksum();
        let want_instrs = plain.stats().instructions;

        // Aggressive tracing parameters to maximise machinery coverage.
        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90);

        let mut tvm = TraceVm::new(&program, jit);
        let r = tvm.run(&args).expect("trace vm runs");
        prop_assert_eq!(r.checksum, want, "trace-monitor VM diverged");
        prop_assert_eq!(r.exec.instructions, want_instrs);

        let mut engine = TracingVm::new(&program, EngineConfig { jit, optimize: false, superinstructions: true });
        let r = engine.run(&args).expect("engine runs");
        prop_assert_eq!(r.checksum, want, "trace-executing engine diverged");
        prop_assert_eq!(r.exec.instructions, want_instrs);

        let mut opt = TracingVm::new(&program, EngineConfig { jit, optimize: true, superinstructions: true });
        let r = opt.run(&args).expect("optimizing engine runs");
        prop_assert_eq!(r.checksum, want, "optimizing engine diverged");
        prop_assert!(r.exec.instructions <= want_instrs);
    }

    /// Generated programs at a larger unroll factor still agree.
    #[test]
    fn unrolling_preserves_semantics_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(2), 1..6),
        seed in any::<i64>(),
        unroll in 0usize..5,
    ) {
        let program = build_program(&stmts);
        let args = args_from(seed);

        let mut plain = Vm::new(&program);
        plain.run(&args, &mut NullObserver).expect("interpreter runs");
        let want = plain.checksum();

        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90)
            .with_loop_unroll(unroll);
        let mut engine = TracingVm::new(&program, EngineConfig { jit, optimize: true, superinstructions: true });
        let r = engine.run(&args).expect("engine runs");
        prop_assert_eq!(r.checksum, want);
    }
}

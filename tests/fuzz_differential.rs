//! Differential fuzzing: random structured programs executed under the
//! decoded interpreter, the frozen reference interpreter, the
//! trace-monitoring VM, and the trace-executing engine (with and without
//! the optimizer) must agree bit-for-bit.
//!
//! The generator builds verified programs from a random AST of statements
//! (arithmetic on integer locals, `if`/`else`, bounded counted loops,
//! checksum emissions) — enough control-flow variety to exercise trace
//! construction, guard compilation, side exits and loop unrolling, while
//! every generated program terminates by construction.
//!
//! Offline replacement for the former `proptest` version: programs are
//! generated from the in-tree xoshiro256** PRNG; case `k` uses seed
//! `BASE_SEED + k` and every assert carries the seed for reproduction.
//! `--features exhaustive-tests` deepens the sweep.

use tracecache_repro::bytecode::{CmpOp, FuncId, Intrinsic, Program, ProgramBuilder};
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::vm::{NullObserver, RecordingObserver, ReferenceVm, Value, Vm};
use tracecache_repro::workloads::prng::Xoshiro256StarStar;

const BASE_SEED: u64 = 0xD1FF_5EED;

fn cases() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        512
    } else {
        64
    }
}

/// A terminating statement AST over a fixed set of integer locals.
#[derive(Debug, Clone)]
enum Stmt {
    /// `l[d] = l[a] <op> l[b]` with op ∈ {+,-,*,^,&,|}.
    Arith { d: u8, a: u8, b: u8, op: u8 },
    /// `l[d] = c`.
    Const { d: u8, c: i8 },
    /// Emit `l[a]` into the checksum.
    Emit { a: u8 },
    /// `if l[a] <cmp> l[b] { then } else { other }`.
    If {
        a: u8,
        b: u8,
        cmp: u8,
        then: Vec<Stmt>,
        other: Vec<Stmt>,
    },
    /// `for _ in 0..n { body }` with its own loop counter.
    Loop { n: u8, body: Vec<Stmt> },
}

const NUM_LOCALS: u8 = 4;

fn gen_local(rng: &mut Xoshiro256StarStar) -> u8 {
    rng.range_u32(0, u32::from(NUM_LOCALS)) as u8
}

fn gen_leaf(rng: &mut Xoshiro256StarStar) -> Stmt {
    match rng.range_u32(0, 3) {
        0 => Stmt::Arith {
            d: gen_local(rng),
            a: gen_local(rng),
            b: gen_local(rng),
            op: rng.range_u32(0, 6) as u8,
        },
        1 => Stmt::Const {
            d: gen_local(rng),
            c: rng.next_u64() as i8,
        },
        _ => Stmt::Emit { a: gen_local(rng) },
    }
}

/// One statement of recursion budget `depth`; `depth == 0` forces a
/// leaf, otherwise leaves and compound statements are mixed.
fn gen_stmt(rng: &mut Xoshiro256StarStar, depth: u32) -> Stmt {
    if depth == 0 || rng.chance(0.5) {
        return gen_leaf(rng);
    }
    if rng.chance(0.5) {
        Stmt::If {
            a: gen_local(rng),
            b: gen_local(rng),
            cmp: rng.range_u32(0, 6) as u8,
            then: gen_block(rng, depth - 1, 0, 4),
            other: gen_block(rng, depth - 1, 0, 4),
        }
    } else {
        Stmt::Loop {
            n: rng.range_u32(1, 40) as u8,
            body: gen_block(rng, depth - 1, 1, 4),
        }
    }
}

fn gen_block(rng: &mut Xoshiro256StarStar, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    (0..rng.range_usize(min, max))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

fn cmp_of(idx: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][idx as usize % 6]
}

/// Emits a statement list; loop counters use locals allocated past the
/// program-visible ones.
fn emit_stmts(b: &mut tracecache_repro::bytecode::FunctionBuilder, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Arith { d, a, b: rb, op } => {
                b.load(u16::from(*a)).load(u16::from(*rb));
                match op % 6 {
                    0 => b.iadd(),
                    1 => b.isub(),
                    2 => b.imul(),
                    3 => b.ixor(),
                    4 => b.iand(),
                    _ => b.ior(),
                };
                b.store(u16::from(*d));
            }
            Stmt::Const { d, c } => {
                b.iconst(i64::from(*c)).store(u16::from(*d));
            }
            Stmt::Emit { a } => {
                b.load(u16::from(*a)).intrinsic(Intrinsic::Checksum);
            }
            Stmt::If {
                a,
                b: rb,
                cmp,
                then,
                other,
            } => {
                let else_l = b.new_label();
                let end = b.new_label();
                b.load(u16::from(*a)).load(u16::from(*rb));
                b.if_icmp(cmp_of(*cmp).negate(), else_l);
                emit_stmts(b, then);
                b.goto(end);
                b.bind(else_l);
                emit_stmts(b, other);
                b.bind(end);
                b.nop(); // keeps `end` bindable even when it's at the tail
            }
            Stmt::Loop { n, body } => {
                let i = b.alloc_local();
                b.iconst(i64::from(*n)).store(i);
                let head = b.bind_new_label();
                let exit = b.new_label();
                b.load(i).if_i(CmpOp::Le, exit);
                emit_stmts(b, body);
                b.iinc(i, -1).goto(head);
                b.bind(exit);
            }
        }
    }
}

fn build_program(stmts: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", NUM_LOCALS as u16, false);
    {
        let b = pb.function_mut(f);
        emit_stmts(b, stmts);
        // Emit all visible locals so every program has observable output.
        for l in 0..NUM_LOCALS {
            b.load(u16::from(l)).intrinsic(Intrinsic::Checksum);
        }
        b.ret_void();
    }
    pb.build(FuncId(0)).expect("generated programs must verify")
}

fn args_from(seed: i64) -> Vec<Value> {
    (0..NUM_LOCALS)
        .map(|i| Value::Int(seed.wrapping_mul(i64::from(i) + 1)))
        .collect()
}

/// All four execution configurations agree on every generated program.
#[test]
fn engines_agree_on_random_programs() {
    for case in 0..cases() {
        let seed = BASE_SEED + case;
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());

        let mut plain = Vm::new(&program);
        let mut plain_stream = RecordingObserver::new();
        let result = plain
            .run(&args, &mut plain_stream)
            .expect("interpreter runs");
        let want = plain.checksum();
        let want_instrs = plain.stats().instructions;

        // The decoded engine must match the frozen reference interpreter
        // bit-for-bit: result, checksum, every statistic, and the entire
        // dispatch stream.
        let mut reference = ReferenceVm::new(&program);
        let mut ref_stream = RecordingObserver::new();
        let ref_result = reference
            .run(&args, &mut ref_stream)
            .expect("reference interpreter runs");
        assert_eq!(result, ref_result, "seed {seed}: result diverged");
        assert_eq!(want, reference.checksum(), "seed {seed}: checksum diverged");
        assert_eq!(
            plain.stats(),
            reference.stats(),
            "seed {seed}: exec stats diverged"
        );
        assert_eq!(
            plain.heap_stats(),
            reference.heap_stats(),
            "seed {seed}: heap stats diverged"
        );
        assert_eq!(
            plain_stream, ref_stream,
            "seed {seed}: dispatch stream diverged"
        );

        // Aggressive tracing parameters to maximise machinery coverage.
        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90);

        let mut tvm = TraceVm::new(&program, jit);
        let r = tvm.run(&args).expect("trace vm runs");
        assert_eq!(r.checksum, want, "seed {seed}: trace-monitor VM diverged");
        assert_eq!(r.exec.instructions, want_instrs, "seed {seed}");

        let mut engine = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: false,
                superinstructions: true,
            },
        );
        let r = engine.run(&args).expect("engine runs");
        assert_eq!(
            r.checksum, want,
            "seed {seed}: trace-executing engine diverged"
        );
        assert_eq!(r.exec.instructions, want_instrs, "seed {seed}");

        let mut opt = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: true,
                superinstructions: true,
            },
        );
        let r = opt.run(&args).expect("optimizing engine runs");
        assert_eq!(r.checksum, want, "seed {seed}: optimizing engine diverged");
        assert!(r.exec.instructions <= want_instrs, "seed {seed}");
    }
}

/// Generated programs at a larger unroll factor still agree.
#[test]
fn unrolling_preserves_semantics_on_random_programs() {
    for case in 0..cases() {
        let seed = BASE_SEED ^ (case.wrapping_mul(0x9E37_79B9)) ^ 0xA5A5;
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 2, 1, 6);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        let unroll = rng.range_usize(0, 5);

        let mut plain = Vm::new(&program);
        plain
            .run(&args, &mut NullObserver)
            .expect("interpreter runs");
        let want = plain.checksum();

        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90)
            .with_loop_unroll(unroll);
        let mut engine = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: true,
                superinstructions: true,
            },
        );
        let r = engine.run(&args).expect("engine runs");
        assert_eq!(r.checksum, want, "seed {seed}: unroll {unroll} diverged");
    }
}

//! Differential fuzzing: random structured programs executed under the
//! decoded interpreter, the frozen reference interpreter, the
//! trace-monitoring VM, and the trace-executing engine (with and without
//! the optimizer) must agree bit-for-bit.
//!
//! Program generation lives in [`tracecache_repro::conformance::genprog`]
//! (shared with the conformance chaos campaigns, so a seed printed by
//! either harness reproduces the identical program in the other).
//! Case seeds come from the workspace-wide
//! [`seed_stream`](tracecache_repro::workloads::prng::seed_stream)
//! convention and every assert carries the seed for reproduction.
//! `--features exhaustive-tests` deepens the sweep.

use tracecache_repro::conformance::genprog::{args_from, build_program, gen_block};
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::vm::{NullObserver, RecordingObserver, ReferenceVm, Vm};
use tracecache_repro::workloads::prng::{seed_stream, Xoshiro256StarStar};

const BASE_SEED: u64 = 0xD1FF_5EED;

fn cases() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        512
    } else {
        64
    }
}

/// All four execution configurations agree on every generated program.
#[test]
fn engines_agree_on_random_programs() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());

        let mut plain = Vm::new(&program);
        let mut plain_stream = RecordingObserver::new();
        let result = plain
            .run(&args, &mut plain_stream)
            .expect("interpreter runs");
        let want = plain.checksum();
        let want_instrs = plain.stats().instructions;

        // The decoded engine must match the frozen reference interpreter
        // bit-for-bit: result, checksum, every statistic, and the entire
        // dispatch stream.
        let mut reference = ReferenceVm::new(&program);
        let mut ref_stream = RecordingObserver::new();
        let ref_result = reference
            .run(&args, &mut ref_stream)
            .expect("reference interpreter runs");
        assert_eq!(result, ref_result, "seed {seed:#x}: result diverged");
        assert_eq!(
            want,
            reference.checksum(),
            "seed {seed:#x}: checksum diverged"
        );
        assert_eq!(
            plain.stats(),
            reference.stats(),
            "seed {seed:#x}: exec stats diverged"
        );
        assert_eq!(
            plain.heap_stats(),
            reference.heap_stats(),
            "seed {seed:#x}: heap stats diverged"
        );
        assert_eq!(
            plain_stream, ref_stream,
            "seed {seed:#x}: dispatch stream diverged"
        );

        // Aggressive tracing parameters to maximise machinery coverage.
        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90);

        let mut tvm = TraceVm::new(&program, jit);
        let r = tvm.run(&args).expect("trace vm runs");
        assert_eq!(
            r.checksum, want,
            "seed {seed:#x}: trace-monitor VM diverged"
        );
        assert_eq!(r.exec.instructions, want_instrs, "seed {seed:#x}");

        let mut engine = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: false,
                superinstructions: true,
                reg_ir: true,
                dop_fusion: true,
                health: true,
            },
        );
        let r = engine.run(&args).expect("engine runs");
        assert_eq!(
            r.checksum, want,
            "seed {seed:#x}: trace-executing engine diverged"
        );
        assert_eq!(r.exec.instructions, want_instrs, "seed {seed:#x}");

        let mut opt = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: true,
                superinstructions: true,
                reg_ir: true,
                dop_fusion: true,
                health: true,
            },
        );
        let r = opt.run(&args).expect("optimizing engine runs");
        assert_eq!(
            r.checksum, want,
            "seed {seed:#x}: optimizing engine diverged"
        );
        assert!(r.exec.instructions <= want_instrs, "seed {seed:#x}");
    }
}

/// Generated programs at a larger unroll factor still agree.
#[test]
fn unrolling_preserves_semantics_on_random_programs() {
    for case in 0..cases() {
        let seed = seed_stream(BASE_SEED ^ 0xA5A5, case);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 2, 1, 6);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        let unroll = rng.range_usize(0, 5);

        let mut plain = Vm::new(&program);
        plain
            .run(&args, &mut NullObserver)
            .expect("interpreter runs");
        let want = plain.checksum();

        let jit = TraceJitConfig::paper_default()
            .with_start_delay(2)
            .with_threshold(0.90)
            .with_loop_unroll(unroll);
        let mut engine = TracingVm::new(
            &program,
            EngineConfig {
                jit,
                optimize: true,
                superinstructions: true,
                reg_ir: true,
                dop_fusion: true,
                health: true,
            },
        );
        let r = engine.run(&args).expect("engine runs");
        assert_eq!(r.checksum, want, "seed {seed:#x}: unroll {unroll} diverged");
    }
}

//! Golden test: the disassembly of a fixed program is stable and
//! readable. Guards the listing format that examples and the CLI rely on.

use tracecache_repro::bytecode::{disasm, CmpOp, Intrinsic, ProgramBuilder};

#[test]
fn listing_matches_expected_shape() {
    let mut pb = ProgramBuilder::new();
    let leaf = pb.declare_function("leaf", 1, true);
    pb.function_mut(leaf).load(0).iconst(1).iadd().ret();
    let main = pb.declare_function("main", 1, false);
    {
        let b = pb.function_mut(main);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(0).invoke_static(leaf).intrinsic(Intrinsic::Checksum);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.ret_void();
    }
    let program = pb.build(main).unwrap();
    let listing = disasm::program_to_string(&program);

    let expected_lines = [
        "fn#0 `leaf` (params=1, locals=1, returns value):",
        "fn#1 `main` (params=1, locals=1, void):",
        "if le -> 7",
        "invokestatic fn#0",
        "intrinsic checksum",
        "iinc 0, -1",
        "goto -> 0",
        "return_void",
        "entry: fn#1",
        "b1 [Call] -> [b2]",
        "b2 [Goto] -> [b0]",
    ];
    for line in expected_lines {
        assert!(
            listing.contains(line),
            "missing `{line}` in listing:\n{listing}"
        );
    }

    // Block structure annotations: main splits into cond / body / exit.
    assert!(listing.contains("b0 [CondBranch]"));
    assert!(listing.contains("[Return] -> []"));
}

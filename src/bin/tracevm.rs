//! `tracevm` — command-line front end for the trace-cache reproduction.
//!
//! ```text
//! tracevm run <workload> [--scale test|small|paper] [--engine interp|trace|exec|exec-opt]
//!                        [--threshold 0.97] [--delay 64] [--unroll 1]
//! tracevm disasm <workload> [--scale ...]
//! tracevm dot <workload> [--out DIR] [--scale ...]
//! tracevm compare <workload> [--scale ...]
//! tracevm list
//! ```

use std::process::ExitCode;

use tracecache_repro::baselines::{run_with_selector, NetSelector, ReplaySelector};
use tracecache_repro::bcg::dot as bcg_dot;
use tracecache_repro::bytecode::disasm;
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::{RunReport, TraceJitConfig, TraceVm};
use tracecache_repro::tracecache::dot as trace_dot;
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::{registry, Scale, Workload};

struct Options {
    scale: Scale,
    engine: String,
    threshold: f64,
    delay: u32,
    unroll: usize,
    reg_ir: bool,
    dop_fusion: bool,
    /// Lifetime trace-health subsystem (demotion ladder); `--no-health`
    /// restores fast-trigger-only quarantining.
    health: bool,
    out: String,
    /// Write a snapshot of the warmed VM here after the run.
    save_snapshot: Option<String>,
    /// Boot the VM from this snapshot before the run.
    load_snapshot: Option<String>,
    /// With `--load-snapshot`: AOT-replay the profile through the
    /// constructor instead of restoring the cache contents directly.
    aot: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Small,
            engine: "trace".into(),
            threshold: 0.97,
            delay: 64,
            unroll: 1,
            reg_ir: true,
            dop_fusion: true,
            health: true,
            out: ".".into(),
            save_snapshot: None,
            load_snapshot: None,
            aot: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracevm run <workload> [--scale test|small|paper] [--engine interp|trace|exec|exec-opt]\n\
         \x20                        [--threshold T] [--delay D] [--unroll N] [--no-reg] [--no-fuse] [--no-health]\n\
         \x20                        [--save-snapshot FILE] [--load-snapshot FILE [--aot]]\n\
         \x20 tracevm disasm <workload> [--scale ...]\n\
         \x20 tracevm dot <workload> [--out DIR] [--scale ...]\n\
         \x20 tracevm compare <workload> [--scale ...]\n\
         \x20 tracevm list"
    );
    ExitCode::FAILURE
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

fn parse_options(args: &mut std::env::Args, opts: &mut Options) -> Result<(), String> {
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--scale" => {
                let v = need("--scale")?;
                opts.scale = parse_scale(&v).ok_or(format!("bad scale `{v}`"))?;
            }
            "--engine" => opts.engine = need("--engine")?,
            "--threshold" => {
                opts.threshold = need("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?
            }
            "--delay" => {
                opts.delay = need("--delay")?
                    .parse()
                    .map_err(|e| format!("bad delay: {e}"))?
            }
            "--unroll" => {
                opts.unroll = need("--unroll")?
                    .parse()
                    .map_err(|e| format!("bad unroll: {e}"))?
            }
            "--no-reg" => opts.reg_ir = false,
            "--no-fuse" => opts.dop_fusion = false,
            "--no-health" => opts.health = false,
            "--out" => opts.out = need("--out")?,
            "--save-snapshot" => opts.save_snapshot = Some(need("--save-snapshot")?),
            "--load-snapshot" => opts.load_snapshot = Some(need("--load-snapshot")?),
            "--aot" => opts.aot = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(())
}

fn jit_config(opts: &Options) -> TraceJitConfig {
    TraceJitConfig::paper_default()
        .with_threshold(opts.threshold)
        .with_start_delay(opts.delay)
        .with_loop_unroll(opts.unroll)
}

fn print_report(w: &Workload, r: &RunReport) {
    println!("workload            : {} — {}", w.name, w.description);
    println!("result              : {:?}", r.result);
    println!(
        "checksum            : {:#018x} ({})",
        r.checksum,
        if r.checksum == w.expected_checksum {
            "matches reference"
        } else {
            "MISMATCH!"
        }
    );
    println!("instructions        : {}", r.exec.instructions);
    println!("block dispatches    : {}", r.exec.block_dispatches);
    println!("trace dispatches    : {}", r.traces.trace_dispatches());
    println!(
        "traces              : {} entered, {} completed, {} early exits",
        r.traces.entered, r.traces.completed, r.traces.exited_early
    );
    println!("avg trace length    : {:.1} blocks", r.avg_trace_length());
    println!(
        "coverage            : {:.1}% completed / {:.1}% incl. partial",
        100.0 * r.coverage_completed(),
        100.0 * r.coverage_incl_partial()
    );
    println!("completion rate     : {:.2}%", 100.0 * r.completion_rate());
    println!(
        "profiler            : {} nodes, {} edges, {:.1}% inline-cache hits, {} signals",
        r.profiler.nodes_created,
        r.profiler.edges_created,
        100.0 * r.profiler.cache_hit_ratio(),
        r.profiler.total_signals()
    );
    println!(
        "cache               : {} traces, {} links, {} relinked",
        r.cache.traces_constructed, r.cache.links_live, r.cache.links_replaced
    );
}

fn cmd_run(w: &Workload, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    if (opts.save_snapshot.is_some() || opts.load_snapshot.is_some() || opts.aot)
        && !matches!(opts.engine.as_str(), "exec" | "exec-opt")
    {
        return Err("snapshot options require --engine exec or exec-opt".into());
    }
    if opts.aot && opts.load_snapshot.is_none() {
        return Err("--aot requires --load-snapshot".into());
    }
    match opts.engine.as_str() {
        "interp" => {
            let mut vm = Vm::new(&w.program);
            let result = vm.run(&w.args, &mut NullObserver)?;
            println!("workload            : {} — {}", w.name, w.description);
            println!("result              : {result:?}");
            println!(
                "checksum            : {:#018x} ({})",
                vm.checksum(),
                if vm.checksum() == w.expected_checksum {
                    "matches reference"
                } else {
                    "MISMATCH!"
                }
            );
            println!("instructions        : {}", vm.stats().instructions);
            println!("block dispatches    : {}", vm.stats().block_dispatches);
            let m = vm.decoded().memory_estimate();
            println!(
                "decoded code        : {} bytes ({} code, {} maps, {} pools)",
                m.total(),
                m.code_bytes,
                m.map_bytes,
                m.pool_bytes
            );
            println!("frame arena         : {} bytes", vm.arena_memory());
        }
        "trace" => {
            let mut tvm = TraceVm::new(&w.program, jit_config(opts));
            let r = tvm.run(&w.args)?;
            print_report(w, &r);
        }
        "exec" | "exec-opt" => {
            let mut engine = TracingVm::new(
                &w.program,
                EngineConfig {
                    jit: jit_config(opts),
                    optimize: opts.engine == "exec-opt",
                    superinstructions: true,
                    reg_ir: opts.reg_ir,
                    dop_fusion: opts.dop_fusion,
                    health: opts.health,
                },
            );
            if let Some(path) = &opts.load_snapshot {
                let bytes = std::fs::read(path)?;
                let boot = if opts.aot {
                    engine.aot_replay(&bytes)?
                } else {
                    engine.load_snapshot(&bytes)?
                };
                println!(
                    "{:<20}: {} nodes ({} new), {} traces, {} links, {} quarantined, {} artifacts pre-built",
                    if opts.aot { "aot replay" } else { "warm boot" },
                    boot.nodes_merged + boot.nodes_created,
                    boot.nodes_created,
                    boot.traces_installed,
                    boot.links_installed,
                    boot.quarantine_restored,
                    boot.artifacts_prebuilt
                );
            }
            let r = engine.run(&w.args)?;
            println!(
                "first trace entry   : dispatch {}",
                r.traces.first_entry_dispatch
            );
            if let Some(path) = &opts.save_snapshot {
                let bytes = engine.snapshot();
                std::fs::write(path, &bytes)?;
                println!("snapshot            : {} bytes -> {path}", bytes.len());
            }
            print_report(w, &r);
            let s = engine.opt_stats();
            if opts.engine == "exec-opt" {
                println!(
                    "trace optimizer     : {:.1}% of compiled code removed ({} folds, {} elims, {} identities, {} reductions)",
                    100.0 * s.savings(),
                    s.folds,
                    s.eliminations,
                    s.identities,
                    s.reductions
                );
            }
            println!("compiled traces     : {}", engine.compiled_count());
            match engine.dop_fusion_report() {
                Some(rep) => {
                    println!(
                        "dop fusion          : {} candidates, {} applied, {} dispatches eliminated",
                        rep.candidates(),
                        rep.fused(),
                        rep.dispatches_eliminated()
                    );
                    for ff in rep.funcs.iter().filter(|f| f.candidates > 0) {
                        println!(
                            "  fn {:<16}: {}/{} sites fused, {} dispatches eliminated [{}]",
                            w.program.function(ff.func).name(),
                            ff.fused,
                            ff.candidates,
                            ff.dispatches_eliminated,
                            ff.selected.join(", ")
                        );
                    }
                }
                None => println!("dop fusion          : off (--no-fuse)"),
            }
            let m = engine.decoded().memory_estimate();
            println!(
                "decoded code        : {} bytes ({} code, {} maps, {} pools)",
                m.total(),
                m.code_bytes,
                m.map_bytes,
                m.pool_bytes
            );
            println!("lowered traces      : {} bytes", engine.lowered_memory());
            let hs = engine.health_stats();
            println!(
                "trace health        : {} outcomes, {} epochs, {} probations ({} recovered), {} demotions ({} streak), {} re-admissions watched, {} tracked",
                hs.recorded,
                hs.epochs,
                hs.probations,
                hs.recoveries,
                hs.demotions,
                hs.streak_demotions,
                hs.readmitted_watched,
                hs.tracked
            );
            println!(
                "degraded            : {}",
                engine.degraded_reason().unwrap_or("no")
            );
        }
        other => return Err(format!("unknown engine `{other}`").into()),
    }
    Ok(())
}

fn cmd_compare(w: &Workload, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}: coverage by completed traces / completion rate", w.name);
    let bcg = TraceVm::new(&w.program, jit_config(opts)).run(&w.args)?;
    let mut net = NetSelector::new();
    let net_r = run_with_selector(&w.program, &w.args, &mut net)?;
    let mut rp = ReplaySelector::new();
    let rp_r = run_with_selector(&w.program, &w.args, &mut rp)?;
    let fmt = |cov: f64, comp: f64| format!("{:5.1}% / {:5.1}%", cov * 100.0, comp * 100.0);
    println!(
        "  bcg    : {}",
        fmt(bcg.coverage_completed(), bcg.completion_rate())
    );
    println!(
        "  net    : {}",
        fmt(net_r.coverage_completed(), net_r.completion_rate())
    );
    println!(
        "  replay : {}",
        fmt(rp_r.coverage_completed(), rp_r.completion_rate())
    );
    Ok(())
}

fn cmd_dot(w: &Workload, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let mut tvm = TraceVm::new(&w.program, jit_config(opts));
    tvm.run(&w.args)?;
    let hottest = tvm
        .bcg()
        .iter()
        .map(|(_, n)| n.executions())
        .max()
        .unwrap_or(0);
    let min = (hottest / 100).max(1);
    let dir = std::path::Path::new(&opts.out);
    std::fs::write(dir.join("bcg.dot"), bcg_dot::to_dot(tvm.bcg(), min))?;
    std::fs::write(dir.join("traces.dot"), trace_dot::to_dot(tvm.cache()))?;
    println!(
        "wrote {}/bcg.dot and {}/traces.dot",
        dir.display(),
        dir.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let Some(cmd) = args.next() else {
        return usage();
    };

    if cmd == "list" {
        for w in registry::all(Scale::Test) {
            println!("{:10} — {}", w.name, w.description);
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.next() else {
        return usage();
    };
    let mut opts = Options::default();
    if let Err(e) = parse_options(&mut args, &mut opts) {
        eprintln!("error: {e}");
        return usage();
    }
    let Some(w) = registry::by_name(&name, opts.scale) else {
        eprintln!("unknown workload `{name}`; see `tracevm list`");
        return ExitCode::FAILURE;
    };

    let result = match cmd.as_str() {
        "run" => cmd_run(&w, &opts),
        "disasm" => {
            print!("{}", disasm::program_to_string(&w.program));
            Ok(())
        }
        "dot" => cmd_dot(&w, &opts),
        "compare" => cmd_compare(&w, &opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! # tracecache-repro
//!
//! A from-scratch Rust reproduction of **"Dynamic Profiling and Trace
//! Cache Generation for a Java Virtual Machine"** (Berndl & Hendren,
//! CGO 2003): a branch-correlation-graph profiler and signal-driven trace
//! cache for a direct-threaded-inlining bytecode interpreter.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`bytecode`] — the JVM-like instruction set, assembler, verifier and
//!   CFG substrate;
//! * [`vm`] — the interpreter with basic-block dispatch accounting;
//! * [`bcg`] — the branch correlation graph profiler (paper §3.5/§4.1);
//! * [`tracecache`] — the trace constructor, cache and dispatch monitor
//!   (paper §3.6–§4.2);
//! * [`jit`] — the integrated trace-dispatching VM plus the experiment
//!   harness regenerating the paper's tables;
//! * [`workloads`] — the six benchmark analogues (paper §5.1);
//! * [`baselines`] — Dynamo-style NET and rePLay-style selection for
//!   comparison (paper §2);
//! * [`exec`] — the paper's stated future work (§6): compiled, guarded
//!   trace execution with side exits, plus a trace peephole optimizer;
//! * [`conformance`] — the model-based conformance harness: an
//!   executable, deliberately naive transcription of the paper's BCG and
//!   trace-cutting rules checked in lockstep against the optimised
//!   implementations, plus deterministic chaos campaigns.
//!
//! # Quickstart
//!
//! ```
//! use tracecache_repro::jit::{TraceVm, TraceJitConfig};
//! use tracecache_repro::workloads::{registry, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = registry::compress(Scale::Test);
//! let mut tvm = TraceVm::new(&w.program, TraceJitConfig::paper_default());
//! let report = tvm.run(&w.args)?;
//! assert_eq!(report.checksum, w.expected_checksum);
//! println!("coverage {:.1}%  completion {:.1}%  avg trace {:.1} blocks",
//!          100.0 * report.coverage_completed(),
//!          100.0 * report.completion_rate(),
//!          report.avg_trace_length());
//! # Ok(())
//! # }
//! ```

pub use jvm_bytecode as bytecode;
pub use jvm_vm as vm;
pub use trace_baselines as baselines;
pub use trace_bcg as bcg;
pub use trace_cache as tracecache;
pub use trace_conformance as conformance;
pub use trace_exec as exec;
pub use trace_jit as jit;
pub use trace_persist as persist;
pub use trace_workloads as workloads;

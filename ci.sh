#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, tests, and a bench smoke
# run. No network access required — the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test (release)"
cargo test --workspace -q --release

echo "== cargo test (debug build: debug_assert! guards on unchecked stack ops)"
cargo test --workspace -q

echo "== conformance (lockstep + chaos campaigns + corpus replay, in-situ asserts on)"
# debug: full invariant density; release: the same suite at speed, so the
# 256-case fuzz lockstep and chaos campaigns run in both configurations.
cargo test -p trace-conformance --features debug-invariants -q
cargo test -p trace-conformance --features debug-invariants -q --release

echo "== trace-health conformance (demotion ladder lockstep + phase-shift campaigns)"
# The self-healing ladder against its transcribed model: phase-shift
# workload lockstep, the chaos campaign that catches the planted
# rotten-trace quirk, and the engine-level demotion / warm-boot
# staleness suites — in debug (invariants on) and release.
cargo test -p trace-conformance --features debug-invariants -q phase_shift
cargo test -p trace-conformance --features debug-invariants -q model_health
cargo test --features debug-invariants -q --test health --test health_staleness
cargo test -q --release --test health --test health_staleness

echo "== fault-injection conformance (supervised deployment vs interpreter oracle)"
# Engine-level fault campaigns: corrupt artifacts, failed budget checks,
# constructor kills, dropped/duplicated batches — results must never move.
cargo test -p trace-conformance --features debug-invariants -q --test faults
cargo test -p trace-conformance -q --release --test faults

echo "== concurrent shared-cache tests (debug-invariants: threaded paths assert in situ)"
cargo test -p trace-cache -p trace-exec --features trace-cache/debug-invariants -q

echo "== register-IR differential (debug: register-bounds + invariant asserts; release: at speed)"
# The register-lowered trace tier against the plain interpreter: six
# workloads, seeded fuzz, and the guard-flip chaos programs that force
# a side-exit resume from every guard kind.
cargo test --features debug-invariants -q --test reg_differential --test reg_golden
cargo test -q --release --test reg_differential

echo "== superinstruction fusion differential (debug: stack/shadow asserts; release: at speed)"
# The fused decoded interpreter against the reference oracle: six
# workloads, seeded fuzz with every fusible site fused, fuel-straddle
# cuts inside fused groups, the pinned golden listing, and the planted
# mis-fused-boundary quirk the harness must catch.
cargo test --features debug-invariants -q --test fusion_differential --test fusion_golden
cargo test -q --release --test fusion_differential

echo "== hot-path bench smoke (test scale)"
cargo run --release -p trace-bench --bin hot_path -- --smoke --out /tmp/BENCH_hot_path.smoke.json

echo "== register-IR bench smoke (scimark, lowered-reg leg must be present)"
cargo run --release -p trace-bench --bin hot_path -- --smoke --workload scimark \
    --out /tmp/BENCH_hot_path.reg.smoke.json
grep -q '"lowered-reg"' /tmp/BENCH_hot_path.reg.smoke.json
grep -q '"reg_lowering"' /tmp/BENCH_hot_path.reg.smoke.json

echo "== interp-speed bench smoke (test scale; fused leg + fusion stats must be present)"
cargo run --release -p trace-bench --bin interp_speed -- --smoke --out /tmp/BENCH_interp.smoke.json
grep -q '"fused"' /tmp/BENCH_interp.smoke.json
grep -q '"engine-dop"' /tmp/BENCH_interp.smoke.json
grep -q '"fusion"' /tmp/BENCH_interp.smoke.json
grep -q '"dispatches_eliminated"' /tmp/BENCH_interp.smoke.json
grep -q '"hot_opcode_triples"' /tmp/BENCH_interp.smoke.json

echo "== snapshot round-trip differential (debug: decoder/merge asserts in situ)"
# Persistence is lossless and canonical: six workloads + seeded fuzz
# programs round-trip bit-identically, warm boot matches the interpreter
# oracle, and the byte-level container format stays pinned.
cargo test --features debug-invariants -q --test snapshot_differential --test snapshot_golden

echo "== snapshot hostile-input campaign (release: >=256 mutants per source)"
# Bit flips, truncations, section swaps, hostile length fields: every
# mutant must be cleanly rejected — no panics, no silent acceptance —
# and the planted stale-hash quirk must be caught.
cargo test -q --release --test snapshot_hostile

echo "== concurrent shared-cache bench smoke (2 threads, test scale)"
cargo run --release -p trace-bench --bin concurrent -- --smoke --out /tmp/BENCH_concurrent.smoke.json
grep -q '"warm_boot"' /tmp/BENCH_concurrent.smoke.json
grep -q '"first_entry_dispatch"' /tmp/BENCH_concurrent.smoke.json

echo "== phase-shift self-healing bench smoke (health A/B leg, test scale)"
cargo run --release -p trace-bench --bin concurrent -- --smoke --phase-shift \
    --out /tmp/BENCH_concurrent_phase_shift.smoke.json
grep -q '"phase_shift"' /tmp/BENCH_concurrent_phase_shift.smoke.json
grep -q '"demotions"' /tmp/BENCH_concurrent_phase_shift.smoke.json
grep -q '"readmissions"' /tmp/BENCH_concurrent_phase_shift.smoke.json
grep -q '"throughput_retention"' /tmp/BENCH_concurrent_phase_shift.smoke.json

echo "== snapshot warm-boot bench smoke (boot-only leg, test scale)"
cargo run --release -p trace-bench --bin concurrent -- --smoke --load-snapshot \
    --out /tmp/BENCH_concurrent_boot.smoke.json
grep -q '"aot_replay"' /tmp/BENCH_concurrent_boot.smoke.json
grep -q '"traces_constructed"' /tmp/BENCH_concurrent_boot.smoke.json

echo "== degraded-mode bench smoke (fault injection, 2 threads, test scale)"
cargo run --release -p trace-bench --bin concurrent -- --smoke --faults 0xFA17_BE4C \
    --out /tmp/BENCH_concurrent_faults.smoke.json

echo "== bench harness smoke (1 sample, test scale)"
TRACE_BENCH_SCALE=test TRACE_BENCH_SAMPLES=1 \
    cargo bench -p trace-bench --bench table6_profiler_overhead >/dev/null

echo "CI OK"

//! Quickstart: build a program with the assembler, run it under the
//! trace-dispatching VM, and inspect what the system learned.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tracecache_repro::bytecode::{CmpOp, ProgramBuilder};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::vm::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small hot program: sum of i*i for i in 1..=n, with an inner
    // predictable branch (skip multiples of 7).
    let mut pb = ProgramBuilder::new();
    let main_fn = pb.declare_function("main", 1, true);
    {
        let b = pb.function_mut(main_fn);
        let acc = b.alloc_local();
        let i = b.alloc_local();
        b.iconst(0).store(acc).iconst(1).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        let skip = b.new_label();
        b.load(i).load(0).if_icmp(CmpOp::Gt, exit);
        b.load(i).iconst(7).irem().if_i(CmpOp::Eq, skip);
        b.load(acc).load(i).load(i).imul().iadd().store(acc);
        b.bind(skip);
        b.iinc(i, 1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
    }
    let program = pb.build(main_fn)?;

    // Run it under the full system with the paper's parameters
    // (threshold 97%, start-state delay 64, decay every 256).
    let mut tvm = TraceVm::new(&program, TraceJitConfig::paper_default());
    let report = tvm.run(&[Value::Int(100_000)])?;

    println!("result                 : {:?}", report.result);
    println!("instructions executed  : {}", report.exec.instructions);
    println!("block dispatches       : {}", report.exec.block_dispatches);
    println!(
        "trace-model dispatches : {}",
        report.traces.trace_dispatches()
    );
    println!(
        "dispatch reduction     : {:.2}x over block dispatch",
        report.dispatch_counts().trace_over_block()
    );
    println!(
        "stream coverage        : {:.1}% completed, {:.1}% incl. partial",
        100.0 * report.coverage_completed(),
        100.0 * report.coverage_incl_partial()
    );
    println!(
        "trace completion rate  : {:.2}%",
        100.0 * report.completion_rate()
    );
    println!(
        "avg trace length       : {:.1} blocks",
        report.avg_trace_length()
    );

    println!("\nlinked traces:");
    for (entry, trace) in tvm.cache().iter_links() {
        println!("  on branch {} -> {}: {trace}", entry.0, entry.1);
    }
    Ok(())
}

//! Compare the paper's BCG trace selection against Dynamo-style NET and
//! rePLay-style promotion on the benchmark analogues (§2–§3).
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use tracecache_repro::baselines::{run_with_selector, NetSelector, ReplaySelector};
use tracecache_repro::jit::{experiment::run_point, TraceJitConfig};
use tracecache_repro::workloads::{registry, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("coverage by completed traces / trace completion rate\n");
    println!(
        "{:10} {:>20} {:>20} {:>20}",
        "benchmark", "bcg (this paper)", "net (dynamo-style)", "replay-style"
    );
    for w in registry::all(Scale::Test) {
        let bcg = run_point(
            &w.program,
            &w.args,
            TraceJitConfig::paper_default().with_start_delay(16),
        )?;
        assert_eq!(bcg.checksum, w.expected_checksum);

        let mut net = NetSelector::new();
        let net_r = run_with_selector(&w.program, &w.args, &mut net)?;
        assert_eq!(net_r.checksum, w.expected_checksum);

        let mut rp = ReplaySelector::new();
        let rp_r = run_with_selector(&w.program, &w.args, &mut rp)?;
        assert_eq!(rp_r.checksum, w.expected_checksum);

        let fmt = |cov: f64, comp: f64| format!("{:5.1}% / {:5.1}%", cov * 100.0, comp * 100.0);
        println!(
            "{:10} {:>20} {:>20} {:>20}",
            w.name,
            fmt(bcg.coverage_completed(), bcg.completion_rate()),
            fmt(net_r.coverage_completed(), net_r.completion_rate()),
            fmt(rp_r.coverage_completed(), rp_r.completion_rate()),
        );
    }
    println!(
        "\nExpected shape (paper §3.5): NET covers aggressively but completes\n\
         erratically; rePLay-style completes almost always but reacts slowly and\n\
         covers less; the BCG sits between them — high completion at high coverage."
    );
    Ok(())
}

//! The paper's future work (§6), live: execute the traces, then optimize
//! them.
//!
//! Runs a workload under three engines and compares wall time and
//! dispatch counts:
//!
//! 1. the plain block-dispatch interpreter with the profiler attached
//!    (what the base system pays while profiling);
//! 2. the trace-executing engine (profiling only outside traces);
//! 3. the same engine with the trace peephole optimizer.
//!
//! ```text
//! cargo run --release --example trace_execution [workload]
//! ```

use std::time::Instant;

use tracecache_repro::bcg::BranchCorrelationGraph;
use tracecache_repro::exec::{EngineConfig, TracingVm};
use tracecache_repro::jit::TraceJitConfig;
use tracecache_repro::vm::{NullObserver, Vm};
use tracecache_repro::workloads::{registry, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "scimark".into());
    let Some(w) = registry::by_name(&name, Scale::Small) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    let jit = TraceJitConfig::paper_default();
    println!("workload: {} — {}\n", w.name, w.description);

    // Plain interpreter (no profiling): the lower bound.
    let t0 = Instant::now();
    let mut plain = Vm::new(&w.program);
    plain.run(&w.args, &mut NullObserver)?;
    let plain_time = t0.elapsed();
    assert_eq!(plain.checksum(), w.expected_checksum);
    let plain_dispatches = plain.stats().block_dispatches;

    // Interpreter with the profiler on every dispatch.
    let t0 = Instant::now();
    let mut profiled = Vm::new(&w.program);
    let mut bcg = BranchCorrelationGraph::new(jit.bcg_config());
    profiled.run(&w.args, &mut |blk| {
        bcg.observe(blk);
    })?;
    let profiled_time = t0.elapsed();

    // Trace-executing engine (second run = warm cache), decoded form.
    let mut engine = TracingVm::new(
        &w.program,
        EngineConfig {
            jit,
            optimize: false,
            superinstructions: true,
            reg_ir: false,
            dop_fusion: true,
            health: true,
        },
    );
    engine.run(&w.args)?;
    let t0 = Instant::now();
    let report = engine.run(&w.args)?;
    let engine_time = t0.elapsed();
    assert_eq!(report.checksum, w.expected_checksum);

    // With the trace optimizer.
    let mut opt_engine = TracingVm::new(
        &w.program,
        EngineConfig {
            jit,
            optimize: true,
            superinstructions: true,
            reg_ir: false,
            dop_fusion: true,
            health: true,
        },
    );
    opt_engine.run(&w.args)?;
    let t0 = Instant::now();
    let opt_report = opt_engine.run(&w.args)?;
    let opt_time = t0.elapsed();
    assert_eq!(opt_report.checksum, w.expected_checksum);

    // Register-lowered traces: the final lowering stage.
    let mut reg_engine = TracingVm::new(
        &w.program,
        EngineConfig {
            jit,
            optimize: true,
            superinstructions: true,
            reg_ir: true,
            dop_fusion: true,
            health: true,
        },
    );
    reg_engine.run(&w.args)?;
    let t0 = Instant::now();
    let reg_report = reg_engine.run(&w.args)?;
    let reg_time = t0.elapsed();
    assert_eq!(reg_report.checksum, w.expected_checksum);

    println!("interpreter (no profiler) : {plain_time:>10.2?}  {plain_dispatches} dispatches");
    println!(
        "interpreter + profiler    : {profiled_time:>10.2?}  (profiling overhead {:+.1}%)",
        100.0 * (profiled_time.as_secs_f64() / plain_time.as_secs_f64() - 1.0)
    );
    println!(
        "trace-executing engine    : {engine_time:>10.2?}  {} dispatches ({:.2}x fewer)",
        report.exec.block_dispatches,
        plain_dispatches as f64 / report.exec.block_dispatches.max(1) as f64
    );
    println!(
        "engine + trace optimizer  : {opt_time:>10.2?}  {} instructions executed (vs {})",
        opt_report.exec.instructions, report.exec.instructions
    );
    println!("engine + register traces  : {reg_time:>10.2?}");
    let s = opt_engine.opt_stats();
    println!(
        "\ntrace optimizer: {} folds, {} dead-stack eliminations, {} identities, {} strength reductions — {:.1}% of compiled trace code removed",
        s.folds, s.eliminations, s.identities, s.reductions, 100.0 * s.savings()
    );
    let fs = engine.fuse_stats();
    println!(
        "superinstructions: {} groups fused, compiled code {} -> {} entries",
        fs.fused_groups, fs.before, fs.after
    );
    let rs = reg_engine.reg_stats();
    println!(
        "register lowering: {} -> {} instrs, {} virtual regs, {} stack ops eliminated, {} guards fused",
        rs.before, rs.after, rs.regs, rs.eliminated, rs.guards_fused
    );
    if let Some(rep) = engine.dop_fusion_report() {
        println!(
            "dop fusion (out-of-trace) : {} of {} candidate sites fused, ~{} dispatches eliminated, selected [{}]",
            rep.fused(),
            rep.candidates(),
            rep.dispatches_eliminated(),
            rep.selected_union().join(", ")
        );
    }
    println!(
        "trace quality in engine   : completion {:.2}%, {} traces compiled",
        100.0 * report.completion_rate(),
        engine.compiled_count()
    );
    Ok(())
}

//! Trace explorer: run one of the six benchmark analogues and dump what
//! the profiler and trace cache learned about it — the hottest branch
//! correlation nodes, their states, and every linked trace.
//!
//! ```text
//! cargo run --release --example trace_explorer [workload]
//! ```
//!
//! `workload` is one of `compress`, `javac`, `raytrace`, `mpegaudio`,
//! `soot`, `scimark` (default: `compress`).

use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::workloads::{registry, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let Some(w) = registry::by_name(&name, Scale::Test) else {
        eprintln!("unknown workload `{name}`; try compress/javac/raytrace/mpegaudio/soot/scimark");
        std::process::exit(1);
    };

    println!("workload: {} — {}", w.name, w.description);
    let mut tvm = TraceVm::new(
        &w.program,
        TraceJitConfig::paper_default().with_start_delay(16),
    );
    let report = tvm.run(&w.args)?;
    assert_eq!(report.checksum, w.expected_checksum, "checksum validated");

    println!(
        "\n{} instructions, {} block dispatches, {} BCG nodes, {} traces\n",
        report.exec.instructions,
        report.exec.block_dispatches,
        tvm.bcg().len(),
        tvm.cache().trace_count(),
    );

    // Hottest branch-correlation nodes.
    let mut nodes: Vec<_> = tvm.bcg().iter().collect();
    nodes.sort_by_key(|(_, n)| std::cmp::Reverse(n.executions()));
    println!("hottest branches (BCG nodes):");
    println!(
        "  {:>26} {:>12} {:>14} {:>10} {:>8}",
        "branch (X -> Y)", "executions", "state", "pred", "corr"
    );
    for (_, node) in nodes.iter().take(15) {
        let (x, y) = node.branch();
        let (pred, corr) = match node.predicted() {
            Some(s) => (s.to_block.to_string(), node.correlation(s)),
            None => ("-".into(), 0.0),
        };
        println!(
            "  {:>12} -> {:>11} {:>12} {:>14} {:>10} {:>7.1}%",
            x.to_string(),
            y.to_string(),
            node.executions(),
            node.state().to_string(),
            pred,
            corr * 100.0
        );
    }

    // Longest linked traces.
    let mut links: Vec<_> = tvm.cache().iter_links().collect();
    links.sort_by_key(|(_, t)| std::cmp::Reverse(t.len()));
    println!("\nlongest linked traces:");
    for (entry, trace) in links.iter().take(10) {
        println!("  entry ({} -> {}): {trace}", entry.0, entry.1);
    }

    println!(
        "\nquality: coverage {:.1}% (completed) / {:.1}% (incl. partial), completion {:.2}%, avg length {:.1} blocks",
        100.0 * report.coverage_completed(),
        100.0 * report.coverage_incl_partial(),
        100.0 * report.completion_rate(),
        report.avg_trace_length()
    );
    Ok(())
}

//! Export the profiler's branch correlation graph and the trace cache as
//! Graphviz `dot` files for a workload.
//!
//! ```text
//! cargo run --release --example export_dot [workload] [out_dir]
//! dot -Tsvg bcg.dot -o bcg.svg && dot -Tsvg traces.dot -o traces.svg
//! ```

use std::fs;
use std::path::PathBuf;

use tracecache_repro::bcg::dot as bcg_dot;
use tracecache_repro::jit::{TraceJitConfig, TraceVm};
use tracecache_repro::tracecache::dot as trace_dot;
use tracecache_repro::workloads::{registry, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "compress".into());
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
    let Some(w) = registry::by_name(&name, Scale::Test) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };

    let mut tvm = TraceVm::new(
        &w.program,
        TraceJitConfig::paper_default().with_start_delay(16),
    );
    let report = tvm.run(&w.args)?;
    assert_eq!(report.checksum, w.expected_checksum);

    // Hide nodes executed fewer than 1% of the hottest node's count.
    let hottest = tvm
        .bcg()
        .iter()
        .map(|(_, n)| n.executions())
        .max()
        .unwrap_or(0);
    let min = (hottest / 100).max(1);

    let bcg_path = out_dir.join("bcg.dot");
    fs::write(&bcg_path, bcg_dot::to_dot(tvm.bcg(), min))?;
    let traces_path = out_dir.join("traces.dot");
    fs::write(&traces_path, trace_dot::to_dot(tvm.cache()))?;

    println!(
        "wrote {} ({} nodes shown of {}) and {} ({} linked traces)",
        bcg_path.display(),
        tvm.bcg()
            .iter()
            .filter(|(_, n)| n.executions() >= min)
            .count(),
        tvm.bcg().len(),
        traces_path.display(),
        tvm.cache().link_count(),
    );
    println!("render with: dot -Tsvg {} -o bcg.svg", bcg_path.display());
    Ok(())
}

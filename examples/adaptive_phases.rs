//! Adaptivity demo: why the profiler decays its counters (§3.6, §4.1.1).
//!
//! Runs a program whose hot loop body *changes behaviour* every phase and
//! compares the paper's decaying profiler against a cumulative one (decay
//! disabled). The decaying profiler notices each phase change, signals
//! the trace cache, and rebuilds only the affected traces; the cumulative
//! profiler stays anchored to stale statistics.
//!
//! ```text
//! cargo run --release --example adaptive_phases
//! ```

use tracecache_repro::bytecode::{CmpOp, Program, ProgramBuilder};
use tracecache_repro::jit::{TraceJitConfig, TraceVm};

/// A loop that alternates between two different bodies every
/// `phase_len` iterations, `phases` times.
fn phase_program(phases: i64, phase_len: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 0, true);
    let b = pb.function_mut(f);
    let acc = b.alloc_local();
    let p = b.alloc_local();
    let i = b.alloc_local();
    b.iconst(0).store(acc).iconst(0).store(p);
    let p_head = b.bind_new_label();
    let p_exit = b.new_label();
    b.load(p).iconst(phases).if_icmp(CmpOp::Ge, p_exit);
    b.iconst(0).store(i);
    let i_head = b.bind_new_label();
    let i_exit = b.new_label();
    b.load(i).iconst(phase_len).if_icmp(CmpOp::Ge, i_exit);
    let odd = b.new_label();
    let cont = b.new_label();
    b.load(p).iconst(1).iand().if_i(CmpOp::Ne, odd);
    b.load(acc).iconst(3).imul().load(i).iadd().store(acc);
    b.goto(cont);
    b.bind(odd);
    b.load(acc).load(i).ixor().iconst(7).iadd().store(acc);
    b.bind(cont);
    b.iinc(i, 1).goto(i_head);
    b.bind(i_exit);
    b.iinc(p, 1).goto(p_head);
    b.bind(p_exit);
    b.load(acc).ret();
    pb.build(f).expect("phase program builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = phase_program(30, 5_000);

    println!("two-phase workload: 30 phases x 5000 iterations, body flips each phase\n");
    for (label, decay_interval) in [
        ("decay every 256 (paper)", 256u32),
        ("decay disabled", u32::MAX),
    ] {
        let mut config = TraceJitConfig::paper_default().with_start_delay(16);
        config.decay_interval = decay_interval;
        let mut tvm = TraceVm::new(&program, config);
        let r = tvm.run(&[])?;
        println!("{label}:");
        println!(
            "  completion rate      : {:.2}%",
            100.0 * r.completion_rate()
        );
        println!(
            "  coverage (completed) : {:.1}%",
            100.0 * r.coverage_completed()
        );
        println!(
            "  profiler signals     : {} state + {} prediction",
            r.profiler.state_signals, r.profiler.prediction_signals
        );
        println!(
            "  cache activity       : {} traces built, {} entry links replaced\n",
            r.cache.traces_constructed, r.cache.links_replaced
        );
    }
    println!(
        "The decaying profiler re-learns each phase (more signals, rebuilt traces)\n\
         and keeps dispatching from the cache; the cumulative profiler goes quiet\n\
         after the first phase and its stale statistics stop reflecting the program."
    );
    Ok(())
}

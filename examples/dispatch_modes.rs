//! Figures 1–2 as a runnable demo: how many dispatches the same program
//! costs under per-instruction, per-basic-block (direct threaded
//! inlining), and per-trace execution models.
//!
//! ```text
//! cargo run --release --example dispatch_modes
//! ```

use tracecache_repro::jit::{experiment::run_point, tables, TraceJitConfig};
use tracecache_repro::workloads::{registry, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for w in registry::all(Scale::Test) {
        let report = run_point(
            &w.program,
            &w.args,
            TraceJitConfig::paper_default().with_start_delay(16),
        )?;
        assert_eq!(report.checksum, w.expected_checksum);
        rows.push((w.name.to_owned(), report));
    }
    println!("{}", tables::fig_dispatch_modes(&rows).render());
    println!(
        "Figure 1 of the paper = the per-instruction column (one dispatch per\n\
         instruction); Figure 2 = the per-block column (direct threaded inlining,\n\
         one dispatch per basic block); the trace cache reduces it further to one\n\
         dispatch per trace entry plus one per out-of-trace block."
    );
    Ok(())
}

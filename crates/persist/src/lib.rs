//! # trace-persist
//!
//! Persistent profile and trace-cache snapshots: the cross-process,
//! cross-restart form of the warm cache. A deployment snapshots a
//! warmed VM's branch-correlation profile and trace-cache contents into
//! a versioned, checksummed binary container; new VM fleets boot from
//! it instead of re-measuring the same program from scratch.
//!
//! The container is hand-rolled (no serialization dependency, like the
//! rest of the repo) and deliberately paranoid:
//!
//! * an 8-byte magic (with embedded CR/LF to catch text-mode mangling),
//!   a version field, a flags field, and an FNV-1a 64 **program hash**
//!   guard the header — a snapshot taken against different bytecode is
//!   rejected as stale, never silently merged;
//! * each of the three sections (BCG profile, cache contents,
//!   quarantine blacklist) carries its own CRC-32, so any payload
//!   corruption is caught before a single field is interpreted;
//! * the decoder is strict-bounds and total: malformed input of any
//!   kind — truncation, bit flips, swapped sections, hostile length
//!   fields, out-of-range values — yields a [`SnapshotError`], never a
//!   panic and never partial state (decoding builds a pure value that
//!   is applied only after full validation).
//!
//! The engine wires this into three modes (see `trace-exec`):
//! `snapshot` dumps a warmed VM, `warm-boot` loads and **merges** a
//! snapshot into a live profiler (stale counts age out under the normal
//! decay discipline rather than pinning predictions), and `aot-replay`
//! replays the profile through the trace constructor so traces are
//! pre-built — re-admitted past the payload budget and quarantine
//! blacklist — before serving.

pub mod cache;
pub mod cursor;
pub mod error;
pub mod hash;
pub mod snapshot;

pub use cache::{CacheImage, QuarantineImage, RestoreReport, TraceImage};
pub use error::SnapshotError;
pub use hash::{crc32, fnv1a64, program_hash};
pub use snapshot::{
    Snapshot, SnapshotReader, SnapshotWriter, MAGIC, SECTION_BCG, SECTION_CACHE,
    SECTION_QUARANTINE, SNAPSHOT_VERSION,
};

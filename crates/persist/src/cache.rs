//! Serializable image of a [`TraceCache`]: linked traces, their entry
//! links, the quarantine blacklist, and the payload budget.
//!
//! The image is **canonical**: links are sorted by packed entry key and
//! traces densely renumbered by first appearance in that order, so
//! capturing, restoring into a fresh cache, and capturing again yields
//! byte-identical images regardless of the live cache's internal hash
//! order. Only *linked* traces are captured — unlinked and tombstoned
//! trace objects are process-local garbage a new fleet has no use for.

use std::collections::HashMap;

use jvm_bytecode::BlockId;
use trace_bcg::{Branch, PackedBranch};
use trace_cache::TraceCache;

use crate::error::SnapshotError;

/// One linked trace: its completion estimate (stored as raw `f64` bits
/// for exactness) and block sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceImage {
    /// `f64::to_bits` of the expected completion probability.
    pub completion_bits: u64,
    /// The trace's block sequence (non-empty).
    pub blocks: Vec<BlockId>,
}

impl TraceImage {
    /// The completion probability as a float.
    pub fn completion(&self) -> f64 {
        f64::from_bits(self.completion_bits)
    }
}

/// One quarantine blacklist entry: `(entry branch, refused path,
/// refusals remaining)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineImage {
    /// The blacklisted entry branch.
    pub entry: Branch,
    /// The exact block path that is refused at this entry.
    pub blocks: Vec<BlockId>,
    /// Construction refusals remaining before re-admission (≥ 1).
    pub cooldown: u32,
}

/// A serializable, canonical image of a trace cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheImage {
    /// The payload-byte budget, if one was set.
    pub budget: Option<u64>,
    /// Linked traces, densely numbered by first appearance in the
    /// sorted link order.
    pub traces: Vec<TraceImage>,
    /// `(entry branch, trace index)` links, sorted strictly ascending by
    /// packed entry key.
    pub links: Vec<(Branch, u32)>,
    /// Quarantine blacklist, sorted strictly ascending by packed entry
    /// key.
    pub quarantine: Vec<QuarantineImage>,
}

/// What [`CacheImage::restore_into`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Trace objects newly constructed in the target cache.
    pub traces_installed: usize,
    /// Entry links written.
    pub links_installed: usize,
    /// Quarantine entries restored.
    pub quarantine_restored: usize,
}

impl CacheImage {
    /// Captures a live cache as a canonical image.
    pub fn capture(cache: &TraceCache) -> CacheImage {
        let mut sorted: Vec<(u64, Branch, trace_cache::TraceId)> = cache
            .iter_links()
            .map(|(entry, trace)| (PackedBranch::pack(entry).0, entry, trace.id()))
            .collect();
        sorted.sort_unstable_by_key(|&(key, _, _)| key);
        let mut traces = Vec::new();
        let mut dense: HashMap<usize, u32> = HashMap::new();
        let mut links = Vec::with_capacity(sorted.len());
        for (_, entry, id) in sorted {
            let index = *dense.entry(id.index()).or_insert_with(|| {
                let t = cache.trace(id);
                traces.push(TraceImage {
                    completion_bits: t.expected_completion().to_bits(),
                    blocks: t.blocks().to_vec(),
                });
                (traces.len() - 1) as u32
            });
            links.push((entry, index));
        }
        let quarantine = cache
            .iter_quarantine()
            .map(|(entry, blocks, cooldown)| QuarantineImage {
                entry,
                blocks: blocks.to_vec(),
                cooldown,
            })
            .collect();
        CacheImage {
            budget: cache.budget().map(|b| b as u64),
            traces,
            links,
            quarantine,
        }
    }

    /// Checks every internal-consistency rule of the image. The decoder
    /// calls this, and [`Self::restore_into`] calls it again, so a
    /// hand-built or tampered image can never drive the cache's
    /// insert-time panics.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let bad = |detail: String| SnapshotError::Malformed {
            section: "cache",
            detail,
        };
        for (i, t) in self.traces.iter().enumerate() {
            if t.blocks.is_empty() {
                return Err(bad(format!("trace {i} has no blocks")));
            }
            let c = t.completion();
            if !c.is_finite() || !(0.0..=1.0).contains(&c) {
                return Err(bad(format!("trace {i} completion {c} outside [0, 1]")));
            }
        }
        let mut prev_key: Option<u64> = None;
        for &(entry, index) in &self.links {
            let key = PackedBranch::pack(entry).0;
            if let Some(p) = prev_key {
                if key <= p {
                    return Err(bad("links not sorted strictly by entry key".into()));
                }
            }
            prev_key = Some(key);
            let Some(trace) = self.traces.get(index as usize) else {
                return Err(bad(format!(
                    "link references trace {index} of {}",
                    self.traces.len()
                )));
            };
            if trace.blocks[0] != entry.1 {
                return Err(bad(format!(
                    "link entry {entry:?} does not land on its trace's first block"
                )));
            }
        }
        let mut prev_key: Option<u64> = None;
        for q in &self.quarantine {
            let key = PackedBranch::pack(q.entry).0;
            if let Some(p) = prev_key {
                if key <= p {
                    return Err(bad("quarantine not sorted strictly by entry key".into()));
                }
            }
            prev_key = Some(key);
            if q.blocks.is_empty() {
                return Err(bad(format!("quarantine entry {:?} has no path", q.entry)));
            }
            if q.cooldown == 0 {
                return Err(bad(format!(
                    "quarantine entry {:?} has zero cooldown",
                    q.entry
                )));
            }
        }
        Ok(())
    }

    /// Restores the image into a cache: sets the budget, installs every
    /// link (hash-consing deduplicates shared traces; the budget sweep
    /// runs exactly as for live inserts, so an over-budget snapshot is
    /// trimmed, not trusted), and re-registers the quarantine blacklist.
    ///
    /// This is the warm-boot path, which deliberately does **not**
    /// consult the quarantine on insertion: the links being restored
    /// were admitted — past that same blacklist — by the process that
    /// wrote the snapshot. AOT replay re-runs admission via the
    /// constructor instead.
    ///
    /// # Errors
    ///
    /// Re-validates first; the cache is untouched on error.
    pub fn restore_into(&self, cache: &mut TraceCache) -> Result<RestoreReport, SnapshotError> {
        self.validate()?;
        let mut report = RestoreReport::default();
        cache.set_budget(self.budget.map(|b| b as usize));
        for &(entry, index) in &self.links {
            let t = &self.traces[index as usize];
            let (_, created) = cache.insert_and_link(entry, t.blocks.clone(), t.completion());
            if created {
                report.traces_installed += 1;
            }
            report.links_installed += 1;
        }
        for q in &self.quarantine {
            cache.restore_quarantine(q.entry, q.blocks.clone(), q.cooldown);
            report.quarantine_restored += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn seeded_cache() -> TraceCache {
        let mut cache = TraceCache::new();
        cache.insert_and_link((blk(9), blk(0)), vec![blk(0), blk(1), blk(2)], 0.95);
        cache.insert_and_link((blk(5), blk(0)), vec![blk(0), blk(1), blk(2)], 0.95);
        cache.insert_and_link((blk(2), blk(3)), vec![blk(3), blk(4)], 0.80);
        cache.restore_quarantine((blk(7), blk(8)), vec![blk(8), blk(9)], 3);
        cache
    }

    #[test]
    fn capture_restore_capture_is_identity() {
        let cache = seeded_cache();
        let image = CacheImage::capture(&cache);
        assert_eq!(image.traces.len(), 2, "shared trace captured once");
        assert_eq!(image.links.len(), 3);
        let mut fresh = TraceCache::new();
        let report = image.restore_into(&mut fresh).unwrap();
        assert_eq!(report.traces_installed, 2);
        assert_eq!(report.links_installed, 3);
        assert_eq!(report.quarantine_restored, 1);
        assert_eq!(CacheImage::capture(&fresh), image);
        // Restored links resolve like the originals.
        let id = fresh.lookup_entry((blk(9), blk(0))).unwrap();
        assert_eq!(fresh.trace(id).blocks().len(), 3);
        assert_eq!(
            fresh.lookup_entry((blk(9), blk(0))),
            fresh.lookup_entry((blk(5), blk(0)))
        );
    }

    #[test]
    fn budget_round_trips_and_is_enforced_on_restore() {
        let mut cache = seeded_cache();
        cache.set_budget(Some(10_000));
        let image = CacheImage::capture(&cache);
        assert_eq!(image.budget, Some(10_000));
        let mut fresh = TraceCache::new();
        image.restore_into(&mut fresh).unwrap();
        assert_eq!(fresh.budget(), Some(10_000));
        assert!(fresh.payload_bytes() <= 10_000);

        // A budget far below the snapshot's payload trims on restore.
        let mut tiny = image.clone();
        tiny.budget = Some(1);
        let mut fresh = TraceCache::new();
        tiny.restore_into(&mut fresh).unwrap();
        assert!(fresh.payload_bytes() <= trace_cache::trace_cost(3));
    }

    #[test]
    fn validate_rejects_structural_corruption() {
        let image = CacheImage::capture(&seeded_cache());

        let mut dangling = image.clone();
        dangling.links[0].1 = 99;
        assert!(matches!(
            dangling.restore_into(&mut TraceCache::new()),
            Err(SnapshotError::Malformed { .. })
        ));

        let mut misaligned = image.clone();
        misaligned.links[0].0 .1 = blk(77);
        assert!(misaligned.validate().is_err());

        let mut unsorted = image.clone();
        unsorted.links.swap(0, 1);
        assert!(unsorted.validate().is_err());

        let mut empty_trace = image.clone();
        empty_trace.traces[0].blocks.clear();
        assert!(empty_trace.validate().is_err());

        let mut bad_completion = image;
        bad_completion.traces[0].completion_bits = f64::NAN.to_bits();
        assert!(bad_completion.validate().is_err());
    }

    #[test]
    fn restored_quarantine_still_refuses_construction() {
        let image = CacheImage::capture(&seeded_cache());
        let mut fresh = TraceCache::new();
        image.restore_into(&mut fresh).unwrap();
        let err = fresh
            .try_insert_and_link((blk(7), blk(8)), vec![blk(8), blk(9)], 0.9)
            .unwrap_err();
        assert!(matches!(
            err,
            trace_cache::TraceCacheError::Quarantined { .. }
        ));
    }
}

//! Snapshot decode errors.
//!
//! Every way a snapshot can be unusable maps to one variant here; the
//! decoder **returns** these — it never panics, whatever the input
//! bytes. "No partial state applied" is structural: decoding builds a
//! pure in-memory [`crate::Snapshot`] value, so an error mid-decode
//! leaves nothing to roll back, and the engine applies a snapshot only
//! after the whole value (and its semantic validation) succeeded.

use std::fmt;

/// Why a byte buffer is not a usable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first eight bytes are not the snapshot magic.
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion {
        /// The version field found in the header.
        found: u32,
    },
    /// The header carries feature flags this build does not know.
    UnsupportedFlags {
        /// The flags field found in the header.
        found: u32,
    },
    /// The snapshot was taken against a different program (program-hash
    /// staleness check).
    StaleProgram {
        /// Hash of the program the loader is running.
        expected: u64,
        /// Hash recorded in the snapshot header.
        found: u64,
    },
    /// The buffer ended before a field or payload was complete.
    Truncated {
        /// What the decoder was reading when the bytes ran out.
        at: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// The section whose checksum failed.
        section: &'static str,
    },
    /// A section tag out of place — sections are required, in fixed
    /// order.
    UnexpectedSection {
        /// The tag found in the stream.
        found: u32,
        /// The tag required at this position.
        expected: u32,
    },
    /// Bytes left over after a section's declared payload, or after the
    /// final section.
    TrailingBytes {
        /// Where the extra bytes sit.
        section: &'static str,
        /// How many there are.
        extra: usize,
    },
    /// A structurally well-formed field carries an invalid value
    /// (out-of-range state tag, dangling trace index, unsorted link
    /// table, contradictory profile state, …).
    Malformed {
        /// The section the bad value sits in.
        section: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a trace-cache snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::UnsupportedFlags { found } => {
                write!(f, "unsupported snapshot flags {found:#010x}")
            }
            SnapshotError::StaleProgram { expected, found } => write!(
                f,
                "stale snapshot: program hash {found:#018x} does not match running program {expected:#018x}"
            ),
            SnapshotError::Truncated { at } => write!(f, "snapshot truncated while reading {at}"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::UnexpectedSection { found, expected } => write!(
                f,
                "unexpected section tag {found:#010x} (expected {expected:#010x})"
            ),
            SnapshotError::TrailingBytes { section, extra } => {
                write!(f, "{extra} trailing bytes after {section}")
            }
            SnapshotError::Malformed { section, detail } => {
                write!(f, "malformed {section} section: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<trace_bcg::ImageError> for SnapshotError {
    fn from(e: trace_bcg::ImageError) -> Self {
        SnapshotError::Malformed {
            section: "bcg",
            detail: e.to_string(),
        }
    }
}

//! Hand-rolled integrity primitives: CRC-32 (IEEE 802.3) for per-section
//! payload checksums and FNV-1a 64 for the program staleness hash.

/// CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, as in zlib/PNG) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The staleness hash of a program: FNV-1a 64 over its full disassembly
/// listing. The listing covers every function, block, and instruction,
/// so any bytecode change — recompilation, reordering, edits — produces
/// a different hash, which is exactly what makes a stale profile
/// detectable.
pub fn program_hash(program: &jvm_bytecode::Program) -> u64 {
    fnv1a64(jvm_bytecode::disasm::program_to_string(program).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let data = b"some section payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() * 8 {
            let mut m = data.clone();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&m), base, "bit {i} flip must change the CRC");
        }
    }
}

//! Strict-bounds little-endian byte cursor.
//!
//! Every read checks the remaining length first and returns
//! [`SnapshotError::Truncated`] rather than slicing out of bounds;
//! element counts are admitted only if the *minimum* encoding of that
//! many elements fits in the bytes actually present, so a hostile
//! length field can neither over-allocate nor push a read past the end.

use crate::error::SnapshotError;

/// A bounds-checked reader over a byte slice. All integers are
/// little-endian.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Name of the region being decoded, for error context.
    section: &'static str,
}

impl<'a> Cursor<'a> {
    /// Wraps `data`; `section` names the region in errors.
    pub fn new(data: &'a [u8], section: &'static str) -> Self {
        Cursor {
            data,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { at: self.section });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a `u32` element count and admits it only if `count *
    /// min_elem_size` bytes are still present — a mutated length field
    /// fails here instead of driving a huge allocation or a long run of
    /// truncation errors.
    pub fn read_count(&mut self, min_elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.read_u32()? as usize;
        if count.saturating_mul(min_elem_size) > self.remaining() {
            return Err(SnapshotError::Truncated { at: self.section });
        }
        Ok(count)
    }

    /// Asserts the region was consumed exactly.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() > 0 {
            return Err(SnapshotError::TrailingBytes {
                section: self.section,
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Little-endian byte writer matching [`Cursor`].
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_round_trip_writes() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut c = Cursor::new(&bytes, "test");
        assert_eq!(c.read_u8().unwrap(), 7);
        assert_eq!(c.read_u16().unwrap(), 0xBEEF);
        assert_eq!(c.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(c.read_bytes(3).unwrap(), b"xyz");
        assert!(c.finish().is_ok());
    }

    #[test]
    fn every_prefix_truncation_errors_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut c = Cursor::new(&bytes[..cut], "test");
            let r = (|| -> Result<(), SnapshotError> {
                let n = c.read_count(8)?;
                for _ in 0..n {
                    c.read_u64()?;
                }
                c.finish()
            })();
            assert!(
                matches!(r, Err(SnapshotError::Truncated { .. })),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut c = Cursor::new(&bytes, "test");
        assert!(matches!(
            c.read_count(8),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let bytes = [0u8; 5];
        let mut c = Cursor::new(&bytes, "test");
        c.read_u32().unwrap();
        assert_eq!(
            c.finish(),
            Err(SnapshotError::TrailingBytes {
                section: "test",
                extra: 1
            })
        );
    }
}

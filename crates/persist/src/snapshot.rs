//! The snapshot container format and its reader/writer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   := magic[8] version:u32 flags:u32 program_hash:u64
//! section  := tag:u32 payload_len:u64 payload[payload_len] crc32:u32
//! snapshot := header bcg_section cache_section quarantine_section
//! ```
//!
//! The three sections are required and appear in that fixed order; each
//! payload carries its own CRC-32, so any payload mutation is caught
//! before a single field is interpreted, and header-field mutations are
//! caught by the magic/version/flags/program-hash checks. The decoder
//! is strict: unknown flags, out-of-order sections, truncation at any
//! byte, trailing bytes inside or after a section, and any out-of-range
//! field value all yield a [`SnapshotError`] — never a panic, and never
//! a partially-applied snapshot (decoding builds a pure value; nothing
//! is applied until the whole snapshot validated).

use jvm_bytecode::BlockId;
use trace_bcg::{BcgImage, BranchCorrelationGraph, NodeImage, NodeState, SuccessorImage};
use trace_cache::TraceCache;

use crate::cache::{CacheImage, QuarantineImage, TraceImage};
use crate::cursor::{ByteWriter, Cursor};
use crate::error::SnapshotError;
use crate::hash::crc32;

/// Snapshot magic: identifies the format and — via the embedded CR/LF —
/// catches text-mode line-ending mangling, like PNG's.
pub const MAGIC: [u8; 8] = *b"TCSNAP\r\n";

/// The format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section tag of the BCG profile table ("BCG1").
pub const SECTION_BCG: u32 = 0x3147_4342;
/// Section tag of the trace-cache contents ("CAC1").
pub const SECTION_CACHE: u32 = 0x3143_4143;
/// Section tag of the quarantine blacklist ("QUA1").
pub const SECTION_QUARANTINE: u32 = 0x3141_5551;

/// A fully-decoded (or to-be-encoded) snapshot: pure data, nothing
/// applied to any VM yet.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// FNV-1a 64 hash of the program this profile was measured against.
    pub program_hash: u64,
    /// The profiler state.
    pub bcg: BcgImage,
    /// The trace-cache contents.
    pub cache: CacheImage,
}

impl Snapshot {
    /// Captures a warmed VM's profiler and cache under `program_hash`.
    pub fn capture(program_hash: u64, bcg: &BranchCorrelationGraph, cache: &TraceCache) -> Self {
        Snapshot {
            program_hash,
            bcg: trace_bcg::image::export(bcg),
            cache: CacheImage::capture(cache),
        }
    }

    /// Serializes with [`SnapshotWriter`].
    pub fn to_bytes(&self) -> Vec<u8> {
        SnapshotWriter::write(self)
    }
}

/// Serializes a [`Snapshot`] into the versioned, checksummed container.
pub struct SnapshotWriter;

impl SnapshotWriter {
    /// Encodes `snapshot`. The encoding is canonical: equal snapshots
    /// produce equal bytes.
    pub fn write(snapshot: &Snapshot) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u32(0); // flags: none defined in version 1
        w.put_u64(snapshot.program_hash);
        put_section(&mut w, SECTION_BCG, encode_bcg(&snapshot.bcg));
        put_section(&mut w, SECTION_CACHE, encode_cache(&snapshot.cache));
        put_section(
            &mut w,
            SECTION_QUARANTINE,
            encode_quarantine(&snapshot.cache),
        );
        w.into_bytes()
    }
}

/// Decodes and validates snapshot bytes.
///
/// The default reader enforces the program-hash staleness check;
/// [`SnapshotReader::skipping_program_hash`] disables only that check
/// and exists for the conformance harness's planted
/// `StaleSnapshotAccepted` quirk — the hostile-input campaign proves it
/// would let a cross-program snapshot through silently.
#[derive(Debug, Clone, Default)]
pub struct SnapshotReader {
    skip_program_hash: bool,
}

impl SnapshotReader {
    /// A strict reader (all checks on).
    pub fn new() -> Self {
        Self::default()
    }

    /// A reader with the program-hash staleness check **disabled**. Do
    /// not use outside tests: a stale profile silently steers trace
    /// construction for a different program.
    pub fn skipping_program_hash() -> Self {
        SnapshotReader {
            skip_program_hash: true,
        }
    }

    /// Decodes `bytes`, checking magic, version, flags, the staleness
    /// hash against `expected_program_hash`, each section's order and
    /// CRC, strict bounds on every field, and the semantic validity of
    /// the cache image. BCG-level semantic validation happens when the
    /// image is imported or merged (the graph validates before touching
    /// any state).
    pub fn read(
        &self,
        bytes: &[u8],
        expected_program_hash: u64,
    ) -> Result<Snapshot, SnapshotError> {
        let mut c = Cursor::new(bytes, "header");
        if c.read_bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.read_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let flags = c.read_u32()?;
        if flags != 0 {
            return Err(SnapshotError::UnsupportedFlags { found: flags });
        }
        let program_hash = c.read_u64()?;
        if !self.skip_program_hash && program_hash != expected_program_hash {
            return Err(SnapshotError::StaleProgram {
                expected: expected_program_hash,
                found: program_hash,
            });
        }
        let bcg = decode_bcg(take_section(&mut c, SECTION_BCG, "bcg")?)?;
        let mut cache = decode_cache(take_section(&mut c, SECTION_CACHE, "cache")?)?;
        cache.quarantine =
            decode_quarantine(take_section(&mut c, SECTION_QUARANTINE, "quarantine")?)?;
        if c.remaining() > 0 {
            return Err(SnapshotError::TrailingBytes {
                section: "snapshot",
                extra: c.remaining(),
            });
        }
        cache.validate()?;
        Ok(Snapshot {
            program_hash,
            bcg,
            cache,
        })
    }
}

fn put_section(w: &mut ByteWriter, tag: u32, payload: Vec<u8>) {
    w.put_u32(tag);
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    w.put_u32(crc32(&payload));
}

/// Reads one section envelope in order: tag must match, length must be
/// in bounds, CRC must verify. Returns the payload bytes.
fn take_section<'a>(
    c: &mut Cursor<'a>,
    expected_tag: u32,
    name: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let tag = c.read_u32()?;
    if tag != expected_tag {
        return Err(SnapshotError::UnexpectedSection {
            found: tag,
            expected: expected_tag,
        });
    }
    let len = c.read_u64()?;
    // +4 for the trailing CRC that must also still be present.
    if len.saturating_add(4) > c.remaining() as u64 {
        return Err(SnapshotError::Truncated { at: name });
    }
    let payload = c.read_bytes(len as usize)?;
    let stored = c.read_u32()?;
    if crc32(payload) != stored {
        return Err(SnapshotError::ChecksumMismatch { section: name });
    }
    Ok(payload)
}

fn put_block(w: &mut ByteWriter, b: BlockId) {
    w.put_u32(b.func.0);
    w.put_u32(b.block);
}

fn read_block(c: &mut Cursor<'_>) -> Result<BlockId, SnapshotError> {
    let func = c.read_u32()?;
    let block = c.read_u32()?;
    Ok(BlockId::new(jvm_bytecode::FuncId(func), block))
}

fn state_code(state: NodeState) -> u8 {
    match state {
        NodeState::NewlyCreated => 0,
        NodeState::Unique => 1,
        NodeState::Strong => 2,
        NodeState::Weak => 3,
    }
}

fn decode_state(code: u8) -> Result<NodeState, SnapshotError> {
    Ok(match code {
        0 => NodeState::NewlyCreated,
        1 => NodeState::Unique,
        2 => NodeState::Strong,
        3 => NodeState::Weak,
        _ => {
            return Err(SnapshotError::Malformed {
                section: "bcg",
                detail: format!("invalid node state code {code}"),
            })
        }
    })
}

fn encode_bcg(image: &BcgImage) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(image.nodes.len() as u32);
    for n in &image.nodes {
        put_block(&mut w, n.branch.0);
        put_block(&mut w, n.branch.1);
        w.put_u8(state_code(n.state));
        w.put_u64(n.executions);
        w.put_u32(n.delay_remaining);
        w.put_u32(n.since_decay);
        w.put_u16(n.successors.len() as u16);
        for s in &n.successors {
            put_block(&mut w, s.to_block);
            w.put_u16(s.count);
        }
    }
    w.into_bytes()
}

/// Minimum encoded size of a node (empty successor list).
const NODE_MIN: usize = 16 + 1 + 8 + 4 + 4 + 2;
/// Encoded size of one successor edge.
const SUCC_SIZE: usize = 8 + 2;

fn decode_bcg(payload: &[u8]) -> Result<BcgImage, SnapshotError> {
    let mut c = Cursor::new(payload, "bcg");
    let node_count = c.read_count(NODE_MIN)?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let branch = (read_block(&mut c)?, read_block(&mut c)?);
        let state = decode_state(c.read_u8()?)?;
        let executions = c.read_u64()?;
        let delay_remaining = c.read_u32()?;
        let since_decay = c.read_u32()?;
        let succ_count = c.read_u16()? as usize;
        if succ_count * SUCC_SIZE > c.remaining() {
            return Err(SnapshotError::Truncated { at: "bcg" });
        }
        let mut successors = Vec::with_capacity(succ_count);
        for _ in 0..succ_count {
            let to_block = read_block(&mut c)?;
            let count = c.read_u16()?;
            successors.push(SuccessorImage { to_block, count });
        }
        nodes.push(NodeImage {
            branch,
            state,
            executions,
            delay_remaining,
            since_decay,
            successors,
        });
    }
    c.finish()?;
    Ok(BcgImage { nodes })
}

fn encode_cache(image: &CacheImage) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match image.budget {
        Some(b) => {
            w.put_u8(1);
            w.put_u64(b);
        }
        None => {
            w.put_u8(0);
            w.put_u64(0);
        }
    }
    w.put_u32(image.traces.len() as u32);
    for t in &image.traces {
        w.put_u64(t.completion_bits);
        w.put_u32(t.blocks.len() as u32);
        for &b in &t.blocks {
            put_block(&mut w, b);
        }
    }
    w.put_u32(image.links.len() as u32);
    for &(entry, index) in &image.links {
        put_block(&mut w, entry.0);
        put_block(&mut w, entry.1);
        w.put_u32(index);
    }
    w.into_bytes()
}

/// Minimum encoded size of a trace (empty block list — rejected later
/// by validation, but the bound must hold for hostile counts too).
const TRACE_MIN: usize = 8 + 4;
/// Encoded size of one link.
const LINK_SIZE: usize = 16 + 4;

fn decode_cache(payload: &[u8]) -> Result<CacheImage, SnapshotError> {
    let mut c = Cursor::new(payload, "cache");
    let budget_flag = c.read_u8()?;
    let budget_value = c.read_u64()?;
    let budget = match budget_flag {
        0 => None,
        1 => Some(budget_value),
        other => {
            return Err(SnapshotError::Malformed {
                section: "cache",
                detail: format!("invalid budget flag {other}"),
            })
        }
    };
    let trace_count = c.read_count(TRACE_MIN)?;
    let mut traces = Vec::with_capacity(trace_count);
    for _ in 0..trace_count {
        let completion_bits = c.read_u64()?;
        let block_count = c.read_count(8)?;
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            blocks.push(read_block(&mut c)?);
        }
        traces.push(TraceImage {
            completion_bits,
            blocks,
        });
    }
    let link_count = c.read_count(LINK_SIZE)?;
    let mut links = Vec::with_capacity(link_count);
    for _ in 0..link_count {
        let entry = (read_block(&mut c)?, read_block(&mut c)?);
        let index = c.read_u32()?;
        links.push((entry, index));
    }
    c.finish()?;
    Ok(CacheImage {
        budget,
        traces,
        links,
        quarantine: Vec::new(),
    })
}

fn encode_quarantine(image: &CacheImage) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(image.quarantine.len() as u32);
    for q in &image.quarantine {
        put_block(&mut w, q.entry.0);
        put_block(&mut w, q.entry.1);
        w.put_u32(q.cooldown);
        w.put_u32(q.blocks.len() as u32);
        for &b in &q.blocks {
            put_block(&mut w, b);
        }
    }
    w.into_bytes()
}

/// Minimum encoded size of a quarantine entry (empty path — rejected by
/// validation).
const QUAR_MIN: usize = 16 + 4 + 4;

fn decode_quarantine(payload: &[u8]) -> Result<Vec<QuarantineImage>, SnapshotError> {
    let mut c = Cursor::new(payload, "quarantine");
    let count = c.read_count(QUAR_MIN)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let entry = (read_block(&mut c)?, read_block(&mut c)?);
        let cooldown = c.read_u32()?;
        let block_count = c.read_count(8)?;
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            blocks.push(read_block(&mut c)?);
        }
        out.push(QuarantineImage {
            entry,
            blocks,
            cooldown,
        });
    }
    c.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;
    use trace_bcg::BcgConfig;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn warmed_snapshot() -> Snapshot {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig::default().with_start_delay(4));
        for i in 0..600 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(if i % 12 == 11 { 3 } else { 2 }));
        }
        let mut cache = TraceCache::new();
        cache.insert_and_link((blk(2), blk(0)), vec![blk(0), blk(1), blk(2)], 0.92);
        cache.insert_and_link((blk(3), blk(0)), vec![blk(0), blk(1), blk(2)], 0.92);
        cache.restore_quarantine((blk(1), blk(3)), vec![blk(3), blk(0)], 2);
        cache.set_budget(Some(4096));
        Snapshot::capture(0xDEAD_BEEF_0BAD_F00D, &bcg, &cache)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let snap = warmed_snapshot();
        let bytes = snap.to_bytes();
        let back = SnapshotReader::new()
            .read(&bytes, snap.program_hash)
            .expect("own bytes must decode");
        assert_eq!(back, snap);
        // Canonical: re-encoding yields identical bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn header_checks_fire_in_order() {
        let snap = warmed_snapshot();
        let bytes = snap.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::new().read(&bad_magic, snap.program_hash),
            Err(SnapshotError::BadMagic)
        );

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert_eq!(
            SnapshotReader::new().read(&bad_version, snap.program_hash),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );

        let mut bad_flags = bytes.clone();
        bad_flags[12] = 1;
        assert_eq!(
            SnapshotReader::new().read(&bad_flags, snap.program_hash),
            Err(SnapshotError::UnsupportedFlags { found: 1 })
        );

        assert!(matches!(
            SnapshotReader::new().read(&bytes, snap.program_hash + 1),
            Err(SnapshotError::StaleProgram { .. })
        ));
        // The quirk hook really does skip only the hash check.
        assert!(SnapshotReader::skipping_program_hash()
            .read(&bytes, snap.program_hash + 1)
            .is_ok());
    }

    #[test]
    fn every_truncation_point_errors() {
        let snap = warmed_snapshot();
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            let r = SnapshotReader::new().read(&bytes[..cut], snap.program_hash);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn payload_bit_flips_are_caught_by_the_section_crc() {
        let snap = warmed_snapshot();
        let bytes = snap.to_bytes();
        // Flip one bit in every byte past the header: each must fail
        // (CRC, bounds, or section framing), never decode silently.
        for i in 24..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x10;
            assert!(
                SnapshotReader::new().read(&m, snap.program_hash).is_err(),
                "byte {i} mutation must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_after_the_last_section_error() {
        let snap = warmed_snapshot();
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(matches!(
            SnapshotReader::new().read(&bytes, snap.program_hash),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bcg = BranchCorrelationGraph::new(BcgConfig::default());
        let cache = TraceCache::new();
        let snap = Snapshot::capture(7, &bcg, &cache);
        let bytes = snap.to_bytes();
        let back = SnapshotReader::new().read(&bytes, 7).unwrap();
        assert_eq!(back, snap);
        assert!(back.bcg.nodes.is_empty());
        assert!(back.cache.traces.is_empty());
    }
}

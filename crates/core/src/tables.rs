//! Plain-text rendering of the paper's tables.
//!
//! Each `table_*` builder takes measured data and produces a [`TextTable`]
//! laid out like the corresponding table in the paper, so the
//! `paper_tables` harness can print side-by-side comparable output.

use crate::experiment::SweepPoint;
use crate::overhead::OverheadMeasurement;
use crate::report::RunReport;

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        TextTable {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>w$}", h, w = widths[i]));
        }
        out.push_str(&line);
        out.push('\n');
        out.push_str(&"-".repeat(line.len()));
        out.push('\n');
        for row in &self.rows {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", row[i], w = widths[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting), title as a `#` comment line.
    pub fn render_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = format!("# {}\n", self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a threshold like the paper's row labels ("97%").
pub fn fmt_threshold(t: f64) -> String {
    format!("{:.0}%", t * 100.0)
}

/// Formats a completion rate like Table III ("99+" above 99.9%).
pub fn fmt_completion(rate: f64) -> String {
    let pct = rate * 100.0;
    if pct > 99.9 {
        "99+".to_owned()
    } else {
        format!("{pct:.1}%")
    }
}

/// Formats "thousands of dispatches" quantities (Tables IV–V).
pub fn fmt_kdispatch(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{:.1}", v / 1000.0)
    }
}

fn average(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// A named set of sweep points — one benchmark column.
pub type NamedSweep = (String, Vec<SweepPoint>);

/// Builds a threshold-indexed table: one row per threshold, one column per
/// benchmark plus an average column, with `value` extracting the metric
/// and `fmt` rendering a cell.
fn threshold_table(
    title: &str,
    sweeps: &[NamedSweep],
    value: impl Fn(&RunReport) -> f64,
    fmt: impl Fn(f64) -> String,
) -> TextTable {
    let mut headers = vec!["threshold".to_owned()];
    headers.extend(sweeps.iter().map(|(n, _)| n.clone()));
    headers.push("average".to_owned());
    let mut table = TextTable::new(title, headers);
    let nrows = sweeps.first().map(|(_, pts)| pts.len()).unwrap_or(0);
    for i in 0..nrows {
        let threshold = sweeps[0].1[i].threshold;
        let mut row = vec![fmt_threshold(threshold)];
        let vals: Vec<f64> = sweeps
            .iter()
            .map(|(_, pts)| value(&pts[i].report))
            .collect();
        row.extend(vals.iter().map(|&v| fmt(v)));
        row.push(fmt(average(&vals)));
        table.push_row(row);
    }
    table
}

/// Table I: average executed trace length (blocks) vs. threshold.
pub fn table1_trace_length(sweeps: &[NamedSweep]) -> TextTable {
    threshold_table(
        "Table I: Trace Length vs. Threshold (basic blocks)",
        sweeps,
        RunReport::avg_trace_length,
        |v| format!("{v:.1}"),
    )
}

/// Table II: instruction stream coverage by completed traces vs.
/// threshold.
pub fn table2_coverage(sweeps: &[NamedSweep]) -> TextTable {
    threshold_table(
        "Table II: Instruction Stream Coverage vs. Threshold",
        sweeps,
        RunReport::coverage_completed,
        |v| format!("{:.0}%", v * 100.0),
    )
}

/// Table III: dynamic trace (frame) completion rate vs. threshold.
pub fn table3_completion(sweeps: &[NamedSweep]) -> TextTable {
    threshold_table(
        "Table III: Frame completion rate vs. Threshold",
        sweeps,
        RunReport::completion_rate,
        fmt_completion,
    )
}

/// Table IV: thousands of dispatches per state-change signal vs.
/// threshold.
pub fn table4_signal_rate(sweeps: &[NamedSweep]) -> TextTable {
    threshold_table(
        "Table IV: Thousands of Dispatches per State Change Signal",
        sweeps,
        RunReport::dispatches_per_state_signal,
        fmt_kdispatch,
    )
}

/// Table V: thousands of dispatches per trace event at the 97% threshold,
/// one row per start-state delay.
pub fn table5_event_interval(sweeps: &[NamedSweep]) -> TextTable {
    let mut headers = vec!["delay".to_owned()];
    headers.extend(sweeps.iter().map(|(n, _)| n.clone()));
    headers.push("average".to_owned());
    let mut table = TextTable::new(
        "Table V: Thousands of Dispatches per Trace Event at 97% threshold",
        headers,
    );
    let nrows = sweeps.first().map(|(_, pts)| pts.len()).unwrap_or(0);
    for i in 0..nrows {
        let delay = sweeps[0].1[i].delay;
        let mut row = vec![delay.to_string()];
        let vals: Vec<f64> = sweeps
            .iter()
            .map(|(_, pts)| pts[i].report.trace_event_interval())
            .collect();
        row.extend(vals.iter().map(|&v| fmt_kdispatch(v)));
        row.push(fmt_kdispatch(average(&vals)));
        table.push_row(row);
    }
    table
}

/// Table VI: profiler overhead per basic-block dispatch.
pub fn table6_profiler_overhead(rows: &[(String, OverheadMeasurement)]) -> TextTable {
    let mut table = TextTable::new(
        "Table VI: Profiler overhead per basic block dispatch",
        vec![
            "benchmark".to_owned(),
            "no profiler (s)".to_owned(),
            "dispatches (M)".to_owned(),
            "profiler (s)".to_owned(),
            "overhead / 1e6 disp (s)".to_owned(),
        ],
    );
    for (name, m) in rows {
        table.push_row(vec![
            name.clone(),
            format!("{:.3}", m.base_seconds),
            format!("{:.1}", m.block_dispatches as f64 / 1e6),
            format!("{:.3}", m.profiled_seconds),
            format!("{:.4}", m.overhead_per_million_dispatches()),
        ]);
    }
    table
}

/// Table VII: expected overhead under the trace-dispatch model.
pub fn table7_trace_dispatch_overhead(rows: &[(String, OverheadMeasurement)]) -> TextTable {
    let mut table = TextTable::new(
        "Table VII: Profiler dispatch overhead (trace model)",
        vec![
            "benchmark".to_owned(),
            "trace dispatches (M)".to_owned(),
            "overhead / 1e6 disp (s)".to_owned(),
            "expected overhead (s)".to_owned(),
            "% overhead".to_owned(),
        ],
    );
    for (name, m) in rows {
        table.push_row(vec![
            name.clone(),
            format!("{:.1}", m.trace_dispatches as f64 / 1e6),
            format!("{:.4}", m.overhead_per_million_dispatches()),
            format!("{:.3}", m.expected_trace_overhead_seconds()),
            format!("{:.1}%", m.expected_trace_overhead_pct()),
        ]);
    }
    table
}

/// Figures 1–2 as a table: dispatch totals under the per-instruction,
/// per-block and per-trace models, with reduction factors.
pub fn fig_dispatch_modes(rows: &[(String, RunReport)]) -> TextTable {
    let mut table = TextTable::new(
        "Figures 1-2: dispatches per execution model",
        vec![
            "benchmark".to_owned(),
            "per-instruction".to_owned(),
            "per-block".to_owned(),
            "per-trace".to_owned(),
            "block/instr".to_owned(),
            "trace/block".to_owned(),
        ],
    );
    for (name, r) in rows {
        let d = r.dispatch_counts();
        table.push_row(vec![
            name.clone(),
            d.per_instruction.to_string(),
            d.per_block.to_string(),
            d.per_trace.to_string(),
            format!("{:.2}x", d.block_over_instruction()),
            format!("{:.2}x", d.trace_over_block()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new("T", vec!["a".into(), "bb".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.starts_with("T\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have the same width.
        assert_eq!(lines[3].len(), lines[1].len());
    }

    fn sample_report(len: f64) -> crate::report::RunReport {
        use jvm_vm::ExecStats;
        use trace_bcg::ProfilerStats;
        use trace_cache::{CacheStats, ConstructorStats, TraceExecStats};
        crate::report::RunReport {
            result: None,
            checksum: 0,
            exec: ExecStats {
                instructions: 1000,
                block_dispatches: 200,
                ..ExecStats::default()
            },
            profiler: ProfilerStats {
                state_signals: 2,
                ..ProfilerStats::default()
            },
            traces: TraceExecStats {
                entered: 10,
                completed: 10,
                blocks_in_completed: (len * 10.0) as u64,
                instrs_in_completed: 800,
                ..TraceExecStats::default()
            },
            constructor: ConstructorStats::default(),
            cache: CacheStats::default(),
        }
    }

    fn sample_sweeps() -> Vec<NamedSweep> {
        use crate::experiment::SweepPoint;
        let mk = |len: f64| -> Vec<SweepPoint> {
            [1.0, 0.99, 0.97]
                .iter()
                .map(|&t| SweepPoint {
                    threshold: t,
                    delay: 64,
                    report: sample_report(len),
                })
                .collect()
        };
        vec![("alpha".to_owned(), mk(4.0)), ("beta".to_owned(), mk(6.0))]
    }

    #[test]
    fn threshold_tables_have_benchmark_columns_and_average() {
        let sweeps = sample_sweeps();
        let t1 = table1_trace_length(&sweeps);
        assert_eq!(t1.headers, vec!["threshold", "alpha", "beta", "average"]);
        assert_eq!(t1.rows.len(), 3);
        // Row label is the threshold; the average of 4.0 and 6.0 is 5.0.
        assert_eq!(t1.rows[0][0], "100%");
        assert_eq!(t1.rows[0][1], "4.0");
        assert_eq!(t1.rows[0][2], "6.0");
        assert_eq!(t1.rows[0][3], "5.0");

        let t2 = table2_coverage(&sweeps);
        assert_eq!(t2.rows[0][1], "80%"); // 800/1000 instructions

        let t3 = table3_completion(&sweeps);
        assert_eq!(t3.rows[0][1], "99+"); // 10/10 completed

        let t4 = table4_signal_rate(&sweeps);
        assert_eq!(t4.rows[0][1], "0.1"); // 200 dispatches / 2 signals / 1000
    }

    #[test]
    fn table5_rows_are_labelled_by_delay() {
        let sweeps = sample_sweeps();
        let t5 = table5_event_interval(&sweeps);
        assert_eq!(t5.rows[0][0], "64");
        assert_eq!(t5.rows.len(), 3);
    }

    #[test]
    fn csv_rendering_quotes_and_comments() {
        let mut t = TextTable::new("Table X: things", vec!["a,b".into(), "c".into()]);
        t.push_row(vec!["1\"2".into(), "3".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# Table X: things");
        assert_eq!(lines[1], "\"a,b\",c");
        assert_eq!(lines[2], "\"1\"\"2\",3");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = TextTable::new("T", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn completion_formatting_matches_paper_convention() {
        assert_eq!(fmt_completion(0.9995), "99+");
        assert_eq!(fmt_completion(0.985), "98.5%");
    }

    #[test]
    fn threshold_and_kdispatch_formatting() {
        assert_eq!(fmt_threshold(0.97), "97%");
        assert_eq!(fmt_kdispatch(114_600.0), "114.6");
        assert_eq!(fmt_kdispatch(f64::INFINITY), "inf");
    }
}

//! Integrated-system configuration.

use jvm_vm::VmConfig;
use trace_bcg::BcgConfig;
use trace_cache::ConstructorConfig;

/// Configuration of the whole trace-dispatching VM.
///
/// The paper's two experiment parameters (§5.2) — the completion
/// *threshold* and the *start state delay* — are stored once here and
/// propagated consistently to the profiler and the trace constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceJitConfig {
    /// Minimum expected trace completion rate, also the strong-correlation
    /// bound (paper default: 0.97).
    pub threshold: f64,
    /// Executions before a branch leaves `NewlyCreated` (paper default:
    /// 64).
    pub start_delay: u32,
    /// Node executions between counter decays (paper: 256).
    pub decay_interval: u32,
    /// Whether the profiler's predicted-successor inline cache is enabled
    /// (ablation knob; on in the paper).
    pub inline_cache: bool,
    /// Hard cap on blocks per trace.
    pub max_trace_blocks: usize,
    /// Extra loop-body copies appended when a trace ends in a loop
    /// (paper: 1, "unrolled once"; ablation knob).
    pub loop_unroll: usize,
    /// Interpreter resource limits and options.
    pub vm: VmConfig,
}

impl TraceJitConfig {
    /// The configuration the paper settles on: threshold 97%, delay 64.
    pub fn paper_default() -> Self {
        TraceJitConfig {
            threshold: 0.97,
            start_delay: 64,
            decay_interval: 256,
            inline_cache: true,
            max_trace_blocks: 64,
            loop_unroll: 1,
            vm: VmConfig::default(),
        }
    }

    /// Returns this configuration with a different completion threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < threshold <= 1.0`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold <= 1.0);
        self.threshold = threshold;
        self
    }

    /// Returns this configuration with a different start-state delay.
    pub fn with_start_delay(mut self, delay: u32) -> Self {
        self.start_delay = delay;
        self
    }

    /// The profiler configuration this implies.
    pub fn bcg_config(&self) -> BcgConfig {
        BcgConfig {
            start_delay: self.start_delay,
            threshold: self.threshold,
            decay_interval: self.decay_interval,
            inline_cache: self.inline_cache,
            ..BcgConfig::paper_default()
        }
    }

    /// Returns this configuration with a different loop-unroll factor.
    pub fn with_loop_unroll(mut self, copies: usize) -> Self {
        self.loop_unroll = copies;
        self
    }

    /// The trace-constructor configuration this implies.
    pub fn constructor_config(&self) -> ConstructorConfig {
        ConstructorConfig {
            threshold: self.threshold,
            max_trace_blocks: self.max_trace_blocks,
            loop_unroll: self.loop_unroll,
            ..ConstructorConfig::paper_default()
        }
    }
}

impl Default for TraceJitConfig {
    /// Same as [`TraceJitConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = TraceJitConfig::default();
        assert_eq!(c.threshold, 0.97);
        assert_eq!(c.start_delay, 64);
        assert_eq!(c.decay_interval, 256);
    }

    #[test]
    fn derived_configs_are_consistent() {
        let c = TraceJitConfig::paper_default()
            .with_threshold(0.99)
            .with_start_delay(4096);
        assert_eq!(c.bcg_config().threshold, 0.99);
        assert_eq!(c.bcg_config().start_delay, 4096);
        assert_eq!(c.constructor_config().threshold, 0.99);
    }

    #[test]
    #[should_panic]
    fn invalid_threshold_panics() {
        let _ = TraceJitConfig::default().with_threshold(1.5);
    }
}

//! The per-run report: every raw counter plus the paper's five dependent
//! values (§5.2).

use jvm_vm::{DispatchCounts, ExecStats, Value};
use trace_bcg::ProfilerStats;
use trace_cache::{CacheStats, ConstructorStats, TraceExecStats};

/// Everything measured during one [`crate::TraceVm::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The program's return value.
    pub result: Option<Value>,
    /// Checksum accumulated by `checksum` intrinsics (workload
    /// validation).
    pub checksum: u64,
    /// Interpreter counters (instructions, block dispatches, …).
    pub exec: ExecStats,
    /// Profiler counters (inline-cache hits, decays, signals, …).
    pub profiler: ProfilerStats,
    /// Trace execution counters (entries, completions, coverage, …).
    pub traces: TraceExecStats,
    /// Trace-constructor counters.
    pub constructor: ConstructorStats,
    /// Trace-cache counters.
    pub cache: CacheStats,
}

impl RunReport {
    /// **Dependent value 1** — average executed trace length, in basic
    /// blocks, over completed traces (Table I).
    pub fn avg_trace_length(&self) -> f64 {
        self.traces.avg_completed_length()
    }

    /// **Dependent value 2** — instruction stream coverage by completed
    /// traces (Table II).
    pub fn coverage_completed(&self) -> f64 {
        self.traces.coverage_completed(self.exec.instructions)
    }

    /// Coverage including partially executed traces (the paper's 90.7%
    /// refinement of Table II).
    pub fn coverage_incl_partial(&self) -> f64 {
        self.traces.coverage_incl_partial(self.exec.instructions)
    }

    /// **Dependent value 3** — dynamic trace completion rate (Table III).
    pub fn completion_rate(&self) -> f64 {
        self.traces.completion_rate()
    }

    /// **Dependent value 4** — block dispatches per state-change signal
    /// (Table IV reports thousands of these). `f64::INFINITY` when no
    /// signal fired.
    pub fn dispatches_per_state_signal(&self) -> f64 {
        if self.profiler.state_signals == 0 {
            f64::INFINITY
        } else {
            self.exec.block_dispatches as f64 / self.profiler.state_signals as f64
        }
    }

    /// **Dependent value 5** — the trace event interval: dispatches per
    /// trace event, where a trace event is a constructed trace or a
    /// profiler signal (Table V reports thousands of these).
    /// `f64::INFINITY` when no event occurred.
    pub fn trace_event_interval(&self) -> f64 {
        let events = self.constructor.traces_created + self.profiler.total_signals();
        if events == 0 {
            f64::INFINITY
        } else {
            self.exec.block_dispatches as f64 / events as f64
        }
    }

    /// The same interval measured in instructions, as the prose definition
    /// in §5.2 words it.
    pub fn trace_event_interval_instructions(&self) -> f64 {
        let events = self.constructor.traces_created + self.profiler.total_signals();
        if events == 0 {
            f64::INFINITY
        } else {
            self.exec.instructions as f64 / events as f64
        }
    }

    /// Dispatch totals under the three execution models (Figures 1–2 plus
    /// the trace model).
    pub fn dispatch_counts(&self) -> DispatchCounts {
        DispatchCounts {
            per_instruction: self.exec.instructions,
            per_block: self.exec.block_dispatches,
            per_trace: self.traces.trace_dispatches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            result: None,
            checksum: 1,
            exec: ExecStats {
                instructions: 100_000,
                block_dispatches: 20_000,
                ..ExecStats::default()
            },
            profiler: ProfilerStats {
                dispatches: 20_000,
                state_signals: 4,
                prediction_signals: 1,
                ..ProfilerStats::default()
            },
            traces: TraceExecStats {
                entered: 1_000,
                completed: 950,
                exited_early: 50,
                blocks_in_completed: 4_750,
                blocks_in_partial: 100,
                instrs_in_completed: 80_000,
                instrs_in_partial: 5_000,
                blocks_outside: 2_000,
                first_entry_dispatch: 40,
            },
            constructor: ConstructorStats {
                traces_created: 5,
                ..ConstructorStats::default()
            },
            cache: CacheStats::default(),
        }
    }

    #[test]
    fn five_dependent_values() {
        let r = sample();
        assert_eq!(r.avg_trace_length(), 5.0);
        assert_eq!(r.coverage_completed(), 0.8);
        assert_eq!(r.coverage_incl_partial(), 0.85);
        assert_eq!(r.completion_rate(), 0.95);
        assert_eq!(r.dispatches_per_state_signal(), 5_000.0);
        assert_eq!(r.trace_event_interval(), 2_000.0);
        assert_eq!(r.trace_event_interval_instructions(), 10_000.0);
    }

    #[test]
    fn dispatch_counts_combine_models() {
        let r = sample();
        let d = r.dispatch_counts();
        assert_eq!(d.per_instruction, 100_000);
        assert_eq!(d.per_block, 20_000);
        assert_eq!(d.per_trace, 3_000);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let mut r = sample();
        r.profiler.state_signals = 0;
        r.profiler.prediction_signals = 0;
        r.constructor.traces_created = 0;
        assert!(r.dispatches_per_state_signal().is_infinite());
        assert!(r.trace_event_interval().is_infinite());
    }
}

//! # trace-jit
//!
//! The integrated system of the paper: a direct-threaded-inlining-style
//! interpreter ([`jvm_vm`]) whose dispatch hook drives the branch
//! correlation graph profiler ([`trace_bcg`]), whose signals drive the
//! trace constructor and cache ([`trace_cache`]), whose linked traces are
//! monitored by the trace-dispatch runtime — all wired together by
//! [`TraceVm`].
//!
//! On top of the integrated VM sit the experiment harness
//! ([`experiment`]), the wall-clock overhead model ([`overhead`],
//! Tables VI–VII) and plain-text table rendering ([`tables`]) used to
//! regenerate every table and figure of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use jvm_bytecode::{ProgramBuilder, CmpOp};
//! use trace_jit::{TraceVm, TraceJitConfig};
//! use jvm_vm::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A hot countdown loop.
//! let mut pb = ProgramBuilder::new();
//! let f = pb.declare_function("main", 1, true);
//! let b = pb.function_mut(f);
//! let acc = b.alloc_local();
//! b.iconst(0).store(acc);
//! let head = b.bind_new_label();
//! let exit = b.new_label();
//! b.load(0).if_i(CmpOp::Le, exit);
//! b.load(acc).load(0).iadd().store(acc);
//! b.iinc(0, -1).goto(head);
//! b.bind(exit);
//! b.load(acc).ret();
//! let program = pb.build(f)?;
//!
//! let mut tvm = TraceVm::new(&program, TraceJitConfig::paper_default());
//! let report = tvm.run(&[Value::Int(10_000)])?;
//! assert_eq!(report.result, Some(Value::Int(50_005_000)));
//! // The loop is hot and predictable: most of the stream runs from traces.
//! assert!(report.coverage_incl_partial() > 0.5);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod experiment;
pub mod overhead;
pub mod report;
pub mod tables;
pub mod tracevm;

pub use config::TraceJitConfig;
pub use experiment::{delay_sweep, run_point, threshold_sweep, SweepPoint};
pub use overhead::{measure_overhead, OverheadMeasurement};
pub use report::RunReport;
pub use tracevm::TraceVm;

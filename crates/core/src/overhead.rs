//! Wall-clock profiling-overhead model (Tables VI and VII).
//!
//! The paper measures (a) the unmodified interpreter, (b) the interpreter
//! with the profiler code attached to every basic-block dispatch, and
//! derives the per-million-dispatch profiler cost; it then multiplies that
//! cost by the (much smaller) number of dispatches under the trace model
//! to predict the trace-dispatch overhead (§5.4). [`measure_overhead`]
//! performs exactly those steps on this machine.

use std::time::Instant;

use jvm_bytecode::Program;
use jvm_vm::{NullObserver, Value, Vm, VmError};
use trace_bcg::BranchCorrelationGraph;

use crate::config::TraceJitConfig;
use crate::tracevm::TraceVm;

/// Result of one overhead measurement (one benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadMeasurement {
    /// Seconds for the unprofiled run (Table VI "No Profiler").
    pub base_seconds: f64,
    /// Seconds with the BCG profiler attached to every block dispatch
    /// (Table VI "Profiler").
    pub profiled_seconds: f64,
    /// Block dispatches executed (Table VI "# dispatches").
    pub block_dispatches: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Dispatches under the trace model: trace entries plus out-of-trace
    /// blocks (Table VII "Trace Dispatches").
    pub trace_dispatches: u64,
}

impl OverheadMeasurement {
    /// Profiler cost per dispatch, in seconds (never negative — timing
    /// jitter is clamped).
    pub fn per_dispatch_seconds(&self) -> f64 {
        if self.block_dispatches == 0 {
            return 0.0;
        }
        ((self.profiled_seconds - self.base_seconds) / self.block_dispatches as f64).max(0.0)
    }

    /// Table VI's "Overhead per 10⁶ dispatches", in seconds.
    pub fn overhead_per_million_dispatches(&self) -> f64 {
        self.per_dispatch_seconds() * 1e6
    }

    /// Block-dispatch profiling overhead as a percentage of the base run
    /// (the paper's ≈28.6% per-basic-block figure).
    pub fn block_profiling_overhead_pct(&self) -> f64 {
        if self.base_seconds == 0.0 {
            return 0.0;
        }
        ((self.profiled_seconds - self.base_seconds) / self.base_seconds * 100.0).max(0.0)
    }

    /// Table VII's "Expected Overhead": trace dispatches × per-dispatch
    /// profiler cost, in seconds.
    pub fn expected_trace_overhead_seconds(&self) -> f64 {
        self.trace_dispatches as f64 * self.per_dispatch_seconds()
    }

    /// Table VII's "% Overhead": expected trace-dispatch profiling cost
    /// relative to the base run.
    pub fn expected_trace_overhead_pct(&self) -> f64 {
        if self.base_seconds == 0.0 {
            return 0.0;
        }
        self.expected_trace_overhead_seconds() / self.base_seconds * 100.0
    }
}

/// Measures profiler overhead for one program following the paper's §5.4
/// methodology. Each timing takes the **minimum over `repeats` runs** —
/// the standard way to suppress scheduler noise for deterministic
/// workloads.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn measure_overhead(
    program: &Program,
    args: &[Value],
    config: TraceJitConfig,
    repeats: usize,
) -> Result<OverheadMeasurement, VmError> {
    let repeats = repeats.max(1);
    let mut vm_config = config.vm;
    vm_config.capture_output = false;

    // (a) Unmodified interpreter.
    let mut base_seconds = f64::INFINITY;
    let mut block_dispatches = 0;
    let mut instructions = 0;
    for _ in 0..repeats {
        let mut vm = Vm::with_config(program, vm_config);
        let start = Instant::now();
        vm.run(args, &mut NullObserver)?;
        base_seconds = base_seconds.min(start.elapsed().as_secs_f64());
        block_dispatches = vm.stats().block_dispatches;
        instructions = vm.stats().instructions;
    }

    // (b) Profiler attached to every block dispatch (profiler only — the
    // paper times the profiling hook, not trace construction, which it
    // shows is orders of magnitude rarer).
    let mut profiled_seconds = f64::INFINITY;
    for _ in 0..repeats {
        let mut vm = Vm::with_config(program, vm_config);
        let mut bcg = BranchCorrelationGraph::new(config.bcg_config());
        let start = Instant::now();
        vm.run(args, &mut |block| {
            bcg.observe(block);
        })?;
        profiled_seconds = profiled_seconds.min(start.elapsed().as_secs_f64());
    }

    // (c) Trace-dispatch count from a full trace-VM run.
    let report = TraceVm::new(program, config).run(args)?;

    Ok(OverheadMeasurement {
        base_seconds,
        profiled_seconds,
        block_dispatches,
        instructions,
        trace_dispatches: report.traces.trace_dispatches(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn derived_quantities_from_fixed_numbers() {
        let m = OverheadMeasurement {
            base_seconds: 10.0,
            profiled_seconds: 12.0,
            block_dispatches: 100_000_000,
            instructions: 500_000_000,
            trace_dispatches: 10_000_000,
        };
        assert!((m.overhead_per_million_dispatches() - 0.02).abs() < 1e-12);
        assert!((m.block_profiling_overhead_pct() - 20.0).abs() < 1e-9);
        assert!((m.expected_trace_overhead_seconds() - 0.2).abs() < 1e-9);
        assert!((m.expected_trace_overhead_pct() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn timing_jitter_is_clamped_to_zero() {
        let m = OverheadMeasurement {
            base_seconds: 10.0,
            profiled_seconds: 9.9, // jitter made the profiled run faster
            block_dispatches: 1_000,
            instructions: 1_000,
            trace_dispatches: 100,
        };
        assert_eq!(m.per_dispatch_seconds(), 0.0);
        assert_eq!(m.block_profiling_overhead_pct(), 0.0);
    }

    #[test]
    fn measure_overhead_produces_consistent_counts() {
        let p = loop_program();
        let m = measure_overhead(
            &p,
            &[Value::Int(30_000)],
            TraceJitConfig::paper_default().with_start_delay(16),
            2,
        )
        .unwrap();
        assert!(m.base_seconds > 0.0);
        assert!(m.profiled_seconds > 0.0);
        assert!(m.block_dispatches > 30_000);
        assert!(
            m.trace_dispatches < m.block_dispatches,
            "trace model must dispatch less: {m:?}"
        );
    }
}

//! Parameter sweeps over the two experiment knobs (§5.2).

use jvm_bytecode::Program;
use jvm_vm::{Value, VmError};

use crate::config::TraceJitConfig;
use crate::report::RunReport;
use crate::tracevm::TraceVm;

/// One point of a sweep: the parameter values and the resulting report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Completion threshold used.
    pub threshold: f64,
    /// Start-state delay used.
    pub delay: u32,
    /// The measured report.
    pub report: RunReport,
}

/// Runs one fresh [`TraceVm`] over the program and returns its report.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_point(
    program: &Program,
    args: &[Value],
    config: TraceJitConfig,
) -> Result<RunReport, VmError> {
    TraceVm::new(program, config).run(args)
}

/// Sweeps the completion threshold at a fixed delay (Tables I–IV use
/// thresholds 100%, 99%, 98%, 97%, 95% at delay 64).
///
/// # Errors
///
/// Propagates the first interpreter error.
pub fn threshold_sweep(
    program: &Program,
    args: &[Value],
    thresholds: &[f64],
    delay: u32,
    base: TraceJitConfig,
) -> Result<Vec<SweepPoint>, VmError> {
    thresholds
        .iter()
        .map(|&threshold| {
            let config = base.with_threshold(threshold).with_start_delay(delay);
            Ok(SweepPoint {
                threshold,
                delay,
                report: run_point(program, args, config)?,
            })
        })
        .collect()
}

/// Sweeps the start-state delay at a fixed threshold (Table V uses delays
/// 1, 64, 4096 at threshold 97%).
///
/// # Errors
///
/// Propagates the first interpreter error.
pub fn delay_sweep(
    program: &Program,
    args: &[Value],
    delays: &[u32],
    threshold: f64,
    base: TraceJitConfig,
) -> Result<Vec<SweepPoint>, VmError> {
    delays
        .iter()
        .map(|&delay| {
            let config = base.with_threshold(threshold).with_start_delay(delay);
            Ok(SweepPoint {
                threshold,
                delay,
                report: run_point(program, args, config)?,
            })
        })
        .collect()
}

/// The threshold grid of the paper's Tables I–IV.
pub const PAPER_THRESHOLDS: [f64; 5] = [1.00, 0.99, 0.98, 0.97, 0.95];

/// The delay grid of the paper's Table V.
pub const PAPER_DELAYS: [u32; 3] = [1, 64, 4096];

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn threshold_sweep_covers_grid_and_is_deterministic() {
        let p = loop_program();
        let args = [Value::Int(5_000)];
        let base = TraceJitConfig::paper_default();
        let a = threshold_sweep(&p, &args, &PAPER_THRESHOLDS, 64, base).unwrap();
        let b = threshold_sweep(&p, &args, &PAPER_THRESHOLDS, 64, base).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a, b, "sweeps must be deterministic");
        for pt in &a {
            assert_eq!(pt.delay, 64);
            assert_eq!(pt.report.result, Some(Value::Int(12_502_500)));
        }
    }

    #[test]
    fn delay_sweep_larger_delay_never_creates_more_traces() {
        let p = loop_program();
        let args = [Value::Int(5_000)];
        let base = TraceJitConfig::paper_default();
        let pts = delay_sweep(&p, &args, &PAPER_DELAYS, 0.97, base).unwrap();
        assert_eq!(pts.len(), 3);
        // The 4096-delay run can trace at most as much as the 1-delay run.
        let created: Vec<u64> = pts
            .iter()
            .map(|p| p.report.cache.traces_constructed)
            .collect();
        assert!(created[2] <= created[0]);
    }
}

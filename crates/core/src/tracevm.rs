//! The integrated trace-dispatching VM.

use jvm_bytecode::{BlockId, Program};
use jvm_vm::{DispatchObserver, Value, Vm, VmError};
use trace_bcg::{BranchCorrelationGraph, Signal};
use trace_cache::{TraceCache, TraceConstructor, TraceRuntime};

use crate::config::TraceJitConfig;
use crate::report::RunReport;

/// The paper's system, assembled: interpreter + BCG profiler + trace
/// constructor + trace cache + trace-dispatch monitor.
///
/// On every basic-block dispatch (the seam described in §4.1.2):
///
/// 1. the **profiler** records the branch in the correlation graph,
///    decaying and re-checking states on its periodic schedule, and
///    hands back the branch's node;
/// 2. the **trace runtime** checks the dispatch against the cache's linked
///    traces through that node's inline trace-link slot (entering,
///    advancing, completing or abandoning a trace) — no hashing at block
///    boundaries;
/// 3. pending profiler **signals** are handed to the **constructor**,
///    which rebuilds exactly the affected region of the cache.
///
/// Profiler state, cache contents and metrics accumulate across runs of
/// the same `TraceVm`, modelling a long-running VM; create a fresh
/// `TraceVm` per experiment point instead.
#[derive(Debug)]
pub struct TraceVm<'p> {
    program: &'p Program,
    config: TraceJitConfig,
    vm: Vm<'p>,
    bcg: BranchCorrelationGraph,
    constructor: TraceConstructor,
    cache: TraceCache,
    runtime: TraceRuntime,
    /// Reusable signal drain buffer: the dispatch loop never allocates.
    signal_buf: Vec<Signal>,
}

/// The observer wired into the interpreter's dispatch loop.
struct JitObserver<'a, 'p> {
    program: &'p Program,
    bcg: &'a mut BranchCorrelationGraph,
    constructor: &'a mut TraceConstructor,
    cache: &'a mut TraceCache,
    runtime: &'a mut TraceRuntime,
    signal_buf: &'a mut Vec<Signal>,
}

impl DispatchObserver for JitObserver<'_, '_> {
    #[inline]
    fn on_block(&mut self, block: BlockId) {
        // Profile first: observing yields the node of the branch just
        // taken, whose inline trace-link slot answers the monitor's
        // entry check without hashing. The monitor still sees the cache
        // as of the previous dispatch (the constructor has not run yet),
        // so a trace constructed *by* this dispatch cannot also be
        // entered by it.
        let node = self.bcg.observe(block);
        self.runtime
            .on_block_at_node(block, node, self.bcg, self.cache, self.program);
        if self.bcg.has_signals() {
            self.bcg.drain_signals_into(self.signal_buf);
            self.constructor
                .handle_batch(self.signal_buf, self.bcg, self.cache);
        }
    }
}

impl<'p> TraceVm<'p> {
    /// Assembles the system for a program.
    pub fn new(program: &'p Program, config: TraceJitConfig) -> Self {
        TraceVm {
            program,
            config,
            vm: Vm::with_config(program, config.vm),
            bcg: BranchCorrelationGraph::new(config.bcg_config()),
            constructor: TraceConstructor::new(config.constructor_config()),
            cache: TraceCache::new(),
            runtime: TraceRuntime::new(),
            signal_buf: Vec::new(),
        }
    }

    /// The program under execution.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The configuration in force.
    pub fn config(&self) -> &TraceJitConfig {
        &self.config
    }

    /// Read access to the profiler graph (e.g. for inspection examples).
    pub fn bcg(&self) -> &BranchCorrelationGraph {
        &self.bcg
    }

    /// Read access to the trace cache.
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// Executes the program and returns the combined report.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the interpreter.
    pub fn run(&mut self, args: &[Value]) -> Result<RunReport, VmError> {
        self.bcg.begin_stream();
        self.runtime.begin_stream();
        let result = {
            let mut observer = JitObserver {
                program: self.program,
                bcg: &mut self.bcg,
                constructor: &mut self.constructor,
                cache: &mut self.cache,
                runtime: &mut self.runtime,
                signal_buf: &mut self.signal_buf,
            };
            self.vm.run(args, &mut observer)?
        };
        self.runtime.finish_stream();
        Ok(RunReport {
            result,
            checksum: self.vm.checksum(),
            exec: self.vm.stats(),
            profiler: self.bcg.stats(),
            traces: self.runtime.stats(),
            constructor: self.constructor.stats(),
            cache: self.cache.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, FuncId, ProgramBuilder};
    use jvm_vm::NullObserver;

    /// sum(0..n) with a hot inner loop.
    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    /// A loop with an unpredictable branch inside (data-dependent).
    fn noisy_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        let x = b.alloc_local();
        b.iconst(0).store(acc);
        b.iconst(12345).store(x);
        let head = b.bind_new_label();
        let exit = b.new_label();
        let odd = b.new_label();
        let cont = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        // x = x * 1103515245 + 12345 (LCG); branch on bit 16.
        b.load(x)
            .iconst(1103515245)
            .imul()
            .iconst(12345)
            .iadd()
            .store(x);
        b.load(x)
            .iconst(16)
            .ishr()
            .iconst(1)
            .iand()
            .if_i(CmpOp::Ne, odd);
        b.load(acc).iconst(1).iadd().store(acc).goto(cont);
        b.bind(odd);
        b.load(acc).iconst(2).iadd().store(acc);
        b.bind(cont);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn trace_vm_result_matches_plain_vm() {
        let program = loop_program();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(500)], &mut NullObserver).unwrap();
        let mut tvm = TraceVm::new(&program, TraceJitConfig::paper_default());
        let report = tvm.run(&[Value::Int(500)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        assert_eq!(report.exec.block_dispatches, plain.stats().block_dispatches);
    }

    #[test]
    fn hot_loop_gets_high_coverage_and_completion() {
        let program = loop_program();
        let mut tvm = TraceVm::new(
            &program,
            TraceJitConfig::paper_default().with_start_delay(16),
        );
        let report = tvm.run(&[Value::Int(20_000)]).unwrap();
        assert!(report.cache.traces_constructed > 0, "loop must be traced");
        assert!(
            report.completion_rate() > 0.95,
            "completion {}",
            report.completion_rate()
        );
        assert!(
            report.coverage_completed() > 0.8,
            "coverage {}",
            report.coverage_completed()
        );
        assert!(report.avg_trace_length() >= 2.0);
    }

    #[test]
    fn noisy_branch_limits_trace_length_but_traces_still_complete() {
        let program = noisy_program();
        let mut tvm = TraceVm::new(
            &program,
            TraceJitConfig::paper_default().with_start_delay(16),
        );
        let report = tvm.run(&[Value::Int(50_000)]).unwrap();
        // Traces exist but cannot span the unpredictable branch, so the
        // completion rate of what *was* cached stays high.
        assert!(report.cache.traces_constructed > 0);
        assert!(
            report.completion_rate() > 0.9,
            "completion {}",
            report.completion_rate()
        );
    }

    #[test]
    fn trace_dispatch_reduces_dispatch_count() {
        let program = loop_program();
        let mut tvm = TraceVm::new(
            &program,
            TraceJitConfig::paper_default().with_start_delay(16),
        );
        let report = tvm.run(&[Value::Int(20_000)]).unwrap();
        let d = report.dispatch_counts();
        assert!(d.per_block < d.per_instruction);
        assert!(
            d.per_trace < d.per_block,
            "trace dispatch must reduce dispatches: {d:?}"
        );
        assert!(d.trace_over_block() > 1.5);
    }

    #[test]
    fn higher_threshold_means_no_lower_completion() {
        let program = noisy_program();
        let mut lo = TraceVm::new(
            &program,
            TraceJitConfig::paper_default()
                .with_threshold(0.90)
                .with_start_delay(4),
        );
        let mut hi = TraceVm::new(
            &program,
            TraceJitConfig::paper_default()
                .with_threshold(0.999)
                .with_start_delay(4),
        );
        let rl = lo.run(&[Value::Int(50_000)]).unwrap();
        let rh = hi.run(&[Value::Int(50_000)]).unwrap();
        if rl.traces.entered > 100 && rh.traces.entered > 100 {
            assert!(
                rh.completion_rate() >= rl.completion_rate() - 0.02,
                "higher threshold should not hurt completion: lo={} hi={}",
                rl.completion_rate(),
                rh.completion_rate()
            );
        }
    }

    #[test]
    fn large_delay_suppresses_tracing_of_short_runs() {
        let program = loop_program();
        let mut tvm = TraceVm::new(
            &program,
            TraceJitConfig::paper_default().with_start_delay(1 << 20),
        );
        let report = tvm.run(&[Value::Int(1_000)]).unwrap();
        assert_eq!(report.cache.traces_constructed, 0);
        assert_eq!(report.traces.entered, 0);
    }

    #[test]
    fn report_is_cumulative_across_runs() {
        let program = loop_program();
        let mut tvm = TraceVm::new(&program, TraceJitConfig::paper_default());
        let r1 = tvm.run(&[Value::Int(1_000)]).unwrap();
        let r2 = tvm.run(&[Value::Int(1_000)]).unwrap();
        assert!(r2.profiler.dispatches > r1.profiler.dispatches);
        // Second run reuses the warmed cache: more trace entries.
        assert!(r2.traces.entered >= r1.traces.entered);
    }

    #[test]
    fn accessors_expose_components() {
        let program = loop_program();
        let mut tvm = TraceVm::new(&program, TraceJitConfig::paper_default());
        let _ = tvm.run(&[Value::Int(5_000)]).unwrap();
        assert!(!tvm.bcg().is_empty());
        assert!(tvm.cache().trace_count() > 0);
        assert_eq!(tvm.config().threshold, 0.97);
        assert_eq!(tvm.program().entry(), FuncId(0));
    }
}

//! Runtime errors (the analogue of Java's runtime exceptions).

use std::error::Error;
use std::fmt;

use jvm_bytecode::FuncId;

/// A runtime trap.
///
/// Programs built through [`jvm_bytecode::ProgramBuilder`] are verified, so
/// structural errors cannot occur at runtime; what remains are the
/// data-dependent traps a JVM would throw as exceptions, plus resource
/// limits ([`VmError::OutOfFuel`], [`VmError::CallStackOverflow`]) that keep
/// experiment runs bounded.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Null dereference.
    NullPointer,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Negative array length at allocation.
    NegativeArrayLength {
        /// The requested length.
        len: i64,
    },
    /// A value had the wrong runtime type (possible because the verifier's
    /// `Any` admits statically unknown values).
    TypeError {
        /// What the instruction required.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// Field index out of range for the object's class.
    BadField {
        /// The offending field index.
        field: u16,
        /// Number of fields on the object.
        num_fields: u16,
    },
    /// The configured instruction budget was exhausted.
    OutOfFuel,
    /// The call stack exceeded the configured depth limit.
    CallStackOverflow,
    /// Wrong number or type of entry arguments.
    BadEntryArgs {
        /// The entry function.
        func: FuncId,
        /// Expected parameter count.
        expected: u16,
        /// Provided argument count.
        provided: usize,
    },
    /// Heap exhausted even after collection.
    OutOfMemory,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivisionByZero => write!(f, "integer division by zero"),
            VmError::NullPointer => write!(f, "null pointer dereference"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            VmError::NegativeArrayLength { len } => {
                write!(f, "negative array length {len}")
            }
            VmError::TypeError { expected, found } => {
                write!(f, "runtime type error: expected {expected}, found {found}")
            }
            VmError::BadField { field, num_fields } => {
                write!(
                    f,
                    "field {field} out of range for object with {num_fields} fields"
                )
            }
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::CallStackOverflow => write!(f, "call stack overflow"),
            VmError::BadEntryArgs {
                func,
                expected,
                provided,
            } => write!(
                f,
                "entry {func} expects {expected} arguments, {provided} provided"
            ),
            VmError::OutOfMemory => write!(f, "heap exhausted"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            VmError::DivisionByZero.to_string(),
            "integer division by zero"
        );
        assert!(VmError::IndexOutOfBounds { index: 5, len: 3 }
            .to_string()
            .contains("5"));
        assert!(VmError::BadEntryArgs {
            func: FuncId(1),
            expected: 2,
            provided: 0
        }
        .to_string()
        .contains("fn#1"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(VmError::OutOfFuel);
        assert!(e.source().is_none());
    }
}

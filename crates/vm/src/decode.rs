//! Pre-decoding: lowering verified bytecode to a flat threaded form.
//!
//! The classic interpreter pays, per instruction, a `match` over the full
//! [`Instr`] enum (16 bytes, niche-heavy), a `block_index_of` table load
//! plus `cur_block` compare for dispatch detection, and bounds-checked
//! `Vec` operand traffic. This module performs a **one-time decode pass**
//! that removes all of it from the hot loop:
//!
//! * every instruction becomes a fixed-width 8-byte [`DOp`] — dense `u8`
//!   opcode, `u16` slot/field operand, `u32` target/pool operand — so the
//!   dispatch `match` is a small-integer jump table;
//! * jump targets are resolved to absolute indices into the decoded
//!   stream;
//! * **block-entry markers** ([`op::ENTER_BLOCK`]) are baked into the
//!   stream at every basic-block start, so block-dispatch detection is an
//!   opcode case instead of a per-instruction `cur_block` comparison.
//!   Branches target the marker *preceding* their destination, which is
//!   what makes self-loops re-fire a dispatch every iteration — exactly
//!   the reference interpreter's `NO_BLOCK` sentinel semantics;
//! * call arities, callee field counts and intrinsic identities are
//!   pre-resolved into the operands;
//! * per-function **max operand-stack depth** is computed (the verifier's
//!   depth projection, [`jvm_bytecode::max_stack`]) so frames can live in
//!   fixed-size regions of a contiguous arena.
//!
//! The decoded stream is *per-program*: constants and switch tables live
//! in program-global pools so decoded fragments from different functions
//! can be mixed (the trace engine lowers compiled traces to the same
//! form).

use std::collections::HashMap;

use jvm_bytecode::{max_stack, CmpOp, FuncId, Instr, Intrinsic, Program};

/// Decoded opcodes: dense `u8` values so the interpreter loop compiles to
/// a jump table. Conditional branches get one opcode **per comparison**
/// (base + [`CMP_ORDER`] offset) so no second decode of a `CmpOp` happens
/// at run time; intrinsics likewise get an opcode each.
pub mod op {
    /// Block-entry marker: fires a dispatch event; costs no fuel.
    pub const ENTER_BLOCK: u8 = 0;
    /// Push integer constant `iconsts[b]`.
    pub const ICONST: u8 = 1;
    /// Push float constant `fconsts[b]`.
    pub const FCONST: u8 = 2;
    /// Push null.
    pub const CONST_NULL: u8 = 3;
    /// Duplicate top of stack.
    pub const DUP: u8 = 4;
    /// Duplicate top two slots.
    pub const DUP2: u8 = 5;
    /// Discard top of stack.
    pub const POP: u8 = 6;
    /// Swap top two slots.
    pub const SWAP: u8 = 7;
    /// Push local `a`.
    pub const LOAD: u8 = 8;
    /// Pop into local `a`.
    pub const STORE: u8 = 9;
    /// Add `b as i32` to integer local `a`.
    pub const IINC: u8 = 10;
    /// Integer add.
    pub const IADD: u8 = 11;
    /// Integer subtract.
    pub const ISUB: u8 = 12;
    /// Integer multiply.
    pub const IMUL: u8 = 13;
    /// Integer divide.
    pub const IDIV: u8 = 14;
    /// Integer remainder.
    pub const IREM: u8 = 15;
    /// Integer negate.
    pub const INEG: u8 = 16;
    /// Shift left.
    pub const ISHL: u8 = 17;
    /// Arithmetic shift right.
    pub const ISHR: u8 = 18;
    /// Logical shift right.
    pub const IUSHR: u8 = 19;
    /// Bitwise and.
    pub const IAND: u8 = 20;
    /// Bitwise or.
    pub const IOR: u8 = 21;
    /// Bitwise xor.
    pub const IXOR: u8 = 22;
    /// Float add.
    pub const FADD: u8 = 23;
    /// Float subtract.
    pub const FSUB: u8 = 24;
    /// Float multiply.
    pub const FMUL: u8 = 25;
    /// Float divide.
    pub const FDIV: u8 = 26;
    /// Float negate.
    pub const FNEG: u8 = 27;
    /// Int to float.
    pub const I2F: u8 = 28;
    /// Float to int.
    pub const F2I: u8 = 29;
    /// `if_icmp eq` (first of six consecutive comparison opcodes).
    pub const IF_ICMP_EQ: u8 = 30;
    /// `if_icmp ge` (last of the six).
    pub const IF_ICMP_GE: u8 = 35;
    /// `if eq` against zero (first of six).
    pub const IF_I_EQ: u8 = 36;
    /// `if ge` against zero (last of six).
    pub const IF_I_GE: u8 = 41;
    /// `if_fcmp eq` (first of six).
    pub const IF_FCMP_EQ: u8 = 42;
    /// `if_fcmp ge` (last of six).
    pub const IF_FCMP_GE: u8 = 47;
    /// Branch if null.
    pub const IF_NULL: u8 = 48;
    /// Branch if non-null.
    pub const IF_NON_NULL: u8 = 49;
    /// Unconditional branch to `b`.
    pub const GOTO: u8 = 50;
    /// Multi-way branch through `switches[b]`.
    pub const TABLE_SWITCH: u8 = 51;
    /// Call function `b` with `a` pre-resolved arguments.
    pub const INVOKE_STATIC: u8 = 52;
    /// Call vtable slot `a` with `b` arguments (incl. receiver).
    pub const INVOKE_VIRTUAL: u8 = 53;
    /// Return top of stack.
    pub const RETURN: u8 = 54;
    /// Return void.
    pub const RETURN_VOID: u8 = 55;
    /// Allocate class `b` with `a` pre-resolved fields.
    pub const NEW: u8 = 56;
    /// Push field `a` of popped object.
    pub const GET_FIELD: u8 = 57;
    /// Store popped value into field `a` of popped object.
    pub const PUT_FIELD: u8 = 58;
    /// Allocate array of popped length.
    pub const NEW_ARRAY: u8 = 59;
    /// Array element load.
    pub const ALOAD: u8 = 60;
    /// Array element store.
    pub const ASTORE: u8 = 61;
    /// Array length.
    pub const ARRAY_LEN: u8 = 62;
    /// No-op.
    pub const NOP: u8 = 63;
    /// `sqrt` intrinsic (intrinsics are one opcode each, in
    /// [`super::INTRINSIC_ORDER`] order).
    pub const SQRT: u8 = 64;
    /// `sin` intrinsic.
    pub const SIN: u8 = 65;
    /// `cos` intrinsic.
    pub const COS: u8 = 66;
    /// `exp` intrinsic.
    pub const EXP: u8 = 67;
    /// `log` intrinsic.
    pub const LOG: u8 = 68;
    /// `fabs` intrinsic.
    pub const ABS_F: u8 = 69;
    /// `iabs` intrinsic.
    pub const ABS_I: u8 = 70;
    /// `imin` intrinsic.
    pub const MIN_I: u8 = 71;
    /// `imax` intrinsic.
    pub const MAX_I: u8 = 72;
    /// `print_i` intrinsic.
    pub const PRINT_INT: u8 = 73;
    /// `print_f` intrinsic.
    pub const PRINT_FLOAT: u8 = 74;
    /// `checksum` intrinsic.
    pub const CHECKSUM: u8 = 75;
}

/// Comparison opcodes are laid out `base + index_in(CMP_ORDER)`.
pub const CMP_ORDER: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// Intrinsic opcodes are laid out `op::SQRT + index_in(INTRINSIC_ORDER)`.
pub const INTRINSIC_ORDER: [Intrinsic; 12] = [
    Intrinsic::Sqrt,
    Intrinsic::Sin,
    Intrinsic::Cos,
    Intrinsic::Exp,
    Intrinsic::Log,
    Intrinsic::AbsF,
    Intrinsic::AbsI,
    Intrinsic::MinI,
    Intrinsic::MaxI,
    Intrinsic::PrintInt,
    Intrinsic::PrintFloat,
    Intrinsic::Checksum,
];

/// Offset of a comparison within [`CMP_ORDER`].
#[inline]
pub fn cmp_offset(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// Evaluates comparison offset `rel` (0..6, [`CMP_ORDER`] order) on ints.
#[inline]
pub fn eval_i_rel(rel: u8, a: i64, b: i64) -> bool {
    match rel {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => a <= b,
        4 => a > b,
        _ => a >= b,
    }
}

/// Evaluates comparison offset `rel` on floats (IEEE semantics).
#[inline]
pub fn eval_f_rel(rel: u8, a: f64, b: f64) -> bool {
    match rel {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => a <= b,
        4 => a > b,
        _ => a >= b,
    }
}

/// One decoded operation: 8 bytes, fixed width.
///
/// Operand meaning depends on the opcode (see [`op`]): `a` carries small
/// pre-resolved quantities (local slot, field index, argument count),
/// `b` carries decoded branch targets, pool indices, or ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DOp {
    /// Dense opcode.
    pub op: u8,
    /// Small operand (slot / field / argc).
    pub a: u16,
    /// Wide operand (decoded target / pool index / id).
    pub b: u32,
}

impl DOp {
    /// Shorthand constructor.
    #[inline]
    pub fn new(op: u8, a: u16, b: u32) -> Self {
        DOp { op, a, b }
    }
}

/// A decoded `tableswitch`: jump table with **decoded** targets (each
/// pointing at the destination block's entry marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DSwitch {
    /// Selector value mapped to `targets[0]`.
    pub low: i64,
    /// Decoded jump table.
    pub targets: Vec<u32>,
    /// Decoded default target.
    pub default: u32,
}

/// One function lowered to the flat decoded form.
#[derive(Debug, Clone)]
pub struct DecodedFunction {
    /// Decoded stream: block-entry markers interleaved with instructions.
    pub code: Vec<DOp>,
    /// Original pc → decoded index of that instruction. The marker of a
    /// block start `pc` sits at `pc_map[pc] - 1`.
    pub pc_map: Vec<u32>,
    /// Decoded index → containing block index (markers belong to the
    /// block they open).
    pub block_of: Vec<u32>,
    /// Parameter count.
    pub num_params: u16,
    /// Local slot count (parameters first).
    pub num_locals: u16,
    /// Verifier-derived maximum operand-stack depth.
    pub max_stack: u32,
    /// Arena region size: `num_locals + max_stack`.
    pub frame_size: u32,
}

impl DecodedFunction {
    /// Decoded index of the entry marker of block `block`.
    #[inline]
    pub fn block_entry(&self, start_pc: u32) -> u32 {
        self.pc_map[start_pc as usize] - 1
    }
}

/// A whole program in decoded form, with program-global pools.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Per-function decoded streams, indexed by [`FuncId`].
    pub funcs: Vec<DecodedFunction>,
    /// Integer constant pool (deduplicated).
    pub iconsts: Vec<i64>,
    /// Float constant pool (deduplicated by bit pattern).
    pub fconsts: Vec<f64>,
    /// Switch table pool.
    pub switches: Vec<DSwitch>,
}

/// Byte-footprint breakdown of a [`DecodedProgram`], for memory
/// reporting (real `Vec` capacities, matching the profiler's accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodedMemory {
    /// Decoded opcode streams.
    pub code_bytes: usize,
    /// pc maps + block maps.
    pub map_bytes: usize,
    /// Constant and switch pools.
    pub pool_bytes: usize,
}

impl DecodedMemory {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.code_bytes + self.map_bytes + self.pool_bytes
    }
}

/// The decoder: one pass per function.
struct Decoder<'p> {
    program: &'p Program,
    iconsts: Vec<i64>,
    icmap: HashMap<i64, u32>,
    fconsts: Vec<f64>,
    fcmap: HashMap<u64, u32>,
    switches: Vec<DSwitch>,
}

impl<'p> Decoder<'p> {
    fn intern_i(&mut self, v: i64) -> u32 {
        if let Some(&i) = self.icmap.get(&v) {
            return i;
        }
        let i = self.iconsts.len() as u32;
        self.iconsts.push(v);
        self.icmap.insert(v, i);
        i
    }

    fn intern_f(&mut self, v: f64) -> u32 {
        if let Some(&i) = self.fcmap.get(&v.to_bits()) {
            return i;
        }
        let i = self.fconsts.len() as u32;
        self.fconsts.push(v);
        self.fcmap.insert(v.to_bits(), i);
        i
    }

    fn decode_function(&mut self, id: FuncId) -> DecodedFunction {
        let func = self.program.function(id);
        let code = func.code();
        let n = code.len();

        // Closed-form decoded layout: one marker before each block, so an
        // instruction at `pc` inside block `bi` lands at `pc + bi + 1`,
        // and a branch target `t` (always a block start) resolves to its
        // marker at `t + block_of(t)`.
        let pc_map: Vec<u32> = (0..n as u32)
            .map(|pc| pc + func.block_index_of(pc) + 1)
            .collect();
        let marker_of = |t: u32| t + func.block_index_of(t);

        let mut out: Vec<DOp> = Vec::with_capacity(n + func.block_count());
        let mut block_of: Vec<u32> = Vec::with_capacity(n + func.block_count());
        for (pc, ins) in code.iter().enumerate() {
            let bi = func.block_index_of(pc as u32);
            if func.block(bi).start == pc as u32 {
                out.push(DOp::new(op::ENTER_BLOCK, 0, bi));
                block_of.push(bi);
            }
            debug_assert_eq!(out.len() as u32, pc_map[pc]);
            out.push(self.decode_instr(ins, marker_of));
            block_of.push(bi);
        }

        let max_stack = max_stack(self.program, id);
        DecodedFunction {
            code: out,
            pc_map,
            block_of,
            num_params: func.num_params(),
            num_locals: func.num_locals(),
            max_stack,
            frame_size: u32::from(func.num_locals()) + max_stack,
        }
    }

    fn decode_instr(&mut self, ins: &Instr, marker_of: impl Fn(u32) -> u32) -> DOp {
        match ins {
            Instr::IConst(v) => DOp::new(op::ICONST, 0, self.intern_i(*v)),
            Instr::FConst(v) => DOp::new(op::FCONST, 0, self.intern_f(*v)),
            Instr::ConstNull => DOp::new(op::CONST_NULL, 0, 0),
            Instr::Dup => DOp::new(op::DUP, 0, 0),
            Instr::Dup2 => DOp::new(op::DUP2, 0, 0),
            Instr::Pop => DOp::new(op::POP, 0, 0),
            Instr::Swap => DOp::new(op::SWAP, 0, 0),
            Instr::Load(s) => DOp::new(op::LOAD, *s, 0),
            Instr::Store(s) => DOp::new(op::STORE, *s, 0),
            Instr::IInc(s, d) => DOp::new(op::IINC, *s, *d as u32),
            Instr::IAdd => DOp::new(op::IADD, 0, 0),
            Instr::ISub => DOp::new(op::ISUB, 0, 0),
            Instr::IMul => DOp::new(op::IMUL, 0, 0),
            Instr::IDiv => DOp::new(op::IDIV, 0, 0),
            Instr::IRem => DOp::new(op::IREM, 0, 0),
            Instr::INeg => DOp::new(op::INEG, 0, 0),
            Instr::IShl => DOp::new(op::ISHL, 0, 0),
            Instr::IShr => DOp::new(op::ISHR, 0, 0),
            Instr::IUShr => DOp::new(op::IUSHR, 0, 0),
            Instr::IAnd => DOp::new(op::IAND, 0, 0),
            Instr::IOr => DOp::new(op::IOR, 0, 0),
            Instr::IXor => DOp::new(op::IXOR, 0, 0),
            Instr::FAdd => DOp::new(op::FADD, 0, 0),
            Instr::FSub => DOp::new(op::FSUB, 0, 0),
            Instr::FMul => DOp::new(op::FMUL, 0, 0),
            Instr::FDiv => DOp::new(op::FDIV, 0, 0),
            Instr::FNeg => DOp::new(op::FNEG, 0, 0),
            Instr::I2F => DOp::new(op::I2F, 0, 0),
            Instr::F2I => DOp::new(op::F2I, 0, 0),
            Instr::IfICmp(c, t) => DOp::new(op::IF_ICMP_EQ + cmp_offset(*c), 0, marker_of(*t)),
            Instr::IfI(c, t) => DOp::new(op::IF_I_EQ + cmp_offset(*c), 0, marker_of(*t)),
            Instr::IfFCmp(c, t) => DOp::new(op::IF_FCMP_EQ + cmp_offset(*c), 0, marker_of(*t)),
            Instr::IfNull(t) => DOp::new(op::IF_NULL, 0, marker_of(*t)),
            Instr::IfNonNull(t) => DOp::new(op::IF_NON_NULL, 0, marker_of(*t)),
            Instr::Goto(t) => DOp::new(op::GOTO, 0, marker_of(*t)),
            Instr::TableSwitch {
                low,
                targets,
                default,
            } => {
                let sw = DSwitch {
                    low: *low,
                    targets: targets.iter().map(|&t| marker_of(t)).collect(),
                    default: marker_of(*default),
                };
                let idx = self.switches.len() as u32;
                self.switches.push(sw);
                DOp::new(op::TABLE_SWITCH, 0, idx)
            }
            Instr::InvokeStatic(callee) => {
                let argc = self.program.function(*callee).num_params();
                DOp::new(op::INVOKE_STATIC, argc, callee.0)
            }
            Instr::InvokeVirtual { slot, argc } => {
                DOp::new(op::INVOKE_VIRTUAL, *slot, u32::from(*argc))
            }
            Instr::Return => DOp::new(op::RETURN, 0, 0),
            Instr::ReturnVoid => DOp::new(op::RETURN_VOID, 0, 0),
            Instr::New(class) => {
                let nf = self.program.class(*class).num_fields();
                DOp::new(op::NEW, nf, class.0)
            }
            Instr::GetField(n) => DOp::new(op::GET_FIELD, *n, 0),
            Instr::PutField(n) => DOp::new(op::PUT_FIELD, *n, 0),
            Instr::NewArray => DOp::new(op::NEW_ARRAY, 0, 0),
            Instr::ALoad => DOp::new(op::ALOAD, 0, 0),
            Instr::AStore => DOp::new(op::ASTORE, 0, 0),
            Instr::ArrayLen => DOp::new(op::ARRAY_LEN, 0, 0),
            Instr::Intrinsic(i) => {
                let off = INTRINSIC_ORDER
                    .iter()
                    .position(|x| x == i)
                    .expect("all intrinsics are in INTRINSIC_ORDER")
                    as u8;
                DOp::new(op::SQRT + off, 0, 0)
            }
            Instr::Nop => DOp::new(op::NOP, 0, 0),
        }
    }
}

impl DecodedProgram {
    /// Lowers a verified program. One-time cost, outside the hot loop.
    pub fn decode(program: &Program) -> Self {
        let mut d = Decoder {
            program,
            iconsts: Vec::new(),
            icmap: HashMap::new(),
            fconsts: Vec::new(),
            fcmap: HashMap::new(),
            switches: Vec::new(),
        };
        let funcs = program
            .functions()
            .iter()
            .map(|f| d.decode_function(f.id()))
            .collect();
        DecodedProgram {
            funcs,
            iconsts: d.iconsts,
            fconsts: d.fconsts,
            switches: d.switches,
        }
    }

    /// The decoded form of a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &DecodedFunction {
        &self.funcs[id.index()]
    }

    /// Interns an integer constant into the pool after decoding (used by
    /// the trace engine when lowering compiled traces, whose optimizer may
    /// invent constants the original program never mentioned). Linear
    /// scan: lowering is a cold path and pools stay small.
    pub fn intern_iconst(&mut self, v: i64) -> u32 {
        if let Some(i) = self.iconsts.iter().position(|&x| x == v) {
            return i as u32;
        }
        self.iconsts.push(v);
        (self.iconsts.len() - 1) as u32
    }

    /// Interns a float constant (by bit pattern, so NaNs dedupe too).
    pub fn intern_fconst(&mut self, v: f64) -> u32 {
        if let Some(i) = self
            .fconsts
            .iter()
            .position(|&x| x.to_bits() == v.to_bits())
        {
            return i as u32;
        }
        self.fconsts.push(v);
        (self.fconsts.len() - 1) as u32
    }

    /// Encodes one **straight-line** (branch-free, call-free) instruction
    /// against this program's pools, interning constants as needed.
    /// Returns `None` for control instructions — their targets need a
    /// function context and already exist in the decoded streams.
    pub fn encode_straightline(&mut self, program: &Program, ins: &Instr) -> Option<DOp> {
        Some(match ins {
            Instr::IConst(v) => DOp::new(op::ICONST, 0, self.intern_iconst(*v)),
            Instr::FConst(v) => DOp::new(op::FCONST, 0, self.intern_fconst(*v)),
            Instr::ConstNull => DOp::new(op::CONST_NULL, 0, 0),
            Instr::Dup => DOp::new(op::DUP, 0, 0),
            Instr::Dup2 => DOp::new(op::DUP2, 0, 0),
            Instr::Pop => DOp::new(op::POP, 0, 0),
            Instr::Swap => DOp::new(op::SWAP, 0, 0),
            Instr::Load(s) => DOp::new(op::LOAD, *s, 0),
            Instr::Store(s) => DOp::new(op::STORE, *s, 0),
            Instr::IInc(s, d) => DOp::new(op::IINC, *s, *d as u32),
            Instr::IAdd => DOp::new(op::IADD, 0, 0),
            Instr::ISub => DOp::new(op::ISUB, 0, 0),
            Instr::IMul => DOp::new(op::IMUL, 0, 0),
            Instr::IDiv => DOp::new(op::IDIV, 0, 0),
            Instr::IRem => DOp::new(op::IREM, 0, 0),
            Instr::INeg => DOp::new(op::INEG, 0, 0),
            Instr::IShl => DOp::new(op::ISHL, 0, 0),
            Instr::IShr => DOp::new(op::ISHR, 0, 0),
            Instr::IUShr => DOp::new(op::IUSHR, 0, 0),
            Instr::IAnd => DOp::new(op::IAND, 0, 0),
            Instr::IOr => DOp::new(op::IOR, 0, 0),
            Instr::IXor => DOp::new(op::IXOR, 0, 0),
            Instr::FAdd => DOp::new(op::FADD, 0, 0),
            Instr::FSub => DOp::new(op::FSUB, 0, 0),
            Instr::FMul => DOp::new(op::FMUL, 0, 0),
            Instr::FDiv => DOp::new(op::FDIV, 0, 0),
            Instr::FNeg => DOp::new(op::FNEG, 0, 0),
            Instr::I2F => DOp::new(op::I2F, 0, 0),
            Instr::F2I => DOp::new(op::F2I, 0, 0),
            Instr::New(class) => {
                let nf = program.class(*class).num_fields();
                DOp::new(op::NEW, nf, class.0)
            }
            Instr::GetField(n) => DOp::new(op::GET_FIELD, *n, 0),
            Instr::PutField(n) => DOp::new(op::PUT_FIELD, *n, 0),
            Instr::NewArray => DOp::new(op::NEW_ARRAY, 0, 0),
            Instr::ALoad => DOp::new(op::ALOAD, 0, 0),
            Instr::AStore => DOp::new(op::ASTORE, 0, 0),
            Instr::ArrayLen => DOp::new(op::ARRAY_LEN, 0, 0),
            Instr::Intrinsic(i) => {
                let off = INTRINSIC_ORDER
                    .iter()
                    .position(|x| x == i)
                    .expect("all intrinsics are in INTRINSIC_ORDER")
                    as u8;
                DOp::new(op::SQRT + off, 0, 0)
            }
            Instr::Nop => DOp::new(op::NOP, 0, 0),
            Instr::IfICmp(..)
            | Instr::IfI(..)
            | Instr::IfFCmp(..)
            | Instr::IfNull(..)
            | Instr::IfNonNull(..)
            | Instr::Goto(..)
            | Instr::TableSwitch { .. }
            | Instr::InvokeStatic(..)
            | Instr::InvokeVirtual { .. }
            | Instr::Return
            | Instr::ReturnVoid => return None,
        })
    }

    /// Read-only variant of [`Self::encode_straightline`]: encodes a
    /// straight-line instruction **without interning**, returning `None`
    /// if the instruction is control flow *or* mentions a constant the
    /// pools do not already hold.
    ///
    /// The decode pass is deterministic, so two `DecodedProgram`s decoded
    /// from the same program have byte-identical pools and streams. A
    /// `DOp` produced read-only against one copy is therefore valid
    /// against *every* copy — which is what lets a shared trace cache
    /// lower traces once, on a constructor thread, and hand the artifact
    /// to many VMs that each own a private decoded copy. Only optimizer-
    /// invented constants (absent from the original program) fail here.
    pub fn encode_straightline_frozen(&self, program: &Program, ins: &Instr) -> Option<DOp> {
        match ins {
            Instr::IConst(v) => {
                let i = self.iconsts.iter().position(|x| x == v)?;
                Some(DOp::new(op::ICONST, 0, i as u32))
            }
            Instr::FConst(v) => {
                let i = self
                    .fconsts
                    .iter()
                    .position(|x| x.to_bits() == v.to_bits())?;
                Some(DOp::new(op::FCONST, 0, i as u32))
            }
            _ => {
                // Every other straight-line shape touches no pool; the
                // mutable encoder is pure for them. (It can intern only
                // via the two constant arms handled above.)
                let mut probe = Self {
                    funcs: Vec::new(),
                    iconsts: Vec::new(),
                    fconsts: Vec::new(),
                    switches: Vec::new(),
                };
                probe.encode_straightline(program, ins)
            }
        }
    }

    /// Real byte footprint (capacities, not lengths).
    pub fn memory_estimate(&self) -> DecodedMemory {
        let mut m = DecodedMemory::default();
        for f in &self.funcs {
            m.code_bytes += f.code.capacity() * std::mem::size_of::<DOp>();
            m.map_bytes += (f.pc_map.capacity() + f.block_of.capacity()) * 4;
        }
        m.pool_bytes += self.iconsts.capacity() * 8 + self.fconsts.capacity() * 8;
        for sw in &self.switches {
            m.pool_bytes += std::mem::size_of::<DSwitch>() + sw.targets.capacity() * 4;
        }
        m
    }

    /// Renders one decoded operation (used by the decoded golden test and
    /// debugging).
    pub fn dop_to_string(&self, d: &DOp) -> String {
        let cmp = |base: u8| CMP_ORDER[(d.op - base) as usize];
        match d.op {
            op::ENTER_BLOCK => format!("enter_block b{}", d.b),
            op::ICONST => format!("iconst {}", self.iconsts[d.b as usize]),
            op::FCONST => format!("fconst {}", self.fconsts[d.b as usize]),
            op::CONST_NULL => "const_null".into(),
            op::DUP => "dup".into(),
            op::DUP2 => "dup2".into(),
            op::POP => "pop".into(),
            op::SWAP => "swap".into(),
            op::LOAD => format!("load {}", d.a),
            op::STORE => format!("store {}", d.a),
            op::IINC => format!("iinc {}, {}", d.a, d.b as i32),
            op::IADD => "iadd".into(),
            op::ISUB => "isub".into(),
            op::IMUL => "imul".into(),
            op::IDIV => "idiv".into(),
            op::IREM => "irem".into(),
            op::INEG => "ineg".into(),
            op::ISHL => "ishl".into(),
            op::ISHR => "ishr".into(),
            op::IUSHR => "iushr".into(),
            op::IAND => "iand".into(),
            op::IOR => "ior".into(),
            op::IXOR => "ixor".into(),
            op::FADD => "fadd".into(),
            op::FSUB => "fsub".into(),
            op::FMUL => "fmul".into(),
            op::FDIV => "fdiv".into(),
            op::FNEG => "fneg".into(),
            op::I2F => "i2f".into(),
            op::F2I => "f2i".into(),
            op::IF_ICMP_EQ..=op::IF_ICMP_GE => {
                format!("if_icmp {} -> {}", cmp(op::IF_ICMP_EQ), d.b)
            }
            op::IF_I_EQ..=op::IF_I_GE => format!("if {} -> {}", cmp(op::IF_I_EQ), d.b),
            op::IF_FCMP_EQ..=op::IF_FCMP_GE => {
                format!("if_fcmp {} -> {}", cmp(op::IF_FCMP_EQ), d.b)
            }
            op::IF_NULL => format!("if_null -> {}", d.b),
            op::IF_NON_NULL => format!("if_nonnull -> {}", d.b),
            op::GOTO => format!("goto -> {}", d.b),
            op::TABLE_SWITCH => {
                let sw = &self.switches[d.b as usize];
                let ts: Vec<String> = sw.targets.iter().map(|t| t.to_string()).collect();
                format!(
                    "tableswitch low={} [{}] default -> {}",
                    sw.low,
                    ts.join(", "),
                    sw.default
                )
            }
            op::INVOKE_STATIC => format!("invokestatic fn#{} argc={}", d.b, d.a),
            op::INVOKE_VIRTUAL => format!("invokevirtual slot={} argc={}", d.a, d.b),
            op::RETURN => "return".into(),
            op::RETURN_VOID => "return_void".into(),
            op::NEW => format!("new class#{} fields={}", d.b, d.a),
            op::GET_FIELD => format!("getfield {}", d.a),
            op::PUT_FIELD => format!("putfield {}", d.a),
            op::NEW_ARRAY => "newarray".into(),
            op::ALOAD => "aload".into(),
            op::ASTORE => "astore".into(),
            op::ARRAY_LEN => "arraylen".into(),
            op::NOP => "nop".into(),
            op::SQRT..=op::CHECKSUM => {
                format!("{}", INTRINSIC_ORDER[(d.op - op::SQRT) as usize])
            }
            other if crate::fuse::is_fused(other) => {
                let desc = crate::fuse::desc_for(other);
                let head = DOp::new(crate::fuse::base_op(other), d.a, d.b);
                format!("{{{}}} {}", desc.name, self.dop_to_string(&head))
            }
            other => format!("?op{other}"),
        }
    }

    /// `javap`-style listing of the decoded form, for golden tests.
    pub fn disassemble(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for func in program.functions() {
            let df = self.func(func.id());
            let _ = writeln!(
                out,
                "fn {} ({}) params={} locals={} max_stack={} frame={}",
                func.name(),
                func.id(),
                df.num_params,
                df.num_locals,
                df.max_stack,
                df.frame_size
            );
            for (i, d) in df.code.iter().enumerate() {
                let _ = writeln!(out, "  {i:4}: {}", self.dop_to_string(d));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::ProgramBuilder;

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn dop_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<DOp>(), 8);
    }

    #[test]
    fn frozen_encoding_matches_mutable_and_refuses_novel_constants() {
        let p = loop_program();
        let mut d = DecodedProgram::decode(&p);
        // Pooled constant and pool-free shapes agree with the interner.
        for ins in [Instr::IConst(0), Instr::IAdd, Instr::Load(0), Instr::Dup] {
            let frozen = d.encode_straightline_frozen(&p, &ins);
            assert_eq!(frozen, d.encode_straightline(&p, &ins), "{ins:?}");
            assert!(frozen.is_some(), "{ins:?}");
        }
        // Control flow refuses, as in the mutable encoder.
        assert!(d.encode_straightline_frozen(&p, &Instr::Goto(0)).is_none());
        // A constant the program never mentioned cannot be encoded
        // read-only — and the attempt must not grow the pools.
        let pool = d.iconsts.clone();
        assert!(d
            .encode_straightline_frozen(&p, &Instr::IConst(424_242))
            .is_none());
        assert_eq!(d.iconsts, pool);
        // Decode determinism: two copies have identical pools, so a DOp
        // encoded against one indexes the same constant in the other.
        let d2 = DecodedProgram::decode(&p);
        assert_eq!(d.iconsts, d2.iconsts);
        assert_eq!(d.fconsts, d2.fconsts);
        let dop = d.encode_straightline_frozen(&p, &Instr::IConst(0)).unwrap();
        assert_eq!(d2.iconsts[dop.b as usize], 0);
    }

    #[test]
    fn every_block_start_has_a_marker() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        let func = p.function(p.entry());
        let df = d.func(p.entry());
        assert_eq!(
            df.code.len(),
            func.code().len() + func.block_count(),
            "one marker per block"
        );
        for bi in 0..func.block_count() as u32 {
            let start = func.block(bi).start;
            let marker = df.block_entry(start);
            assert_eq!(df.code[marker as usize], DOp::new(op::ENTER_BLOCK, 0, bi));
            assert_eq!(df.block_of[marker as usize], bi);
        }
    }

    #[test]
    fn branch_targets_point_at_markers() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        let df = d.func(p.entry());
        for dop in &df.code {
            if (op::IF_ICMP_EQ..=op::GOTO).contains(&dop.op) {
                assert_eq!(
                    df.code[dop.b as usize].op,
                    op::ENTER_BLOCK,
                    "decoded branch target must be a block marker"
                );
            }
        }
    }

    #[test]
    fn pc_map_projects_one_to_one() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        let func = p.function(p.entry());
        let df = d.func(p.entry());
        for (pc, ins) in func.code().iter().enumerate() {
            let dop = df.code[df.pc_map[pc] as usize];
            assert_ne!(dop.op, op::ENTER_BLOCK, "pc {pc} maps to {ins:?}");
            assert_eq!(
                df.block_of[df.pc_map[pc] as usize],
                func.block_index_of(pc as u32)
            );
        }
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .iconst(7)
            .iconst(7)
            .iadd()
            .iconst(7)
            .iadd()
            .ret();
        let p = pb.build(f).unwrap();
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.iconsts, vec![7]);
    }

    #[test]
    fn switch_targets_are_decoded() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let c0 = b.new_label();
            let dfl = b.new_label();
            b.load(0).table_switch(0, &[c0], dfl);
            b.bind(c0);
            b.iconst(1).ret();
            b.bind(dfl);
            b.iconst(2).ret();
        }
        let p = pb.build(f).unwrap();
        let d = DecodedProgram::decode(&p);
        let df = d.func(p.entry());
        assert_eq!(d.switches.len(), 1);
        let sw = &d.switches[0];
        for &t in sw.targets.iter().chain(std::iter::once(&sw.default)) {
            assert_eq!(df.code[t as usize].op, op::ENTER_BLOCK);
        }
    }

    #[test]
    fn calls_carry_preresolved_arity() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare_function("leaf", 2, true);
        pb.function_mut(leaf).load(0).load(1).iadd().ret();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .invoke_static(leaf)
            .ret();
        let p = pb.build(f).unwrap();
        let d = DecodedProgram::decode(&p);
        let df = d.func(f);
        let call = df.code.iter().find(|x| x.op == op::INVOKE_STATIC).unwrap();
        assert_eq!(call.a, 2);
        assert_eq!(call.b, leaf.0);
    }

    #[test]
    fn memory_estimate_is_nonzero_and_bounded() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        let m = d.memory_estimate();
        assert!(m.code_bytes > 0);
        assert!(m.total() >= m.code_bytes + m.map_bytes);
        assert!(m.total() < 64 * 1024, "tiny program, tiny footprint");
    }

    #[test]
    fn disassembly_mentions_markers_and_targets() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        let text = d.disassemble(&p);
        assert!(text.contains("enter_block b0"));
        assert!(text.contains("goto ->"));
        assert!(text.contains("max_stack="));
    }
}

//! # jvm-vm
//!
//! A stack-based interpreter for [`jvm_bytecode`] programs with
//! **basic-block dispatch accounting**, the execution substrate for the
//! trace-cache reproduction.
//!
//! The paper's SableVM baseline is a *direct-threaded-inlining* interpreter
//! (Piumarta & Riccardi): each basic block is inlined into one straight
//! run of native code ending in dispatch code, so the interpreter performs
//! exactly **one dispatch per basic block executed** (Figure 2 of the
//! paper), versus one per instruction for a plain interpreter (Figure 1).
//! This VM models that cost structure: it executes instructions with a
//! `match` dispatch loop, counts every instruction executed (the Figure 1
//! dispatch count) and every basic-block entry (the Figure 2 dispatch
//! count), and reports both in [`ExecStats`].
//!
//! Every basic-block entry is also surfaced through the
//! [`DispatchObserver`] hook — this is where the paper's profiler attaches
//! ("the profiler works by augmenting the dispatch code", §4).
//!
//! # Example
//!
//! ```
//! use jvm_bytecode::ProgramBuilder;
//! use jvm_vm::{Vm, Value, NullObserver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! let f = pb.declare_function("add", 2, true);
//! pb.function_mut(f).load(0).load(1).iadd().ret();
//! let program = pb.build(f)?;
//!
//! let mut vm = Vm::new(&program);
//! let result = vm.run(&[Value::Int(2), Value::Int(40)], &mut NullObserver)?;
//! assert_eq!(result, Some(Value::Int(42)));
//! assert_eq!(vm.stats().block_dispatches, 1);
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod decode;
pub mod dispatch;
pub mod error;
pub mod frame;
pub mod fuse;
pub mod heap;
pub mod interp;
pub mod observer;
pub mod reference;
pub mod stats;
pub mod value;

pub use arena::{FrameArena, FrameInfo};
pub use decode::{DOp, DecodedFunction, DecodedMemory, DecodedProgram};
pub use dispatch::DispatchCounts;
pub use error::VmError;
pub use fuse::{BlockCounts, FuseQuirk, FusionConfig, FusionPlan, FusionProfile, FusionReport};
pub use heap::{Heap, HeapObj};
pub use interp::{fold_checksum, Vm, VmConfig};
pub use observer::{DispatchObserver, NullObserver, RecordingObserver};
pub use reference::ReferenceVm;
pub use stats::ExecStats;
pub use value::{OutputItem, RefId, Value};

//! The dispatch hook.
//!
//! In the paper the profiler is woven into the dispatch code appended to
//! every inlined basic block (§4.1.2): the interpreter executes a small
//! profiling stub once per block dispatch. [`DispatchObserver::on_block`]
//! is that stub's seam — the profiler, the trace-dispatch monitor, and the
//! baseline selectors all attach here.

use jvm_bytecode::BlockId;

/// Receives one callback per basic-block dispatch, in execution order.
///
/// The observer sees the *complete* dynamic block stream, including entry
/// blocks of callees and the continuation blocks after returns, which is
/// what lets traces "seamlessly cross basic block and method boundaries"
/// (paper §1).
pub trait DispatchObserver {
    /// Called when the interpreter dispatches (enters) `block`.
    fn on_block(&mut self, block: BlockId);
}

/// An observer that ignores every event; use it to measure the
/// unprofiled interpreter (the "No Profiler" column of Table VI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl DispatchObserver for NullObserver {
    #[inline]
    fn on_block(&mut self, _block: BlockId) {}
}

/// An observer that records the entire block stream; handy in tests and
/// for offline analysis of small programs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingObserver {
    /// The observed stream, in execution order.
    pub blocks: Vec<BlockId>,
}

impl RecordingObserver {
    /// Creates an empty recording observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchObserver for RecordingObserver {
    #[inline]
    fn on_block(&mut self, block: BlockId) {
        self.blocks.push(block);
    }
}

impl<F: FnMut(BlockId)> DispatchObserver for F {
    #[inline]
    fn on_block(&mut self, block: BlockId) {
        self(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    #[test]
    fn recording_observer_keeps_order() {
        let mut o = RecordingObserver::new();
        let a = BlockId::new(FuncId(0), 0);
        let b = BlockId::new(FuncId(0), 1);
        o.on_block(a);
        o.on_block(b);
        o.on_block(a);
        assert_eq!(o.blocks, vec![a, b, a]);
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut obs = |_b: BlockId| count += 1;
            obs.on_block(BlockId::new(FuncId(0), 0));
            obs.on_block(BlockId::new(FuncId(0), 1));
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let mut o = NullObserver;
        o.on_block(BlockId::new(FuncId(0), 0));
    }
}

//! Call frames.

use jvm_bytecode::FuncId;

use crate::value::Value;

/// Sentinel for "no block entered yet / force a dispatch event".
pub(crate) const NO_BLOCK: u32 = u32::MAX;

/// One activation record: function, program counter, locals and operand
/// stack.
///
/// `cur_block` tracks which basic block the frame is currently executing
/// so the interpreter can detect block entries (dispatches). It is reset to
/// a sentinel after taken jumps so that self-loops still produce a
/// dispatch event.
#[derive(Debug)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Index of the next instruction to execute.
    pub pc: u32,
    /// Local variable slots (parameters first).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Block index the frame believes it is in; `NO_BLOCK` forces the next
    /// instruction to register a block entry.
    pub(crate) cur_block: u32,
}

impl Frame {
    /// Creates a frame for `func` with `num_locals` locals: the first are
    /// filled from `args`, and only the tail is zeroed (args-first fill —
    /// the argument prefix is written exactly once).
    pub fn new(func: FuncId, num_locals: u16, args: &[Value]) -> Self {
        assert!(args.len() <= num_locals as usize, "more args than locals");
        let mut locals = Vec::with_capacity(num_locals as usize);
        locals.extend_from_slice(args);
        locals.resize(num_locals as usize, Value::default());
        Frame {
            func,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
            cur_block: NO_BLOCK,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_copies_args_and_zeroes_rest() {
        let f = Frame::new(FuncId(2), 4, &[Value::Int(7), Value::Float(1.0)]);
        assert_eq!(f.func, FuncId(2));
        assert_eq!(f.pc, 0);
        assert_eq!(f.locals.len(), 4);
        assert_eq!(f.locals[0], Value::Int(7));
        assert_eq!(f.locals[1], Value::Float(1.0));
        assert_eq!(f.locals[2], Value::Int(0));
        assert!(f.stack.is_empty());
        assert_eq!(f.cur_block, NO_BLOCK);
    }

    #[test]
    #[should_panic]
    fn too_many_args_panics() {
        let _ = Frame::new(FuncId(0), 1, &[Value::Int(1), Value::Int(2)]);
    }
}

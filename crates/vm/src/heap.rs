//! Heap with a non-moving mark-sweep collector.
//!
//! The benchmarks of the paper (SPECjvm-class programs) allocate steadily,
//! so the substrate needs a real heap: objects with class-determined field
//! layouts, arrays, and a collector. A simple non-moving mark-sweep
//! collector is enough — GC pauses are not part of any measured quantity,
//! and non-moving semantics keep [`RefId`]s stable for the interpreter.

use jvm_bytecode::ClassId;

use crate::error::VmError;
use crate::value::{RefId, Value};

/// A heap-allocated object.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapObj {
    /// A class instance with a fixed field layout.
    Object {
        /// The instance's class.
        class: ClassId,
        /// Field storage, zero/null-initialised.
        fields: Box<[Value]>,
    },
    /// An array of values.
    Array {
        /// Element storage, zero-initialised.
        elems: Box<[Value]>,
    },
}

impl HeapObj {
    /// References held by this object, for the marker.
    fn trace(&self, mark: &mut impl FnMut(RefId)) {
        let values = match self {
            HeapObj::Object { fields, .. } => fields.iter(),
            HeapObj::Array { elems } => elems.iter(),
        };
        for v in values {
            if let Value::Ref(r) = v {
                mark(*r);
            }
        }
    }
}

/// Statistics reported by the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated over the heap's lifetime.
    pub allocations: u64,
    /// Collections performed.
    pub collections: u64,
    /// Objects freed by collections.
    pub freed: u64,
    /// Currently live objects.
    pub live: usize,
}

/// A non-moving mark-sweep heap.
///
/// Allocation returns stable [`RefId`]s; [`Heap::should_collect`] tells the
/// interpreter when to run [`Heap::collect`] with the current root set.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Option<HeapObj>>,
    free: Vec<u32>,
    live: usize,
    /// Collection is suggested when `live` exceeds this.
    threshold: usize,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap that suggests collection above `threshold` live
    /// objects.
    pub fn new(threshold: usize) -> Self {
        Heap {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            threshold: threshold.max(8),
            stats: HeapStats::default(),
        }
    }

    /// Allocates an object of `class` with `num_fields` zeroed fields.
    pub fn alloc_object(&mut self, class: ClassId, num_fields: u16) -> RefId {
        self.alloc(HeapObj::Object {
            class,
            fields: vec![Value::default(); num_fields as usize].into_boxed_slice(),
        })
    }

    /// Allocates a zero-filled array.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NegativeArrayLength`] for negative lengths.
    pub fn alloc_array(&mut self, len: i64) -> Result<RefId, VmError> {
        if len < 0 {
            return Err(VmError::NegativeArrayLength { len });
        }
        Ok(self.alloc(HeapObj::Array {
            elems: vec![Value::default(); len as usize].into_boxed_slice(),
        }))
    }

    fn alloc(&mut self, obj: HeapObj) -> RefId {
        self.stats.allocations += 1;
        self.live += 1;
        self.stats.live = self.live;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(obj);
            RefId(slot)
        } else {
            self.slots.push(Some(obj));
            RefId((self.slots.len() - 1) as u32)
        }
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the reference is dangling — impossible for references
    /// reachable from VM state, which is exactly the GC root set.
    #[inline]
    pub fn get(&self, r: RefId) -> &HeapObj {
        self.slots[r.0 as usize]
            .as_ref()
            .expect("dangling heap reference")
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the reference is dangling.
    #[inline]
    pub fn get_mut(&mut self, r: RefId) -> &mut HeapObj {
        self.slots[r.0 as usize]
            .as_mut()
            .expect("dangling heap reference")
    }

    /// Whether the interpreter should collect before the next allocation.
    #[inline]
    pub fn should_collect(&self) -> bool {
        self.live >= self.threshold
    }

    /// Number of currently live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Runs a mark-sweep collection with `roots` as the root set, then
    /// grows the threshold to twice the surviving population (so GC work
    /// stays proportional to live data).
    pub fn collect(&mut self, roots: impl Iterator<Item = RefId>) {
        let mut marked = vec![false; self.slots.len()];
        let mut worklist: Vec<RefId> = Vec::new();
        for r in roots {
            if !marked[r.0 as usize] {
                marked[r.0 as usize] = true;
                worklist.push(r);
            }
        }
        while let Some(r) = worklist.pop() {
            // A root or field may reference an object already freed only if
            // the VM is buggy; `get` panics loudly in that case.
            self.get(r).trace(&mut |child| {
                if !marked[child.0 as usize] {
                    marked[child.0 as usize] = true;
                    worklist.push(child);
                }
            });
        }
        let mut freed = 0u64;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_some() && !marked[i] {
                *slot = None;
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.live -= freed as usize;
        self.stats.collections += 1;
        self.stats.freed += freed;
        self.stats.live = self.live;
        self.threshold = (self.live * 2).max(self.threshold.min(1024)).max(8);
    }
}

impl Default for Heap {
    /// A heap with a 64 Ki-object initial collection threshold.
    fn default() -> Self {
        Heap::new(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access_object() {
        let mut h = Heap::new(100);
        let r = h.alloc_object(ClassId(0), 2);
        match h.get_mut(r) {
            HeapObj::Object { fields, .. } => fields[1] = Value::Int(9),
            _ => panic!("expected object"),
        }
        match h.get(r) {
            HeapObj::Object { class, fields } => {
                assert_eq!(*class, ClassId(0));
                assert_eq!(fields[0], Value::Int(0));
                assert_eq!(fields[1], Value::Int(9));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn alloc_array_rejects_negative_length() {
        let mut h = Heap::new(100);
        assert!(matches!(
            h.alloc_array(-1),
            Err(VmError::NegativeArrayLength { len: -1 })
        ));
        let r = h.alloc_array(3).unwrap();
        match h.get(r) {
            HeapObj::Array { elems } => assert_eq!(elems.len(), 3),
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn collect_frees_unreachable_and_keeps_reachable_graph() {
        let mut h = Heap::new(8);
        let root = h.alloc_object(ClassId(0), 1);
        let kept = h.alloc_array(1).unwrap();
        let lost = h.alloc_array(1).unwrap();
        if let HeapObj::Object { fields, .. } = h.get_mut(root) {
            fields[0] = Value::Ref(kept);
        }
        let _ = lost;
        assert_eq!(h.live(), 3);
        h.collect([root].into_iter());
        assert_eq!(h.live(), 2);
        assert_eq!(h.stats().freed, 1);
        // Both survivors still accessible.
        let _ = h.get(root);
        let _ = h.get(kept);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut h = Heap::new(8);
        let a = h.alloc_array(0).unwrap();
        h.collect(std::iter::empty());
        let b = h.alloc_array(0).unwrap();
        assert_eq!(a, b, "slot should be recycled");
    }

    #[test]
    fn cyclic_garbage_is_collected() {
        let mut h = Heap::new(8);
        let a = h.alloc_object(ClassId(0), 1);
        let b = h.alloc_object(ClassId(0), 1);
        if let HeapObj::Object { fields, .. } = h.get_mut(a) {
            fields[0] = Value::Ref(b);
        }
        if let HeapObj::Object { fields, .. } = h.get_mut(b) {
            fields[0] = Value::Ref(a);
        }
        h.collect(std::iter::empty());
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn should_collect_tracks_threshold() {
        let mut h = Heap::new(8);
        for _ in 0..7 {
            let _ = h.alloc_array(0).unwrap();
        }
        assert!(!h.should_collect());
        let _ = h.alloc_array(0).unwrap();
        assert!(h.should_collect());
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Heap::new(8);
        let _ = h.alloc_array(0).unwrap();
        let _ = h.alloc_array(0).unwrap();
        h.collect(std::iter::empty());
        let s = h.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.collections, 1);
        assert_eq!(s.freed, 2);
        assert_eq!(s.live, 0);
    }
}

//! Dispatch-count accounting across the three interpreter models.
//!
//! The paper's Figures 1 and 2 contrast a plain interpreter (one dispatch
//! per *instruction*) with a direct-threaded-inlining interpreter (one
//! dispatch per *basic block*); the trace cache then reduces this further
//! to roughly one dispatch per *trace* plus one per out-of-trace block.
//! [`DispatchCounts`] collects all three counts for one program run so the
//! figure can be regenerated as a table of dispatch totals and reduction
//! factors.

/// Dispatch totals for one run under the three execution models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounts {
    /// Plain interpreter: one dispatch per instruction (Figure 1).
    pub per_instruction: u64,
    /// Direct-threaded-inlining: one dispatch per basic block (Figure 2).
    pub per_block: u64,
    /// Trace cache: one dispatch per trace entry plus one per block
    /// executed outside any trace.
    pub per_trace: u64,
}

impl DispatchCounts {
    /// Dispatch-reduction factor of block dispatch over instruction
    /// dispatch (≥ 1 for non-empty runs).
    pub fn block_over_instruction(&self) -> f64 {
        ratio(self.per_instruction, self.per_block)
    }

    /// Dispatch-reduction factor of trace dispatch over block dispatch.
    pub fn trace_over_block(&self) -> f64 {
        ratio(self.per_block, self.per_trace)
    }

    /// Dispatch-reduction factor of trace dispatch over instruction
    /// dispatch.
    pub fn trace_over_instruction(&self) -> f64 {
        ratio(self.per_instruction, self.per_trace)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factors() {
        let d = DispatchCounts {
            per_instruction: 1000,
            per_block: 250,
            per_trace: 50,
        };
        assert_eq!(d.block_over_instruction(), 4.0);
        assert_eq!(d.trace_over_block(), 5.0);
        assert_eq!(d.trace_over_instruction(), 20.0);
    }

    #[test]
    fn zero_denominators_give_zero() {
        assert_eq!(DispatchCounts::default().block_over_instruction(), 0.0);
    }
}

//! Execution statistics.

/// Counters accumulated over a [`crate::Vm::run`] call.
///
/// `instructions` is the dispatch count of a plain one-instruction-at-a-time
/// interpreter (paper Figure 1); `block_dispatches` is the dispatch count of
/// the direct-threaded-inlining interpreter (Figure 2). Trace-mode dispatch
/// counts live in the trace-cache layer, which observes the same stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed (= per-instruction dispatches).
    pub instructions: u64,
    /// Basic blocks entered (= per-block dispatches).
    pub block_dispatches: u64,
    /// Calls executed (static + virtual).
    pub calls: u64,
    /// Virtual calls executed (subset of `calls`).
    pub virtual_calls: u64,
    /// Returns executed.
    pub returns: u64,
    /// Deepest call-stack depth reached.
    pub max_frame_depth: usize,
    /// Conditional/switch branches executed.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
}

impl ExecStats {
    /// Average basic-block length in instructions over this run, or 0.0 if
    /// nothing was executed.
    pub fn avg_block_len(&self) -> f64 {
        if self.block_dispatches == 0 {
            0.0
        } else {
            self.instructions as f64 / self.block_dispatches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_block_len_handles_zero() {
        assert_eq!(ExecStats::default().avg_block_len(), 0.0);
        let s = ExecStats {
            instructions: 30,
            block_dispatches: 10,
            ..ExecStats::default()
        };
        assert_eq!(s.avg_block_len(), 3.0);
    }
}

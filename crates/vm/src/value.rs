//! Runtime values.

use std::fmt;

use crate::error::VmError;

/// Index of a live object in the [`crate::Heap`].
///
/// `RefId`s are only meaningful against the heap that issued them; the
/// garbage collector never moves objects, so a `RefId` stays valid while
/// the object is reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefId(pub(crate) u32);

impl RefId {
    /// Raw slot index, for diagnostics.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A runtime value: the VM is dynamically typed over four shapes, matching
/// the verifier's `int`/`float`/`ref` lattice (null is a reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Reference to a heap object.
    Ref(RefId),
    /// The null reference.
    Null,
}

impl Value {
    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeError`] if the value is not an `Int`.
    #[inline]
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(VmError::TypeError {
                expected: "int",
                found: other.kind(),
            }),
        }
    }

    /// Extracts a float.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeError`] if the value is not a `Float`.
    #[inline]
    pub fn as_float(self) -> Result<f64, VmError> {
        match self {
            Value::Float(v) => Ok(v),
            other => Err(VmError::TypeError {
                expected: "float",
                found: other.kind(),
            }),
        }
    }

    /// Extracts a non-null reference.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NullPointer`] for `Null` and
    /// [`VmError::TypeError`] for non-references.
    #[inline]
    pub fn as_ref_id(self) -> Result<RefId, VmError> {
        match self {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(VmError::NullPointer),
            other => Err(VmError::TypeError {
                expected: "reference",
                found: other.kind(),
            }),
        }
    }

    /// A short name for the value's runtime type.
    pub fn kind(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Ref(_) => "ref",
            Value::Null => "null",
        }
    }

    /// Whether this value is a (possibly null) reference.
    pub fn is_reference(self) -> bool {
        matches!(self, Value::Ref(_) | Value::Null)
    }
}

impl Default for Value {
    /// The default value is `Int(0)`, matching the JVM's zero-initialised
    /// locals.
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// An item emitted by the `print_i`/`print_f` intrinsics when output
/// capture is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputItem {
    /// Printed integer.
    Int(i64),
    /// Printed float.
    Float(f64),
}

impl fmt::Display for OutputItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputItem::Int(v) => write!(f, "{v}"),
            OutputItem::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_succeeds_on_matching_type() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Float(1.5).as_float().unwrap(), 1.5);
        let r = RefId(3);
        assert_eq!(Value::Ref(r).as_ref_id().unwrap(), r);
    }

    #[test]
    fn extraction_fails_with_type_error() {
        assert!(matches!(
            Value::Float(1.0).as_int(),
            Err(VmError::TypeError {
                expected: "int",
                ..
            })
        ));
        assert!(matches!(
            Value::Int(1).as_float(),
            Err(VmError::TypeError { .. })
        ));
        assert!(matches!(Value::Null.as_ref_id(), Err(VmError::NullPointer)));
        assert!(matches!(
            Value::Int(0).as_ref_id(),
            Err(VmError::TypeError { .. })
        ));
    }

    #[test]
    fn kind_and_reference_classification() {
        assert_eq!(Value::Int(0).kind(), "int");
        assert_eq!(Value::Null.kind(), "null");
        assert!(Value::Null.is_reference());
        assert!(Value::Ref(RefId(0)).is_reference());
        assert!(!Value::Float(0.0).is_reference());
    }

    #[test]
    fn default_is_zero_int() {
        assert_eq!(Value::default(), Value::Int(0));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ref(RefId(4)).to_string(), "@4");
        assert_eq!(OutputItem::Int(1).to_string(), "1");
    }
}

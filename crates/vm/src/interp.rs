//! The interpreter: a pre-decoded threaded execution engine.
//!
//! Programs are lowered once by [`DecodedProgram::decode`] into flat
//! fixed-width opcode streams (see [`crate::decode`]) and then executed by
//! a tight loop. Three design points matter for the reproduction:
//!
//! 1. **Block-dispatch accounting.** Block-entry markers are baked into
//!    the decoded stream, so every basic-block entry is (a) counted in
//!    [`ExecStats::block_dispatches`] and (b) reported to the
//!    [`DispatchObserver`] by a dedicated opcode case — no per-instruction
//!    `block_index_of` lookups. This models the dispatch cost structure of
//!    SableVM's direct-threaded-inlining engine: one dispatch per block,
//!    with the profiler attached to the dispatch code. Markers cost no
//!    fuel and are not counted as instructions, so every observable count
//!    matches the frozen [`crate::ReferenceVm`] exactly.
//! 2. **Verifier-justified unchecked stack ops.** The verifier proves
//!    every reachable pc has a consistent operand-stack depth bounded by
//!    [`crate::decode::DecodedFunction::max_stack`], so operand traffic
//!    uses unchecked slab access (verifier invariant 1 in DESIGN.md).
//!    Debug builds keep `debug_assert!` bounds on every access.
//! 3. **Frame arena.** All locals and operand stacks live in one
//!    contiguous [`FrameArena`] slab with per-frame base offsets; a call
//!    is a pointer bump plus an argument `copy_within` instead of two
//!    `Vec` allocations. The hot loop caches `pc`/`sp` in registers and
//!    flushes them only at call/return/GC boundaries.
//!
//! The loop still performs the data-dependent checks a JVM would also
//! perform (null, bounds, division by zero).

use jvm_bytecode::{BlockId, ClassId, FuncId, Program};

use crate::arena::FrameArena;
use crate::decode::{eval_f_rel, eval_i_rel, op, DOp, DecodedProgram};
use crate::error::VmError;
use crate::fuse::{self, fop, BlockCounts, FusionConfig, FusionPlan, FusionReport};
use crate::heap::{Heap, HeapObj, HeapStats};
use crate::observer::DispatchObserver;
use crate::stats::ExecStats;
use crate::value::{OutputItem, Value};

/// Configuration for a [`Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum instructions to execute before [`VmError::OutOfFuel`].
    pub max_steps: u64,
    /// Maximum call-stack depth before [`VmError::CallStackOverflow`].
    pub max_frames: usize,
    /// Initial live-object count that triggers a collection.
    pub gc_threshold: usize,
    /// Whether `print_i`/`print_f` append to the output sink (disable for
    /// timing runs so output costs don't pollute measurements).
    pub capture_output: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: u64::MAX,
            max_frames: 1 << 14,
            gc_threshold: 64 * 1024,
            capture_output: true,
        }
    }
}

/// Folds a checksummed integer into a running checksum (FNV-1a flavoured;
/// order-sensitive so reordered execution is detected).
///
/// Public so that workload reference implementations can predict the
/// checksum a program's `checksum` intrinsics will accumulate.
///
/// ```
/// let c = jvm_vm::fold_checksum(0, 7);
/// assert_ne!(c, 0);
/// assert_ne!(jvm_vm::fold_checksum(c, 8), jvm_vm::fold_checksum(c, 9));
/// ```
#[inline]
pub fn fold_checksum(acc: u64, v: i64) -> u64 {
    (acc ^ (v as u64)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Reads slab slot `i` without a release-mode bounds check.
///
/// The verifier bounds every frame's operand-stack depth and local count,
/// and the arena sizes the slab to cover `base..limit` of every live
/// frame, so all interpreter accesses are in range by construction.
#[inline(always)]
fn slot(slab: &[Value], i: u32) -> Value {
    debug_assert!((i as usize) < slab.len(), "verified frame bounds");
    // SAFETY: see above — the index is within the slab for verified code.
    unsafe { *slab.get_unchecked(i as usize) }
}

/// Writes slab slot `i` without a release-mode bounds check (see [`slot`]).
#[inline(always)]
fn slot_mut(slab: &mut [Value], i: u32) -> &mut Value {
    debug_assert!((i as usize) < slab.len(), "verified frame bounds");
    // SAFETY: see `slot` — the index is within the slab for verified code.
    unsafe { slab.get_unchecked_mut(i as usize) }
}

/// The virtual machine.
///
/// A `Vm` borrows its (immutable, verified) [`Program`], pre-decodes it at
/// construction time, and owns all mutable run state: heap, frame arena,
/// statistics, checksum and output sink. [`Vm::run`] resets that state, so
/// one `Vm` can execute many runs (and reuse its arena capacity).
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    decoded: DecodedProgram,
    config: VmConfig,
    heap: Heap,
    arena: FrameArena,
    stats: ExecStats,
    checksum: u64,
    output: Vec<OutputItem>,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self::with_config(program, VmConfig::default())
    }

    /// Creates a VM with an explicit configuration. This is where the
    /// one-time decode pass runs.
    pub fn with_config(program: &'p Program, config: VmConfig) -> Self {
        Vm {
            program,
            decoded: DecodedProgram::decode(program),
            config,
            heap: Heap::new(config.gc_threshold),
            arena: FrameArena::new(),
            stats: ExecStats::default(),
            checksum: 0,
            output: Vec::new(),
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The pre-decoded form of the program.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }

    /// Rewrites the decoded streams according to a superinstruction
    /// `plan` (see [`crate::fuse`]). Idempotent: any previous fusion is
    /// undone first. Execution semantics, statistics and the dispatch
    /// stream are unchanged; only dispatch *cost* drops.
    pub fn apply_fusion(&mut self, plan: &FusionPlan) -> FusionReport {
        fuse::apply(&mut self.decoded, plan)
    }

    /// Convenience: builds a [`fuse::FusionProfile`] from a profiling
    /// run's block `counts`, selects patterns per function with `cfg`,
    /// and applies the resulting plan.
    pub fn fuse_with_profile(&mut self, counts: BlockCounts, cfg: &FusionConfig) -> FusionReport {
        let profile = fuse::FusionProfile::collect(&self.decoded, counts);
        let plan = FusionPlan::select(profile, cfg);
        fuse::apply(&mut self.decoded, &plan)
    }

    /// Restores the unfused decoded streams.
    pub fn unfuse(&mut self) {
        fuse::unfuse(&mut self.decoded);
    }

    /// Test hook: plants a deliberately broken fusion rewrite (see
    /// [`fuse::FuseQuirk`]). The fusion differential and conformance
    /// suites use this to prove they catch mis-fused boundaries.
    pub fn plant_fuse_quirk(&mut self, quirk: fuse::FuseQuirk) -> bool {
        fuse::plant_quirk(&mut self.decoded, quirk)
    }

    /// Byte footprint of the frame arena (slab + frame records).
    pub fn arena_memory(&self) -> usize {
        self.arena.memory_estimate()
    }

    /// Statistics of the most recent run.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Heap statistics of the most recent run.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Checksum accumulated by `checksum` intrinsics during the most
    /// recent run.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Output captured from print intrinsics during the most recent run.
    pub fn output(&self) -> &[OutputItem] {
        &self.output
    }

    /// Executes the program's entry function with `args`, reporting every
    /// basic-block dispatch to `observer`.
    ///
    /// Returns the entry function's return value, if it returns one.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on runtime traps (division by zero, null
    /// dereference, bounds), wrong entry arguments, or when a configured
    /// resource limit is hit.
    pub fn run<O: DispatchObserver>(
        &mut self,
        args: &[Value],
        observer: &mut O,
    ) -> Result<Option<Value>, VmError> {
        // Reset run state.
        self.heap = Heap::new(self.config.gc_threshold);
        self.arena.clear();
        self.stats = ExecStats::default();
        self.checksum = 0;
        self.output.clear();

        let program = self.program;
        let entry = program.entry();
        let ef = program.function(entry);
        if args.len() != ef.num_params() as usize {
            return Err(VmError::BadEntryArgs {
                func: entry,
                expected: ef.num_params(),
                provided: args.len(),
            });
        }

        // Split the borrows: the decoded streams are read-only while the
        // heap/arena/stats are mutated by the loop.
        let config = self.config;
        let Vm {
            decoded,
            heap,
            arena,
            stats,
            checksum,
            output,
            ..
        } = self;
        let decoded: &DecodedProgram = decoded;

        // Frame-local state, cached in locals and flushed to the arena at
        // call/return/GC boundaries.
        let mut func = entry;
        let mut code: &[DOp] = &decoded.func(entry).code;
        {
            let df = decoded.func(entry);
            arena.push_entry(entry, u32::from(df.num_locals), df.frame_size, args);
        }
        stats.max_frame_depth = 1;
        let mut pc: u32 = 0;
        let (mut base, mut sbase, mut limit, mut sp) = {
            let t = arena.top();
            (t.base, t.stack_base, t.limit, t.sp)
        };

        macro_rules! push {
            ($v:expr) => {{
                let v = $v;
                debug_assert!(sp < limit, "verified max_stack bound");
                *slot_mut(&mut arena.slab, sp) = v;
                sp += 1;
            }};
        }
        macro_rules! pop {
            () => {{
                debug_assert!(sp > sbase, "verified code cannot underflow");
                sp -= 1;
                slot(&arena.slab, sp)
            }};
        }
        // Reloads the cached frame state from the arena top (after a
        // call or return changed the active frame).
        macro_rules! reload {
            () => {{
                let t = arena.top();
                func = t.func;
                code = &decoded.func(func).code;
                pc = t.pc;
                base = t.base;
                sbase = t.stack_base;
                limit = t.limit;
                sp = t.sp;
            }};
        }
        // Runs a collection if the heap suggests one; the live regions of
        // the arena slab are exactly the roots.
        macro_rules! maybe_collect {
            () => {{
                if heap.should_collect() {
                    arena.top_mut().sp = sp;
                    heap.collect(arena.roots());
                }
            }};
        }
        // Pushes a callee frame for `$callee` with `$argc` stack-passed
        // arguments; the caller resumes past the call instruction.
        macro_rules! enter_call {
            ($callee:expr, $argc:expr) => {{
                if arena.depth() >= config.max_frames {
                    return Err(VmError::CallStackOverflow);
                }
                stats.calls += 1;
                let callee = $callee;
                let cdf = decoded.func(callee);
                {
                    let t = arena.top_mut();
                    t.pc = pc + 1;
                    t.sp = sp;
                }
                arena.push_call(callee, u32::from(cdf.num_locals), cdf.frame_size, $argc);
                stats.max_frame_depth = stats.max_frame_depth.max(arena.depth());
                reload!();
            }};
        }
        // --- Superinstruction support (see crate::fuse) ----------------
        // Reads the shadow slot of the $i-th constituent of a fused
        // group; the rewrite guarantees the whole group lies inside the
        // stream (and inside one block).
        macro_rules! shadow {
            ($i:expr) => {{
                debug_assert!(((pc + $i) as usize) < code.len(), "fused group in bounds");
                // SAFETY: fuse::apply only plants heads whose full
                // pattern matched within the stream.
                unsafe { *code.get_unchecked((pc + $i) as usize) }
            }};
        }
        // Fuel gate between fused constituents: the head was paid for by
        // the loop prelude; each further constituent pays here, erroring
        // at exactly the instruction count the unfused stream would.
        macro_rules! fstep {
            () => {{
                if stats.instructions >= config.max_steps {
                    return Err(VmError::OutOfFuel);
                }
                stats.instructions += 1;
            }};
        }
        // Evaluates the int binop `$opc` (IADD..=IXOR) with the exact
        // semantics of the standalone handlers, including div/rem traps.
        macro_rules! ibin {
            ($opc:expr, $a:expr, $b:expr) => {{
                let a: i64 = $a;
                let b: i64 = $b;
                match $opc {
                    op::IADD => a.wrapping_add(b),
                    op::ISUB => a.wrapping_sub(b),
                    op::IMUL => a.wrapping_mul(b),
                    op::IDIV => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_div(b)
                    }
                    op::IREM => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    op::ISHL => a.wrapping_shl(b as u32 & 63),
                    op::ISHR => a.wrapping_shr(b as u32 & 63),
                    op::IUSHR => ((a as u64) >> (b as u32 & 63)) as i64,
                    op::IAND => a & b,
                    op::IOR => a | b,
                    op::IXOR => a ^ b,
                    other => unreachable!("int binop family: opcode {other}"),
                }
            }};
        }
        // Float binop family (FADD..=FDIV), same semantics as the
        // standalone handlers.
        macro_rules! fbin {
            ($opc:expr, $a:expr, $b:expr) => {{
                let a: f64 = $a;
                let b: f64 = $b;
                match $opc {
                    op::FADD => a + b,
                    op::FSUB => a - b,
                    op::FMUL => a * b,
                    op::FDIV => a / b,
                    other => unreachable!("float binop family: opcode {other}"),
                }
            }};
        }
        // Array element read with the exact trap order and messages of
        // the standalone ALOAD handler.
        macro_rules! aload_elem {
            ($arr:expr, $idx:expr) => {{
                let idx: i64 = $idx;
                match heap.get($arr) {
                    HeapObj::Array { elems } => {
                        if idx < 0 || idx as usize >= elems.len() {
                            return Err(VmError::IndexOutOfBounds {
                                index: idx,
                                len: elems.len(),
                            });
                        }
                        elems[idx as usize]
                    }
                    HeapObj::Object { .. } => {
                        return Err(VmError::TypeError {
                            expected: "array",
                            found: "object",
                        })
                    }
                }
            }};
        }

        loop {
            debug_assert!((pc as usize) < code.len(), "terminators bound the stream");
            // SAFETY: verified functions end in terminators, so `pc` never
            // runs past the decoded stream.
            let d = unsafe { *code.get_unchecked(pc as usize) };

            // Block-entry markers fire the dispatch event; they cost no
            // fuel and are not instructions.
            if d.op == op::ENTER_BLOCK {
                stats.block_dispatches += 1;
                observer.on_block(BlockId::new(func, d.b));
                pc += 1;
                continue;
            }

            if stats.instructions >= config.max_steps {
                return Err(VmError::OutOfFuel);
            }
            stats.instructions += 1;

            match d.op {
                op::ICONST => {
                    push!(Value::Int(decoded.iconsts[d.b as usize]));
                    pc += 1;
                }
                op::FCONST => {
                    push!(Value::Float(decoded.fconsts[d.b as usize]));
                    pc += 1;
                }
                op::CONST_NULL => {
                    push!(Value::Null);
                    pc += 1;
                }
                op::DUP => {
                    push!(slot(&arena.slab, sp - 1));
                    pc += 1;
                }
                op::DUP2 => {
                    let a = slot(&arena.slab, sp - 2);
                    let b = slot(&arena.slab, sp - 1);
                    push!(a);
                    push!(b);
                    pc += 1;
                }
                op::POP => {
                    let _ = pop!();
                    pc += 1;
                }
                op::SWAP => {
                    let a = slot(&arena.slab, sp - 1);
                    let b = slot(&arena.slab, sp - 2);
                    *slot_mut(&mut arena.slab, sp - 1) = b;
                    *slot_mut(&mut arena.slab, sp - 2) = a;
                    pc += 1;
                }
                op::LOAD => {
                    push!(slot(&arena.slab, base + u32::from(d.a)));
                    pc += 1;
                }
                op::STORE => {
                    let v = pop!();
                    *slot_mut(&mut arena.slab, base + u32::from(d.a)) = v;
                    pc += 1;
                }
                op::IINC => {
                    let i = base + u32::from(d.a);
                    let v = slot(&arena.slab, i).as_int()?;
                    *slot_mut(&mut arena.slab, i) = Value::Int(v.wrapping_add(d.b as i32 as i64));
                    pc += 1;
                }
                op::IADD => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_add(b)));
                    pc += 1;
                }
                op::ISUB => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_sub(b)));
                    pc += 1;
                }
                op::IMUL => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_mul(b)));
                    pc += 1;
                }
                op::IDIV => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    push!(Value::Int(a.wrapping_div(b)));
                    pc += 1;
                }
                op::IREM => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    push!(Value::Int(a.wrapping_rem(b)));
                    pc += 1;
                }
                op::INEG => {
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_neg()));
                    pc += 1;
                }
                op::ISHL => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_shl(b as u32 & 63)));
                    pc += 1;
                }
                op::ISHR => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.wrapping_shr(b as u32 & 63)));
                    pc += 1;
                }
                op::IUSHR => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(((a as u64) >> (b as u32 & 63)) as i64));
                    pc += 1;
                }
                op::IAND => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a & b));
                    pc += 1;
                }
                op::IOR => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a | b));
                    pc += 1;
                }
                op::IXOR => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a ^ b));
                    pc += 1;
                }
                op::FADD => {
                    let b = pop!().as_float()?;
                    let a = pop!().as_float()?;
                    push!(Value::Float(a + b));
                    pc += 1;
                }
                op::FSUB => {
                    let b = pop!().as_float()?;
                    let a = pop!().as_float()?;
                    push!(Value::Float(a - b));
                    pc += 1;
                }
                op::FMUL => {
                    let b = pop!().as_float()?;
                    let a = pop!().as_float()?;
                    push!(Value::Float(a * b));
                    pc += 1;
                }
                op::FDIV => {
                    let b = pop!().as_float()?;
                    let a = pop!().as_float()?;
                    push!(Value::Float(a / b));
                    pc += 1;
                }
                op::FNEG => {
                    let a = pop!().as_float()?;
                    push!(Value::Float(-a));
                    pc += 1;
                }
                op::I2F => {
                    let a = pop!().as_int()?;
                    push!(Value::Float(a as f64));
                    pc += 1;
                }
                op::F2I => {
                    let a = pop!().as_float()?;
                    push!(Value::Int(a as i64));
                    pc += 1;
                }
                op::IF_ICMP_EQ..=op::IF_ICMP_GE => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    stats.branches += 1;
                    if eval_i_rel(d.op - op::IF_ICMP_EQ, a, b) {
                        stats.taken_branches += 1;
                        pc = d.b;
                    } else {
                        pc += 1;
                    }
                }
                op::IF_I_EQ..=op::IF_I_GE => {
                    let a = pop!().as_int()?;
                    stats.branches += 1;
                    if eval_i_rel(d.op - op::IF_I_EQ, a, 0) {
                        stats.taken_branches += 1;
                        pc = d.b;
                    } else {
                        pc += 1;
                    }
                }
                op::IF_FCMP_EQ..=op::IF_FCMP_GE => {
                    let b = pop!().as_float()?;
                    let a = pop!().as_float()?;
                    stats.branches += 1;
                    if eval_f_rel(d.op - op::IF_FCMP_EQ, a, b) {
                        stats.taken_branches += 1;
                        pc = d.b;
                    } else {
                        pc += 1;
                    }
                }
                op::IF_NULL => {
                    let v = pop!();
                    stats.branches += 1;
                    if matches!(v, Value::Null) {
                        stats.taken_branches += 1;
                        pc = d.b;
                    } else {
                        pc += 1;
                    }
                }
                op::IF_NON_NULL => {
                    let v = pop!();
                    stats.branches += 1;
                    if !matches!(v, Value::Null) {
                        stats.taken_branches += 1;
                        pc = d.b;
                    } else {
                        pc += 1;
                    }
                }
                op::GOTO => {
                    pc = d.b;
                }
                op::TABLE_SWITCH => {
                    let v = pop!().as_int()?;
                    stats.branches += 1;
                    stats.taken_branches += 1;
                    let sw = &decoded.switches[d.b as usize];
                    let idx = v.wrapping_sub(sw.low);
                    pc = if idx >= 0 && (idx as usize) < sw.targets.len() {
                        sw.targets[idx as usize]
                    } else {
                        sw.default
                    };
                }
                op::INVOKE_STATIC => {
                    enter_call!(FuncId(d.b), u32::from(d.a));
                }
                op::INVOKE_VIRTUAL => {
                    let argc = d.b;
                    let recv = slot(&arena.slab, sp - argc).as_ref_id()?;
                    let class = match heap.get(recv) {
                        HeapObj::Object { class, .. } => *class,
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object receiver",
                                found: "array",
                            })
                        }
                    };
                    let callee = program.class(class).resolve(d.a);
                    stats.virtual_calls += 1;
                    enter_call!(callee, argc);
                }
                op::RETURN => {
                    let v = pop!();
                    stats.returns += 1;
                    arena.pop_frame();
                    if arena.depth() == 0 {
                        return Ok(Some(v));
                    }
                    reload!();
                    push!(v);
                }
                op::RETURN_VOID => {
                    stats.returns += 1;
                    arena.pop_frame();
                    if arena.depth() == 0 {
                        return Ok(None);
                    }
                    reload!();
                }
                op::NEW => {
                    maybe_collect!();
                    let r = heap.alloc_object(ClassId(d.b), d.a);
                    push!(Value::Ref(r));
                    pc += 1;
                }
                op::GET_FIELD => {
                    let obj = pop!().as_ref_id()?;
                    match heap.get(obj) {
                        HeapObj::Object { fields, .. } => {
                            let v = *fields.get(d.a as usize).ok_or(VmError::BadField {
                                field: d.a,
                                num_fields: fields.len() as u16,
                            })?;
                            push!(v);
                            pc += 1;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                op::PUT_FIELD => {
                    let v = pop!();
                    let obj = pop!().as_ref_id()?;
                    pc += 1;
                    match heap.get_mut(obj) {
                        HeapObj::Object { fields, .. } => {
                            let len = fields.len();
                            *fields.get_mut(d.a as usize).ok_or(VmError::BadField {
                                field: d.a,
                                num_fields: len as u16,
                            })? = v;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                op::NEW_ARRAY => {
                    let len = pop!().as_int()?;
                    maybe_collect!();
                    let r = heap.alloc_array(len)?;
                    push!(Value::Ref(r));
                    pc += 1;
                }
                op::ALOAD => {
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref_id()?;
                    match heap.get(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            let v = elems[idx as usize];
                            push!(v);
                            pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                op::ASTORE => {
                    let v = pop!();
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref_id()?;
                    pc += 1;
                    match heap.get_mut(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            elems[idx as usize] = v;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                op::ARRAY_LEN => {
                    let arr = pop!().as_ref_id()?;
                    match heap.get(arr) {
                        HeapObj::Array { elems } => {
                            let len = elems.len() as i64;
                            push!(Value::Int(len));
                            pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                op::NOP => {
                    pc += 1;
                }
                op::SQRT => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.sqrt()));
                    pc += 1;
                }
                op::SIN => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.sin()));
                    pc += 1;
                }
                op::COS => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.cos()));
                    pc += 1;
                }
                op::EXP => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.exp()));
                    pc += 1;
                }
                op::LOG => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.ln()));
                    pc += 1;
                }
                op::ABS_F => {
                    let v = pop!().as_float()?;
                    push!(Value::Float(v.abs()));
                    pc += 1;
                }
                op::ABS_I => {
                    let v = pop!().as_int()?;
                    push!(Value::Int(v.wrapping_abs()));
                    pc += 1;
                }
                op::MIN_I => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.min(b)));
                    pc += 1;
                }
                op::MAX_I => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(a.max(b)));
                    pc += 1;
                }
                op::PRINT_INT => {
                    let v = pop!().as_int()?;
                    if config.capture_output {
                        output.push(OutputItem::Int(v));
                    }
                    pc += 1;
                }
                op::PRINT_FLOAT => {
                    let v = pop!().as_float()?;
                    if config.capture_output {
                        output.push(OutputItem::Float(v));
                    }
                    pc += 1;
                }
                op::CHECKSUM => {
                    let v = pop!().as_int()?;
                    *checksum = fold_checksum(*checksum, v);
                    pc += 1;
                }
                // --- Fused superinstructions (crate::fuse) -------------
                // Each arm executes its constituents with the reference
                // operand-evaluation and error order; `fstep!` charges
                // fuel per constituent so OutOfFuel parity is exact.
                // Operands of later constituents come from the shadow
                // slots, which still hold the original DOps.
                fop::LOAD_LOAD_IBIN => {
                    let x = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    let y = slot(&arena.slab, base + u32::from(d2.a));
                    fstep!();
                    let d3 = shadow!(2);
                    let b = y.as_int()?;
                    let a = x.as_int()?;
                    push!(Value::Int(ibin!(d3.op, a, b)));
                    pc += 3;
                }
                fop::LOAD_ICONST_IBIN => {
                    let x = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    let b = decoded.iconsts[d2.b as usize];
                    fstep!();
                    let d3 = shadow!(2);
                    let a = x.as_int()?;
                    push!(Value::Int(ibin!(d3.op, a, b)));
                    pc += 3;
                }
                fop::LOAD_LOAD_ICMP => {
                    let x = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    let y = slot(&arena.slab, base + u32::from(d2.a));
                    fstep!();
                    let d3 = shadow!(2);
                    let b = y.as_int()?;
                    let a = x.as_int()?;
                    stats.branches += 1;
                    if eval_i_rel(d3.op - op::IF_ICMP_EQ, a, b) {
                        stats.taken_branches += 1;
                        pc = d3.b;
                    } else {
                        pc += 3;
                    }
                }
                fop::LOAD_LOAD => {
                    let x = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    push!(x);
                    push!(slot(&arena.slab, base + u32::from(d2.a)));
                    pc += 2;
                }
                fop::LOAD_ICONST => {
                    let x = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    push!(x);
                    push!(Value::Int(decoded.iconsts[d2.b as usize]));
                    pc += 2;
                }
                fop::STORE_LOAD => {
                    let v = pop!();
                    *slot_mut(&mut arena.slab, base + u32::from(d.a)) = v;
                    fstep!();
                    let d2 = shadow!(1);
                    push!(slot(&arena.slab, base + u32::from(d2.a)));
                    pc += 2;
                }
                fop::LOAD_IBIN => {
                    let y = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    let b = y.as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(ibin!(d2.op, a, b)));
                    pc += 2;
                }
                fop::ICONST_IBIN => {
                    let b = decoded.iconsts[d.b as usize];
                    fstep!();
                    let d2 = shadow!(1);
                    let a = pop!().as_int()?;
                    push!(Value::Int(ibin!(d2.op, a, b)));
                    pc += 2;
                }
                fop::LOAD_ICMP => {
                    let y = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let d2 = shadow!(1);
                    let b = y.as_int()?;
                    let a = pop!().as_int()?;
                    stats.branches += 1;
                    if eval_i_rel(d2.op - op::IF_ICMP_EQ, a, b) {
                        stats.taken_branches += 1;
                        pc = d2.b;
                    } else {
                        pc += 2;
                    }
                }
                fop::ICONST_ICMP => {
                    let b = decoded.iconsts[d.b as usize];
                    fstep!();
                    let d2 = shadow!(1);
                    let a = pop!().as_int()?;
                    stats.branches += 1;
                    if eval_i_rel(d2.op - op::IF_ICMP_EQ, a, b) {
                        stats.taken_branches += 1;
                        pc = d2.b;
                    } else {
                        pc += 2;
                    }
                }
                fop::IINC_GOTO => {
                    let i = base + u32::from(d.a);
                    let v = slot(&arena.slab, i).as_int()?;
                    *slot_mut(&mut arena.slab, i) = Value::Int(v.wrapping_add(d.b as i32 as i64));
                    fstep!();
                    let d2 = shadow!(1);
                    // GOTO is unconditional: no branch counters, like
                    // the standalone handler.
                    pc = d2.b;
                }
                fop::IADD_STORE => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    let v = Value::Int(a.wrapping_add(b));
                    fstep!();
                    let d2 = shadow!(1);
                    *slot_mut(&mut arena.slab, base + u32::from(d2.a)) = v;
                    pc += 2;
                }
                fop::FCONST_FBIN => {
                    let b = decoded.fconsts[d.b as usize];
                    fstep!();
                    let d2 = shadow!(1);
                    let a = pop!().as_float()?;
                    push!(Value::Float(fbin!(d2.op, a, b)));
                    pc += 2;
                }
                fop::LOAD_ALOAD => {
                    let iv = slot(&arena.slab, base + u32::from(d.a));
                    fstep!();
                    let idx = iv.as_int()?;
                    let arr = pop!().as_ref_id()?;
                    push!(aload_elem!(arr, idx));
                    pc += 2;
                }
                fop::ICONST_ALOAD => {
                    let idx = decoded.iconsts[d.b as usize];
                    fstep!();
                    let arr = pop!().as_ref_id()?;
                    push!(aload_elem!(arr, idx));
                    pc += 2;
                }
                fop::ALOAD_IBIN => {
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref_id()?;
                    let ev = aload_elem!(arr, idx);
                    fstep!();
                    let d2 = shadow!(1);
                    let b = ev.as_int()?;
                    let a = pop!().as_int()?;
                    push!(Value::Int(ibin!(d2.op, a, b)));
                    pc += 2;
                }
                fop::ALOAD_FBIN => {
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref_id()?;
                    let ev = aload_elem!(arr, idx);
                    fstep!();
                    let d2 = shadow!(1);
                    let b = ev.as_float()?;
                    let a = pop!().as_float()?;
                    push!(Value::Float(fbin!(d2.op, a, b)));
                    pc += 2;
                }
                other => unreachable!("corrupt decoded stream: opcode {other}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NullObserver, RecordingObserver};
    use jvm_bytecode::{CmpOp, Intrinsic, ProgramBuilder};

    fn run_main(pb: ProgramBuilder, entry: FuncId, args: &[Value]) -> (Option<Value>, ExecStats) {
        let program = pb.build(entry).expect("program builds");
        let mut vm = Vm::new(&program);
        let r = vm.run(args, &mut NullObserver).expect("program runs");
        (r, vm.stats())
    }

    #[test]
    fn arithmetic_and_return() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 2, true);
        pb.function_mut(f)
            .load(0)
            .load(1)
            .imul()
            .iconst(1)
            .iadd()
            .ret();
        let (r, stats) = run_main(pb, f, &[Value::Int(6), Value::Int(7)]);
        assert_eq!(r, Some(Value::Int(43)));
        assert_eq!(stats.block_dispatches, 1);
        assert_eq!(stats.instructions, 6);
    }

    #[test]
    fn loop_counts_block_dispatches_per_iteration() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let (r, stats) = run_main(pb, f, &[Value::Int(10)]);
        assert_eq!(r, Some(Value::Int(55)));
        // Blocks: entry(1) + 11 head checks + 10 bodies + 1 exit = 23.
        assert_eq!(stats.block_dispatches, 23);
        // The head `if` executes 11 times; only the final exit is taken.
        assert_eq!(stats.branches, 11);
        assert_eq!(stats.taken_branches, 1);
    }

    #[test]
    fn taken_branch_accounting() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Gt, exit);
        b.iconst(0).ret();
        b.bind(exit);
        b.iconst(1).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let r = vm.run(&[Value::Int(5)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(1)));
        assert_eq!(vm.stats().branches, 1);
        assert_eq!(vm.stats().taken_branches, 1);
        let r = vm.run(&[Value::Int(-5)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(0)));
        assert_eq!(vm.stats().taken_branches, 0);
    }

    #[test]
    fn static_call_passes_args_in_order() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_function("sub", 2, true);
        pb.function_mut(callee).load(0).load(1).isub().ret();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .iconst(10)
            .iconst(3)
            .invoke_static(callee)
            .ret();
        let (r, stats) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(7)));
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.returns, 2);
        assert_eq!(stats.max_frame_depth, 2);
    }

    #[test]
    fn virtual_call_dispatches_on_receiver_class() {
        let mut pb = ProgramBuilder::new();
        let am = pb.declare_function("A.val", 1, true);
        pb.function_mut(am).iconst(10).ret();
        let bm = pb.declare_function("B.val", 1, true);
        pb.function_mut(bm).iconst(20).ret();
        let f = pb.declare_function("main", 1, true);
        let a = pb.declare_class("A", None, 0);
        let slot = pb.add_method(a, am);
        let b = pb.declare_class("B", Some(a), 0);
        pb.override_method(b, slot, bm);
        {
            let body = pb.function_mut(f);
            let use_b = body.new_label();
            let call = body.new_label();
            body.load(0).if_i(CmpOp::Ne, use_b);
            body.new_obj(a).goto(call);
            body.bind(use_b);
            body.new_obj(b);
            body.bind(call);
            body.invoke_virtual(slot, 1).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(
            vm.run(&[Value::Int(0)], &mut NullObserver).unwrap(),
            Some(Value::Int(10))
        );
        assert_eq!(
            vm.run(&[Value::Int(1)], &mut NullObserver).unwrap(),
            Some(Value::Int(20))
        );
        assert_eq!(vm.stats().virtual_calls, 1);
    }

    #[test]
    fn recursion_computes_factorial() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("fact", 1, true);
        {
            let b = pb.function_mut(f);
            let base = b.new_label();
            b.load(0).iconst(2).if_icmp(CmpOp::Lt, base);
            b.load(0)
                .load(0)
                .iconst(1)
                .isub()
                .invoke_static(f)
                .imul()
                .ret();
            b.bind(base);
            b.iconst(1).ret();
        }
        let (r, stats) = run_main(pb, f, &[Value::Int(10)]);
        assert_eq!(r, Some(Value::Int(3628800)));
        assert_eq!(stats.max_frame_depth, 10);
    }

    #[test]
    fn arrays_and_objects_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        let c = pb.declare_class("Box", None, 1);
        {
            let b = pb.function_mut(f);
            let arr = b.alloc_local();
            let obj = b.alloc_local();
            b.iconst(3).new_array().store(arr);
            b.load(arr).iconst(1).iconst(42).astore();
            b.new_obj(c).store(obj);
            b.load(obj).load(arr).iconst(1).aload().put_field(0);
            b.load(obj).get_field(0).load(arr).array_len().iadd().ret();
        }
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(45)));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f).iconst(1).load(0).idiv().ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(
            vm.run(&[Value::Int(0)], &mut NullObserver),
            Err(VmError::DivisionByZero)
        );
    }

    #[test]
    fn array_bounds_trap() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f)
            .iconst(2)
            .new_array()
            .load(0)
            .aload()
            .ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[Value::Int(5)], &mut NullObserver),
            Err(VmError::IndexOutOfBounds { index: 5, len: 2 })
        ));
        assert!(matches!(
            vm.run(&[Value::Int(-1)], &mut NullObserver),
            Err(VmError::IndexOutOfBounds { index: -1, .. })
        ));
    }

    #[test]
    fn null_dereference_traps() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).const_null().get_field(0).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(vm.run(&[], &mut NullObserver), Err(VmError::NullPointer));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let head = b.bind_new_label();
        b.nop().goto(head);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                max_steps: 1000,
                ..VmConfig::default()
            },
        );
        assert_eq!(vm.run(&[], &mut NullObserver), Err(VmError::OutOfFuel));
        assert_eq!(vm.stats().instructions, 1000);
    }

    #[test]
    fn stack_overflow_on_unbounded_recursion() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).invoke_static(f).ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                max_frames: 64,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(&[], &mut NullObserver),
            Err(VmError::CallStackOverflow)
        );
    }

    #[test]
    fn bad_entry_args_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 2, false);
        pb.function_mut(f).ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[Value::Int(1)], &mut NullObserver),
            Err(VmError::BadEntryArgs {
                expected: 2,
                provided: 1,
                ..
            })
        ));
    }

    #[test]
    fn checksum_and_output_intrinsics() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f)
            .iconst(7)
            .intrinsic(Intrinsic::Checksum)
            .iconst(1)
            .intrinsic(Intrinsic::PrintInt)
            .fconst(2.5)
            .intrinsic(Intrinsic::PrintFloat)
            .ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        vm.run(&[], &mut NullObserver).unwrap();
        assert_ne!(vm.checksum(), 0);
        assert_eq!(vm.output(), &[OutputItem::Int(1), OutputItem::Float(2.5)]);
    }

    #[test]
    fn float_intrinsics_compute() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .fconst(16.0)
            .intrinsic(Intrinsic::Sqrt)
            .f2i()
            .ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(4)));
    }

    #[test]
    fn gc_runs_during_allocation_storm() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let i = b.alloc_local();
        b.iconst(5000).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).if_i(CmpOp::Le, exit);
        b.iconst(4).new_array().pop(); // garbage
        b.iinc(i, -1).goto(head);
        b.bind(exit);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                gc_threshold: 256,
                ..VmConfig::default()
            },
        );
        vm.run(&[], &mut NullObserver).unwrap();
        let hs = vm.heap_stats();
        assert_eq!(hs.allocations, 5000);
        assert!(hs.collections >= 1, "expected at least one collection");
        assert!(hs.live < 5000);
    }

    #[test]
    fn observer_sees_complete_stream_across_calls() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare_function("leaf", 0, true);
        pb.function_mut(leaf).iconst(1).ret();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).invoke_static(leaf).pop().ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let mut rec = RecordingObserver::new();
        vm.run(&[], &mut rec).unwrap();
        assert_eq!(
            rec.blocks,
            vec![
                BlockId::new(f, 0),    // main entry (call block)
                BlockId::new(leaf, 0), // callee
                BlockId::new(f, 1),    // continuation after return
            ]
        );
        assert_eq!(vm.stats().block_dispatches, 3);
    }

    #[test]
    fn self_loop_block_dispatches_every_iteration() {
        // A single-block loop body jumping to itself must count one
        // dispatch per iteration (the sentinel mechanism).
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        let b = pb.function_mut(f);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.iinc(0, -1).load(0).if_i(CmpOp::Gt, head);
        b.goto(exit);
        b.bind(exit);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let mut rec = RecordingObserver::new();
        vm.run(&[Value::Int(5)], &mut rec).unwrap();
        let head_block = BlockId::new(f, 0);
        let head_count = rec.blocks.iter().filter(|&&b| b == head_block).count();
        assert_eq!(head_count, 5, "each self-loop iteration is a dispatch");
    }

    #[test]
    fn vm_is_reusable_across_runs() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f).load(0).iconst(2).imul().ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        for i in 0..5 {
            let r = vm.run(&[Value::Int(i)], &mut NullObserver).unwrap();
            assert_eq!(r, Some(Value::Int(i * 2)));
        }
    }

    #[test]
    fn table_switch_selects_and_defaults() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let c0 = b.new_label();
            let c1 = b.new_label();
            let dfl = b.new_label();
            b.load(0).table_switch(10, &[c0, c1], dfl);
            b.bind(c0);
            b.iconst(100).ret();
            b.bind(c1);
            b.iconst(101).ret();
            b.bind(dfl);
            b.iconst(-1).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        for (input, want) in [(10, 100), (11, 101), (9, -1), (12, -1), (i64::MIN, -1)] {
            let r = vm.run(&[Value::Int(input)], &mut NullObserver).unwrap();
            assert_eq!(r, Some(Value::Int(want)), "input {input}");
        }
    }

    #[test]
    fn wrapping_semantics_match_java() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(i64::MAX).iconst(1).iadd().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(i64::MIN)));
    }

    #[test]
    fn dup2_and_swap_semantics() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        // [1 2] dup2 -> [1 2 1 2]; add top two -> [1 2 3]; swap -> [1 3 2];
        // sub -> [1 1]; mul -> [1]. Result 1*... compute: 3-2? order:
        // swap makes top=2 below=3: isub pops b=2,a=3 -> 1; imul 1*1=1.
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .dup2()
            .iadd()
            .swap()
            .isub()
            .imul()
            .ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(1)));
    }

    #[test]
    fn f2i_saturates_and_nan_is_zero() {
        for (input, want) in [
            (1e300, i64::MAX),
            (-1e300, i64::MIN),
            (f64::NAN, 0),
            (2.9, 2),
            (-2.9, -2),
        ] {
            let mut pb = ProgramBuilder::new();
            let f = pb.declare_function("main", 0, true);
            pb.function_mut(f).fconst(input).f2i().ret();
            let (r, _) = run_main(pb, f, &[]);
            assert_eq!(r, Some(Value::Int(want)), "input {input}");
        }
    }

    #[test]
    fn shift_counts_are_masked_to_six_bits() {
        // Like the JVM: shift counts are taken modulo 64.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(1).iconst(65).ishl().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(2)));

        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(-8).iconst(1).iushr().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(((-8i64) as u64 >> 1) as i64)));
    }

    #[test]
    fn gc_preserves_object_graphs_across_calls() {
        // A callee builds a linked chain; the caller allocates garbage to
        // force collections; the chain must survive intact.
        let mut pb = ProgramBuilder::new();
        let node_cls = pb.declare_class("Node", None, 2); // [next, payload]
        let build = pb.declare_function("build", 1, true);
        {
            let b = pb.function_mut(build);
            // Builds a chain of length n, payloads n..1, returns head.
            let head = b.alloc_local();
            b.const_null().store(head);
            let loop_head = b.bind_new_label();
            let exit = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            b.new_obj(node_cls).dup().dup(); // three refs to fresh node
            b.load(head).put_field(0); // node.next = head
            b.load(0).put_field(1); // node.payload = n
            b.store(head); // head = node
            b.iinc(0, -1).goto(loop_head);
            b.bind(exit);
            b.load(head).ret();
        }
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let chain = b.alloc_local();
            let i = b.alloc_local();
            let sum = b.alloc_local();
            b.load(0).invoke_static(build).store(chain);
            // Garbage storm.
            b.iconst(2000).store(i);
            let g_head = b.bind_new_label();
            let g_exit = b.new_label();
            b.load(i).if_i(CmpOp::Le, g_exit);
            b.iconst(8).new_array().pop();
            b.iinc(i, -1).goto(g_head);
            b.bind(g_exit);
            // Walk the chain and sum payloads.
            b.iconst(0).store(sum);
            let w_head = b.bind_new_label();
            let w_exit = b.new_label();
            b.load(chain).if_null(w_exit);
            b.load(sum).load(chain).get_field(1).iadd().store(sum);
            b.load(chain).get_field(0).store(chain);
            b.goto(w_head);
            b.bind(w_exit);
            b.load(sum).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                gc_threshold: 64,
                ..VmConfig::default()
            },
        );
        let r = vm.run(&[Value::Int(50)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(50 * 51 / 2)));
        assert!(vm.heap_stats().collections > 0, "GC must have run");
    }

    #[test]
    fn output_capture_can_be_disabled() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f)
            .iconst(1)
            .intrinsic(Intrinsic::PrintInt)
            .ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                capture_output: false,
                ..VmConfig::default()
            },
        );
        vm.run(&[], &mut NullObserver).unwrap();
        assert!(vm.output().is_empty());
    }

    #[test]
    fn field_access_on_array_is_a_type_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(2).new_array().get_field(0).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[], &mut NullObserver),
            Err(VmError::TypeError {
                expected: "object",
                ..
            })
        ));
    }

    #[test]
    fn min_div_neg_one_wraps_instead_of_trapping() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(i64::MIN).iconst(-1).idiv().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(i64::MIN)));
    }
}

//! The interpreter.
//!
//! A classic fetch-decode-execute loop over verified programs. Two design
//! points matter for the reproduction:
//!
//! 1. **Block-dispatch accounting.** The interpreter detects every basic
//!    block entry and (a) counts it in [`ExecStats::block_dispatches`] and
//!    (b) reports it to the [`DispatchObserver`]. This models the dispatch
//!    cost structure of SableVM's direct-threaded-inlining engine: one
//!    dispatch per block, with the profiler attached to the dispatch code.
//! 2. **No structural checks in the hot loop.** Programs are verified at
//!    build time, so the loop only performs the data-dependent checks a
//!    JVM would also perform (null, bounds, division by zero).

use jvm_bytecode::{BlockId, FuncId, Instr, Intrinsic, Program};

use crate::error::VmError;
use crate::frame::{Frame, NO_BLOCK};
use crate::heap::{Heap, HeapObj, HeapStats};
use crate::observer::DispatchObserver;
use crate::stats::ExecStats;
use crate::value::{OutputItem, Value};

/// Configuration for a [`Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum instructions to execute before [`VmError::OutOfFuel`].
    pub max_steps: u64,
    /// Maximum call-stack depth before [`VmError::CallStackOverflow`].
    pub max_frames: usize,
    /// Initial live-object count that triggers a collection.
    pub gc_threshold: usize,
    /// Whether `print_i`/`print_f` append to the output sink (disable for
    /// timing runs so output costs don't pollute measurements).
    pub capture_output: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: u64::MAX,
            max_frames: 1 << 14,
            gc_threshold: 64 * 1024,
            capture_output: true,
        }
    }
}

/// Folds a checksummed integer into a running checksum (FNV-1a flavoured;
/// order-sensitive so reordered execution is detected).
///
/// Public so that workload reference implementations can predict the
/// checksum a program's `checksum` intrinsics will accumulate.
///
/// ```
/// let c = jvm_vm::fold_checksum(0, 7);
/// assert_ne!(c, 0);
/// assert_ne!(jvm_vm::fold_checksum(c, 8), jvm_vm::fold_checksum(c, 9));
/// ```
#[inline]
pub fn fold_checksum(acc: u64, v: i64) -> u64 {
    (acc ^ (v as u64)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The virtual machine.
///
/// A `Vm` borrows its (immutable, verified) [`Program`] and owns all
/// mutable run state: heap, frames, statistics, checksum and output sink.
/// [`Vm::run`] resets that state, so one `Vm` can execute many runs.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    heap: Heap,
    frames: Vec<Frame>,
    stats: ExecStats,
    checksum: u64,
    output: Vec<OutputItem>,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self::with_config(program, VmConfig::default())
    }

    /// Creates a VM with an explicit configuration.
    pub fn with_config(program: &'p Program, config: VmConfig) -> Self {
        Vm {
            program,
            config,
            heap: Heap::new(config.gc_threshold),
            frames: Vec::new(),
            stats: ExecStats::default(),
            checksum: 0,
            output: Vec::new(),
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Statistics of the most recent run.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Heap statistics of the most recent run.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Checksum accumulated by `checksum` intrinsics during the most
    /// recent run.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Output captured from print intrinsics during the most recent run.
    pub fn output(&self) -> &[OutputItem] {
        &self.output
    }

    /// Executes the program's entry function with `args`, reporting every
    /// basic-block dispatch to `observer`.
    ///
    /// Returns the entry function's return value, if it returns one.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on runtime traps (division by zero, null
    /// dereference, bounds), wrong entry arguments, or when a configured
    /// resource limit is hit.
    pub fn run<O: DispatchObserver>(
        &mut self,
        args: &[Value],
        observer: &mut O,
    ) -> Result<Option<Value>, VmError> {
        // Reset run state.
        self.heap = Heap::new(self.config.gc_threshold);
        self.frames.clear();
        self.stats = ExecStats::default();
        self.checksum = 0;
        self.output.clear();

        let program = self.program;
        let entry = program.entry();
        let ef = program.function(entry);
        if args.len() != ef.num_params() as usize {
            return Err(VmError::BadEntryArgs {
                func: entry,
                expected: ef.num_params(),
                provided: args.len(),
            });
        }
        self.frames.push(Frame::new(entry, ef.num_locals(), args));
        self.stats.max_frame_depth = 1;

        macro_rules! pop {
            ($f:expr) => {
                $f.stack.pop().expect("verified code cannot underflow")
            };
        }

        loop {
            let depth = self.frames.len();
            let (func_id, pc) = {
                let f = &self.frames[depth - 1];
                (f.func, f.pc)
            };
            let func = program.function(func_id);

            // Block-dispatch detection: one event per block entered.
            let block = func.block_index_of(pc);
            {
                let f = &mut self.frames[depth - 1];
                if block != f.cur_block {
                    f.cur_block = block;
                    self.stats.block_dispatches += 1;
                    observer.on_block(BlockId::new(func_id, block));
                }
            }

            if self.stats.instructions >= self.config.max_steps {
                return Err(VmError::OutOfFuel);
            }
            self.stats.instructions += 1;

            let ins = &func.code()[pc as usize];
            let frame = self.frames.last_mut().expect("frame exists");

            match ins {
                Instr::IConst(v) => {
                    frame.stack.push(Value::Int(*v));
                    frame.pc += 1;
                }
                Instr::FConst(v) => {
                    frame.stack.push(Value::Float(*v));
                    frame.pc += 1;
                }
                Instr::ConstNull => {
                    frame.stack.push(Value::Null);
                    frame.pc += 1;
                }
                Instr::Dup => {
                    let v = *frame.stack.last().expect("verified");
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instr::Dup2 => {
                    let n = frame.stack.len();
                    let a = frame.stack[n - 2];
                    let b = frame.stack[n - 1];
                    frame.stack.push(a);
                    frame.stack.push(b);
                    frame.pc += 1;
                }
                Instr::Pop => {
                    let _ = pop!(frame);
                    frame.pc += 1;
                }
                Instr::Swap => {
                    let n = frame.stack.len();
                    frame.stack.swap(n - 1, n - 2);
                    frame.pc += 1;
                }
                Instr::Load(slot) => {
                    frame.stack.push(frame.locals[*slot as usize]);
                    frame.pc += 1;
                }
                Instr::Store(slot) => {
                    let v = pop!(frame);
                    frame.locals[*slot as usize] = v;
                    frame.pc += 1;
                }
                Instr::IInc(slot, delta) => {
                    let v = frame.locals[*slot as usize].as_int()?;
                    frame.locals[*slot as usize] = Value::Int(v.wrapping_add(*delta as i64));
                    frame.pc += 1;
                }
                Instr::IAdd => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                    frame.pc += 1;
                }
                Instr::ISub => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                    frame.pc += 1;
                }
                Instr::IMul => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                    frame.pc += 1;
                }
                Instr::IDiv => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_div(b)));
                    frame.pc += 1;
                }
                Instr::IRem => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_rem(b)));
                    frame.pc += 1;
                }
                Instr::INeg => {
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                    frame.pc += 1;
                }
                Instr::IShl => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_shl(b as u32 & 63)));
                    frame.pc += 1;
                }
                Instr::IShr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_shr(b as u32 & 63)));
                    frame.pc += 1;
                }
                Instr::IUShr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame
                        .stack
                        .push(Value::Int(((a as u64) >> (b as u32 & 63)) as i64));
                    frame.pc += 1;
                }
                Instr::IAnd => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a & b));
                    frame.pc += 1;
                }
                Instr::IOr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a | b));
                    frame.pc += 1;
                }
                Instr::IXor => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a ^ b));
                    frame.pc += 1;
                }
                Instr::FAdd => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a + b));
                    frame.pc += 1;
                }
                Instr::FSub => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a - b));
                    frame.pc += 1;
                }
                Instr::FMul => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a * b));
                    frame.pc += 1;
                }
                Instr::FDiv => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a / b));
                    frame.pc += 1;
                }
                Instr::FNeg => {
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(-a));
                    frame.pc += 1;
                }
                Instr::I2F => {
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Float(a as f64));
                    frame.pc += 1;
                }
                Instr::F2I => {
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Int(a as i64));
                    frame.pc += 1;
                }
                Instr::IfICmp(op, target) => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    if op.eval_i64(a, b) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfI(op, target) => {
                    let a = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    if op.eval_i64(a, 0) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfFCmp(op, target) => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    self.stats.branches += 1;
                    if op.eval_f64(a, b) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfNull(target) => {
                    let v = pop!(frame);
                    self.stats.branches += 1;
                    if matches!(v, Value::Null) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfNonNull(target) => {
                    let v = pop!(frame);
                    self.stats.branches += 1;
                    if !matches!(v, Value::Null) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::Goto(target) => {
                    frame.pc = *target;
                    frame.cur_block = NO_BLOCK;
                }
                Instr::TableSwitch {
                    low,
                    targets,
                    default,
                } => {
                    let v = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    self.stats.taken_branches += 1;
                    let idx = v.wrapping_sub(*low);
                    let target = if idx >= 0 && (idx as usize) < targets.len() {
                        targets[idx as usize]
                    } else {
                        *default
                    };
                    frame.pc = target;
                    frame.cur_block = NO_BLOCK;
                }
                Instr::InvokeStatic(callee) => {
                    let callee = *callee;
                    self.call(callee, program.function(callee).num_params(), false)?;
                }
                Instr::InvokeVirtual { slot, argc } => {
                    let (slot, argc) = (*slot, *argc);
                    let frame = self.frames.last_mut().expect("frame exists");
                    let recv_idx = frame.stack.len() - argc as usize;
                    let recv = frame.stack[recv_idx].as_ref_id()?;
                    let class = match self.heap.get(recv) {
                        HeapObj::Object { class, .. } => *class,
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object receiver",
                                found: "array",
                            })
                        }
                    };
                    let callee = program.class(class).resolve(slot);
                    self.stats.virtual_calls += 1;
                    self.call(callee, argc, true)?;
                }
                Instr::Return => {
                    let v = pop!(frame);
                    self.stats.returns += 1;
                    self.frames.pop();
                    match self.frames.last_mut() {
                        None => return Ok(Some(v)),
                        Some(caller) => caller.stack.push(v),
                    }
                }
                Instr::ReturnVoid => {
                    self.stats.returns += 1;
                    self.frames.pop();
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                }
                Instr::New(class) => {
                    let class = *class;
                    self.maybe_collect();
                    let num_fields = program.class(class).num_fields();
                    let r = self.heap.alloc_object(class, num_fields);
                    let frame = self.frames.last_mut().expect("frame exists");
                    frame.stack.push(Value::Ref(r));
                    frame.pc += 1;
                }
                Instr::GetField(n) => {
                    let obj = pop!(frame).as_ref_id()?;
                    let n = *n;
                    match self.heap.get(obj) {
                        HeapObj::Object { fields, .. } => {
                            let v = *fields.get(n as usize).ok_or(VmError::BadField {
                                field: n,
                                num_fields: fields.len() as u16,
                            })?;
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(v);
                            frame.pc += 1;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                Instr::PutField(n) => {
                    let v = pop!(frame);
                    let obj = pop!(frame).as_ref_id()?;
                    let n = *n;
                    frame.pc += 1;
                    match self.heap.get_mut(obj) {
                        HeapObj::Object { fields, .. } => {
                            let len = fields.len();
                            *fields.get_mut(n as usize).ok_or(VmError::BadField {
                                field: n,
                                num_fields: len as u16,
                            })? = v;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                Instr::NewArray => {
                    let len = pop!(frame).as_int()?;
                    self.maybe_collect();
                    let r = self.heap.alloc_array(len)?;
                    let frame = self.frames.last_mut().expect("frame exists");
                    frame.stack.push(Value::Ref(r));
                    frame.pc += 1;
                }
                Instr::ALoad => {
                    let idx = pop!(frame).as_int()?;
                    let arr = pop!(frame).as_ref_id()?;
                    match self.heap.get(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            let v = elems[idx as usize];
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(v);
                            frame.pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::AStore => {
                    let v = pop!(frame);
                    let idx = pop!(frame).as_int()?;
                    let arr = pop!(frame).as_ref_id()?;
                    frame.pc += 1;
                    match self.heap.get_mut(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            elems[idx as usize] = v;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::ArrayLen => {
                    let arr = pop!(frame).as_ref_id()?;
                    match self.heap.get(arr) {
                        HeapObj::Array { elems } => {
                            let len = elems.len() as i64;
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(Value::Int(len));
                            frame.pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::Intrinsic(intrinsic) => {
                    self.run_intrinsic(*intrinsic)?;
                }
                Instr::Nop => {
                    frame.pc += 1;
                }
            }
        }
    }

    /// Pops `argc` arguments from the current frame and pushes a callee
    /// frame. The caller's `pc` is advanced past the call first, so the
    /// return lands on the continuation block.
    fn call(&mut self, callee: FuncId, argc: u16, _virtual_call: bool) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(VmError::CallStackOverflow);
        }
        self.stats.calls += 1;
        let cf = self.program.function(callee);
        debug_assert_eq!(cf.num_params(), argc, "verified arity");
        let frame = self.frames.last_mut().expect("frame exists");
        frame.pc += 1;
        let split = frame.stack.len() - argc as usize;
        let mut callee_frame = Frame::new(callee, cf.num_locals(), &[]);
        callee_frame.locals[..argc as usize].copy_from_slice(&frame.stack[split..]);
        frame.stack.truncate(split);
        self.frames.push(callee_frame);
        self.stats.max_frame_depth = self.stats.max_frame_depth.max(self.frames.len());
        Ok(())
    }

    /// Executes one intrinsic on the current frame.
    fn run_intrinsic(&mut self, i: Intrinsic) -> Result<(), VmError> {
        let frame = self.frames.last_mut().expect("frame exists");
        macro_rules! popv {
            () => {
                frame.stack.pop().expect("verified code cannot underflow")
            };
        }
        match i {
            Intrinsic::Sqrt => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.sqrt()));
            }
            Intrinsic::Sin => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.sin()));
            }
            Intrinsic::Cos => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.cos()));
            }
            Intrinsic::Exp => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.exp()));
            }
            Intrinsic::Log => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.ln()));
            }
            Intrinsic::AbsF => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.abs()));
            }
            Intrinsic::AbsI => {
                let v = popv!().as_int()?;
                frame.stack.push(Value::Int(v.wrapping_abs()));
            }
            Intrinsic::MinI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                frame.stack.push(Value::Int(a.min(b)));
            }
            Intrinsic::MaxI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                frame.stack.push(Value::Int(a.max(b)));
            }
            Intrinsic::PrintInt => {
                let v = popv!().as_int()?;
                if self.config.capture_output {
                    self.output.push(OutputItem::Int(v));
                }
            }
            Intrinsic::PrintFloat => {
                let v = popv!().as_float()?;
                if self.config.capture_output {
                    self.output.push(OutputItem::Float(v));
                }
            }
            Intrinsic::Checksum => {
                let v = popv!().as_int()?;
                self.checksum = fold_checksum(self.checksum, v);
            }
        }
        let frame = self.frames.last_mut().expect("frame exists");
        frame.pc += 1;
        Ok(())
    }

    /// Runs a collection if the heap suggests one, using all frame slots as
    /// roots.
    fn maybe_collect(&mut self) {
        if self.heap.should_collect() {
            let Vm { heap, frames, .. } = self;
            let roots = frames.iter().flat_map(|f| {
                f.stack
                    .iter()
                    .chain(f.locals.iter())
                    .filter_map(|v| match v {
                        Value::Ref(r) => Some(*r),
                        _ => None,
                    })
            });
            heap.collect(roots);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NullObserver, RecordingObserver};
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    fn run_main(pb: ProgramBuilder, entry: FuncId, args: &[Value]) -> (Option<Value>, ExecStats) {
        let program = pb.build(entry).expect("program builds");
        let mut vm = Vm::new(&program);
        let r = vm.run(args, &mut NullObserver).expect("program runs");
        (r, vm.stats())
    }

    #[test]
    fn arithmetic_and_return() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 2, true);
        pb.function_mut(f)
            .load(0)
            .load(1)
            .imul()
            .iconst(1)
            .iadd()
            .ret();
        let (r, stats) = run_main(pb, f, &[Value::Int(6), Value::Int(7)]);
        assert_eq!(r, Some(Value::Int(43)));
        assert_eq!(stats.block_dispatches, 1);
        assert_eq!(stats.instructions, 6);
    }

    #[test]
    fn loop_counts_block_dispatches_per_iteration() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let (r, stats) = run_main(pb, f, &[Value::Int(10)]);
        assert_eq!(r, Some(Value::Int(55)));
        // Blocks: entry(1) + 11 head checks + 10 bodies + 1 exit = 23.
        assert_eq!(stats.block_dispatches, 23);
        // The head `if` executes 11 times; only the final exit is taken.
        assert_eq!(stats.branches, 11);
        assert_eq!(stats.taken_branches, 1);
    }

    #[test]
    fn taken_branch_accounting() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Gt, exit);
        b.iconst(0).ret();
        b.bind(exit);
        b.iconst(1).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let r = vm.run(&[Value::Int(5)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(1)));
        assert_eq!(vm.stats().branches, 1);
        assert_eq!(vm.stats().taken_branches, 1);
        let r = vm.run(&[Value::Int(-5)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(0)));
        assert_eq!(vm.stats().taken_branches, 0);
    }

    #[test]
    fn static_call_passes_args_in_order() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_function("sub", 2, true);
        pb.function_mut(callee).load(0).load(1).isub().ret();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .iconst(10)
            .iconst(3)
            .invoke_static(callee)
            .ret();
        let (r, stats) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(7)));
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.returns, 2);
        assert_eq!(stats.max_frame_depth, 2);
    }

    #[test]
    fn virtual_call_dispatches_on_receiver_class() {
        let mut pb = ProgramBuilder::new();
        let am = pb.declare_function("A.val", 1, true);
        pb.function_mut(am).iconst(10).ret();
        let bm = pb.declare_function("B.val", 1, true);
        pb.function_mut(bm).iconst(20).ret();
        let f = pb.declare_function("main", 1, true);
        let a = pb.declare_class("A", None, 0);
        let slot = pb.add_method(a, am);
        let b = pb.declare_class("B", Some(a), 0);
        pb.override_method(b, slot, bm);
        {
            let body = pb.function_mut(f);
            let use_b = body.new_label();
            let call = body.new_label();
            body.load(0).if_i(CmpOp::Ne, use_b);
            body.new_obj(a).goto(call);
            body.bind(use_b);
            body.new_obj(b);
            body.bind(call);
            body.invoke_virtual(slot, 1).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(
            vm.run(&[Value::Int(0)], &mut NullObserver).unwrap(),
            Some(Value::Int(10))
        );
        assert_eq!(
            vm.run(&[Value::Int(1)], &mut NullObserver).unwrap(),
            Some(Value::Int(20))
        );
        assert_eq!(vm.stats().virtual_calls, 1);
    }

    #[test]
    fn recursion_computes_factorial() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("fact", 1, true);
        {
            let b = pb.function_mut(f);
            let base = b.new_label();
            b.load(0).iconst(2).if_icmp(CmpOp::Lt, base);
            b.load(0)
                .load(0)
                .iconst(1)
                .isub()
                .invoke_static(f)
                .imul()
                .ret();
            b.bind(base);
            b.iconst(1).ret();
        }
        let (r, stats) = run_main(pb, f, &[Value::Int(10)]);
        assert_eq!(r, Some(Value::Int(3628800)));
        assert_eq!(stats.max_frame_depth, 10);
    }

    #[test]
    fn arrays_and_objects_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        let c = pb.declare_class("Box", None, 1);
        {
            let b = pb.function_mut(f);
            let arr = b.alloc_local();
            let obj = b.alloc_local();
            b.iconst(3).new_array().store(arr);
            b.load(arr).iconst(1).iconst(42).astore();
            b.new_obj(c).store(obj);
            b.load(obj).load(arr).iconst(1).aload().put_field(0);
            b.load(obj).get_field(0).load(arr).array_len().iadd().ret();
        }
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(45)));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f).iconst(1).load(0).idiv().ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(
            vm.run(&[Value::Int(0)], &mut NullObserver),
            Err(VmError::DivisionByZero)
        );
    }

    #[test]
    fn array_bounds_trap() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f)
            .iconst(2)
            .new_array()
            .load(0)
            .aload()
            .ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[Value::Int(5)], &mut NullObserver),
            Err(VmError::IndexOutOfBounds { index: 5, len: 2 })
        ));
        assert!(matches!(
            vm.run(&[Value::Int(-1)], &mut NullObserver),
            Err(VmError::IndexOutOfBounds { index: -1, .. })
        ));
    }

    #[test]
    fn null_dereference_traps() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).const_null().get_field(0).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert_eq!(vm.run(&[], &mut NullObserver), Err(VmError::NullPointer));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let head = b.bind_new_label();
        b.nop().goto(head);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                max_steps: 1000,
                ..VmConfig::default()
            },
        );
        assert_eq!(vm.run(&[], &mut NullObserver), Err(VmError::OutOfFuel));
        assert_eq!(vm.stats().instructions, 1000);
    }

    #[test]
    fn stack_overflow_on_unbounded_recursion() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).invoke_static(f).ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                max_frames: 64,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(&[], &mut NullObserver),
            Err(VmError::CallStackOverflow)
        );
    }

    #[test]
    fn bad_entry_args_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 2, false);
        pb.function_mut(f).ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[Value::Int(1)], &mut NullObserver),
            Err(VmError::BadEntryArgs {
                expected: 2,
                provided: 1,
                ..
            })
        ));
    }

    #[test]
    fn checksum_and_output_intrinsics() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f)
            .iconst(7)
            .intrinsic(Intrinsic::Checksum)
            .iconst(1)
            .intrinsic(Intrinsic::PrintInt)
            .fconst(2.5)
            .intrinsic(Intrinsic::PrintFloat)
            .ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        vm.run(&[], &mut NullObserver).unwrap();
        assert_ne!(vm.checksum(), 0);
        assert_eq!(vm.output(), &[OutputItem::Int(1), OutputItem::Float(2.5)]);
    }

    #[test]
    fn float_intrinsics_compute() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .fconst(16.0)
            .intrinsic(Intrinsic::Sqrt)
            .f2i()
            .ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(4)));
    }

    #[test]
    fn gc_runs_during_allocation_storm() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let i = b.alloc_local();
        b.iconst(5000).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).if_i(CmpOp::Le, exit);
        b.iconst(4).new_array().pop(); // garbage
        b.iinc(i, -1).goto(head);
        b.bind(exit);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                gc_threshold: 256,
                ..VmConfig::default()
            },
        );
        vm.run(&[], &mut NullObserver).unwrap();
        let hs = vm.heap_stats();
        assert_eq!(hs.allocations, 5000);
        assert!(hs.collections >= 1, "expected at least one collection");
        assert!(hs.live < 5000);
    }

    #[test]
    fn observer_sees_complete_stream_across_calls() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare_function("leaf", 0, true);
        pb.function_mut(leaf).iconst(1).ret();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).invoke_static(leaf).pop().ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let mut rec = RecordingObserver::new();
        vm.run(&[], &mut rec).unwrap();
        assert_eq!(
            rec.blocks,
            vec![
                BlockId::new(f, 0),    // main entry (call block)
                BlockId::new(leaf, 0), // callee
                BlockId::new(f, 1),    // continuation after return
            ]
        );
        assert_eq!(vm.stats().block_dispatches, 3);
    }

    #[test]
    fn self_loop_block_dispatches_every_iteration() {
        // A single-block loop body jumping to itself must count one
        // dispatch per iteration (the sentinel mechanism).
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        let b = pb.function_mut(f);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.iinc(0, -1).load(0).if_i(CmpOp::Gt, head);
        b.goto(exit);
        b.bind(exit);
        b.ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        let mut rec = RecordingObserver::new();
        vm.run(&[Value::Int(5)], &mut rec).unwrap();
        let head_block = BlockId::new(f, 0);
        let head_count = rec.blocks.iter().filter(|&&b| b == head_block).count();
        assert_eq!(head_count, 5, "each self-loop iteration is a dispatch");
    }

    #[test]
    fn vm_is_reusable_across_runs() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f).load(0).iconst(2).imul().ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        for i in 0..5 {
            let r = vm.run(&[Value::Int(i)], &mut NullObserver).unwrap();
            assert_eq!(r, Some(Value::Int(i * 2)));
        }
    }

    #[test]
    fn table_switch_selects_and_defaults() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let c0 = b.new_label();
            let c1 = b.new_label();
            let dfl = b.new_label();
            b.load(0).table_switch(10, &[c0, c1], dfl);
            b.bind(c0);
            b.iconst(100).ret();
            b.bind(c1);
            b.iconst(101).ret();
            b.bind(dfl);
            b.iconst(-1).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        for (input, want) in [(10, 100), (11, 101), (9, -1), (12, -1), (i64::MIN, -1)] {
            let r = vm.run(&[Value::Int(input)], &mut NullObserver).unwrap();
            assert_eq!(r, Some(Value::Int(want)), "input {input}");
        }
    }

    #[test]
    fn wrapping_semantics_match_java() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(i64::MAX).iconst(1).iadd().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(i64::MIN)));
    }

    #[test]
    fn dup2_and_swap_semantics() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        // [1 2] dup2 -> [1 2 1 2]; add top two -> [1 2 3]; swap -> [1 3 2];
        // sub -> [1 1]; mul -> [1]. Result 1*... compute: 3-2? order:
        // swap makes top=2 below=3: isub pops b=2,a=3 -> 1; imul 1*1=1.
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .dup2()
            .iadd()
            .swap()
            .isub()
            .imul()
            .ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(1)));
    }

    #[test]
    fn f2i_saturates_and_nan_is_zero() {
        for (input, want) in [
            (1e300, i64::MAX),
            (-1e300, i64::MIN),
            (f64::NAN, 0),
            (2.9, 2),
            (-2.9, -2),
        ] {
            let mut pb = ProgramBuilder::new();
            let f = pb.declare_function("main", 0, true);
            pb.function_mut(f).fconst(input).f2i().ret();
            let (r, _) = run_main(pb, f, &[]);
            assert_eq!(r, Some(Value::Int(want)), "input {input}");
        }
    }

    #[test]
    fn shift_counts_are_masked_to_six_bits() {
        // Like the JVM: shift counts are taken modulo 64.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(1).iconst(65).ishl().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(2)));

        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(-8).iconst(1).iushr().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(((-8i64) as u64 >> 1) as i64)));
    }

    #[test]
    fn gc_preserves_object_graphs_across_calls() {
        // A callee builds a linked chain; the caller allocates garbage to
        // force collections; the chain must survive intact.
        let mut pb = ProgramBuilder::new();
        let node_cls = pb.declare_class("Node", None, 2); // [next, payload]
        let build = pb.declare_function("build", 1, true);
        {
            let b = pb.function_mut(build);
            // Builds a chain of length n, payloads n..1, returns head.
            let head = b.alloc_local();
            b.const_null().store(head);
            let loop_head = b.bind_new_label();
            let exit = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            b.new_obj(node_cls).dup().dup(); // three refs to fresh node
            b.load(head).put_field(0); // node.next = head
            b.load(0).put_field(1); // node.payload = n
            b.store(head); // head = node
            b.iinc(0, -1).goto(loop_head);
            b.bind(exit);
            b.load(head).ret();
        }
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let chain = b.alloc_local();
            let i = b.alloc_local();
            let sum = b.alloc_local();
            b.load(0).invoke_static(build).store(chain);
            // Garbage storm.
            b.iconst(2000).store(i);
            let g_head = b.bind_new_label();
            let g_exit = b.new_label();
            b.load(i).if_i(CmpOp::Le, g_exit);
            b.iconst(8).new_array().pop();
            b.iinc(i, -1).goto(g_head);
            b.bind(g_exit);
            // Walk the chain and sum payloads.
            b.iconst(0).store(sum);
            let w_head = b.bind_new_label();
            let w_exit = b.new_label();
            b.load(chain).if_null(w_exit);
            b.load(sum).load(chain).get_field(1).iadd().store(sum);
            b.load(chain).get_field(0).store(chain);
            b.goto(w_head);
            b.bind(w_exit);
            b.load(sum).ret();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                gc_threshold: 64,
                ..VmConfig::default()
            },
        );
        let r = vm.run(&[Value::Int(50)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(50 * 51 / 2)));
        assert!(vm.heap_stats().collections > 0, "GC must have run");
    }

    #[test]
    fn output_capture_can_be_disabled() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f)
            .iconst(1)
            .intrinsic(Intrinsic::PrintInt)
            .ret_void();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::with_config(
            &program,
            VmConfig {
                capture_output: false,
                ..VmConfig::default()
            },
        );
        vm.run(&[], &mut NullObserver).unwrap();
        assert!(vm.output().is_empty());
    }

    #[test]
    fn field_access_on_array_is_a_type_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(2).new_array().get_field(0).ret();
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        assert!(matches!(
            vm.run(&[], &mut NullObserver),
            Err(VmError::TypeError {
                expected: "object",
                ..
            })
        ));
    }

    #[test]
    fn min_div_neg_one_wraps_instead_of_trapping() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).iconst(i64::MIN).iconst(-1).idiv().ret();
        let (r, _) = run_main(pb, f, &[]);
        assert_eq!(r, Some(Value::Int(i64::MIN)));
    }
}

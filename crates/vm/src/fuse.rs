//! Profile-driven superinstruction fusion for the decoded interpreter.
//!
//! The paper's thesis is that dynamic profiles should drive code
//! generation; this module closes that loop inside the interpreter
//! itself. A profiling run counts block dispatches ([`BlockCounts`]),
//! the counts are multiplied by static intra-block opcode adjacency to
//! recover dynamic pair/triple frequencies ([`FusionProfile`]), and a
//! per-function selection pass ([`FusionPlan::select`]) picks which
//! entries of the superinstruction table pay for themselves. The
//! rewrite ([`apply`]) then *quickens* the flat [`DOp`] streams in
//! place: only the group head's opcode byte changes to a fused opcode;
//! every constituent keeps its slot and operands.
//!
//! # Stream-rewrite invariants
//!
//! In-place quickening is what keeps the rest of the system oblivious:
//!
//! * **Stream length never changes.** `pc_map`, `block_of`, branch and
//!   switch targets, and trace side-exit dpcs all stay valid because no
//!   slot moves.
//! * **Shadow slots keep their original instructions.** The slots
//!   covered by a fused head still hold the original [`DOp`]s; the
//!   fused handlers read their operands from `code[pc+1]`/`code[pc+2]`,
//!   and a side exit resuming *into* the middle of a group simply
//!   executes the remaining constituents unfused.
//! * **Fusion is intra-block.** No pattern element matches
//!   `ENTER_BLOCK` (opcode 0), so a group can never swallow a block
//!   marker and the per-block dispatch stream — the profiler's input —
//!   is bit-identical with fusion on. Branch targets always land on
//!   markers, so control flow can never jump into the middle of a
//!   group either.
//! * **Heads are exact.** The first element of every pattern is a
//!   concrete opcode ([`Pat::Op`]), so [`unfuse`] can restore the
//!   original stream from the table alone; applying a plan always
//!   unfuses first, making [`apply`] idempotent.
//!
//! The fused handlers in the dispatch loop preserve exact interpreter
//! parity: per-constituent `instructions` accounting (with a fuel gate
//! *between* constituents that falls back to the shadow slots so
//! `OutOfFuel` fires at exactly the reference instruction), the
//! reference operand evaluation and error order, and the branch
//! counters of the constituent compare ops.

use jvm_bytecode::{BlockId, FuncId, Program};

use crate::decode::{op, DOp, DecodedProgram};
use crate::observer::DispatchObserver;

/// First fused opcode; base opcodes occupy `0..FUSED_BASE`.
pub const FUSED_BASE: u8 = 76;

/// One element of a fusion pattern: an exact opcode or an opcode
/// family. No element matches `ENTER_BLOCK`, which is what confines
/// fusion to a single basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pat {
    /// Exactly this opcode.
    Op(u8),
    /// Any int binop (`IADD..=IXOR`), including the trapping div/rem.
    IntBin,
    /// Any float binop (`FADD..=FDIV`).
    FltBin,
    /// Any two-operand int compare-and-branch (`IF_ICMP_*`).
    IfICmp,
}

impl Pat {
    /// Does this element match opcode `o`?
    #[inline]
    pub fn matches(self, o: u8) -> bool {
        match self {
            Pat::Op(x) => o == x,
            Pat::IntBin => (op::IADD..=op::IXOR).contains(&o),
            Pat::FltBin => (op::FADD..=op::FDIV).contains(&o),
            Pat::IfICmp => (op::IF_ICMP_EQ..=op::IF_ICMP_GE).contains(&o),
        }
    }
}

/// One entry of the superinstruction table.
#[derive(Debug, Clone, Copy)]
pub struct FusionDesc {
    /// The fused opcode planted on the group head.
    pub opcode: u8,
    /// Mnemonic, used in disassembly, stats and bench JSON.
    pub name: &'static str,
    /// The constituent shape; `pattern[0]` is always [`Pat::Op`].
    pub pattern: &'static [Pat],
}

impl FusionDesc {
    /// Group width in stream slots (2 or 3).
    #[inline]
    pub fn width(&self) -> usize {
        self.pattern.len()
    }
}

macro_rules! superinstructions {
    ($($idx:literal $konst:ident $name:literal = [$($pat:expr),+ $(,)?];)+) => {
        /// Fused opcode constants, `FUSED_BASE + table index`.
        pub mod fop {
            $(
                #[allow(missing_docs)]
                pub const $konst: u8 = super::FUSED_BASE + $idx;
            )+
        }

        /// Number of superinstruction patterns.
        pub const NUM_PATTERNS: usize = [$($idx),+].len();

        /// The superinstruction table, ordered by fused opcode and with
        /// triples before pairs so greedy matching is longest-first.
        /// The pattern set is drawn from the opcode-pair/triple
        /// histograms of the six workloads (`hot_opcode_pairs` /
        /// `hot_opcode_triples` in BENCH_interp.json); *selection* per
        /// function is what stays profile-driven at runtime.
        pub static FUSION_TABLE: &[FusionDesc] = &[
            $(FusionDesc { opcode: fop::$konst, name: $name, pattern: &[$($pat),+] },)+
        ];
    };
}

superinstructions! {
    0  LOAD_LOAD_IBIN   "load_load_ibin"   = [Pat::Op(op::LOAD), Pat::Op(op::LOAD), Pat::IntBin];
    1  LOAD_ICONST_IBIN "load_iconst_ibin" = [Pat::Op(op::LOAD), Pat::Op(op::ICONST), Pat::IntBin];
    2  LOAD_LOAD_ICMP   "load_load_icmp"   = [Pat::Op(op::LOAD), Pat::Op(op::LOAD), Pat::IfICmp];
    3  LOAD_LOAD        "load_load"        = [Pat::Op(op::LOAD), Pat::Op(op::LOAD)];
    4  LOAD_ICONST      "load_iconst"      = [Pat::Op(op::LOAD), Pat::Op(op::ICONST)];
    5  STORE_LOAD       "store_load"       = [Pat::Op(op::STORE), Pat::Op(op::LOAD)];
    6  LOAD_IBIN        "load_ibin"        = [Pat::Op(op::LOAD), Pat::IntBin];
    7  ICONST_IBIN      "iconst_ibin"      = [Pat::Op(op::ICONST), Pat::IntBin];
    8  LOAD_ICMP        "load_icmp"        = [Pat::Op(op::LOAD), Pat::IfICmp];
    9  ICONST_ICMP      "iconst_icmp"      = [Pat::Op(op::ICONST), Pat::IfICmp];
    10 IINC_GOTO        "iinc_goto"        = [Pat::Op(op::IINC), Pat::Op(op::GOTO)];
    11 IADD_STORE       "iadd_store"       = [Pat::Op(op::IADD), Pat::Op(op::STORE)];
    12 FCONST_FBIN      "fconst_fbin"      = [Pat::Op(op::FCONST), Pat::FltBin];
    13 LOAD_ALOAD       "load_aload"       = [Pat::Op(op::LOAD), Pat::Op(op::ALOAD)];
    14 ICONST_ALOAD     "iconst_aload"     = [Pat::Op(op::ICONST), Pat::Op(op::ALOAD)];
    15 ALOAD_IBIN       "aload_ibin"       = [Pat::Op(op::ALOAD), Pat::IntBin];
    16 ALOAD_FBIN       "aload_fbin"       = [Pat::Op(op::ALOAD), Pat::FltBin];
}

/// Is `o` a fused opcode?
#[inline]
pub fn is_fused(o: u8) -> bool {
    o >= FUSED_BASE && ((o - FUSED_BASE) as usize) < NUM_PATTERNS
}

/// Table entry for a fused opcode.
#[inline]
pub fn desc_for(fused: u8) -> &'static FusionDesc {
    debug_assert!(is_fused(fused));
    &FUSION_TABLE[(fused - FUSED_BASE) as usize]
}

/// The original head opcode of a fused group: pattern heads are always
/// exact, so the source stream is recoverable from the table alone.
#[inline]
pub fn base_op(fused: u8) -> u8 {
    match desc_for(fused).pattern[0] {
        Pat::Op(x) => x,
        _ => unreachable!("pattern heads are exact opcodes"),
    }
}

/// Selection thresholds: a pattern is fused in a function only when the
/// profile says the dynamic count clears both bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionConfig {
    /// Absolute floor of estimated dynamic occurrences per function.
    pub min_count: u64,
    /// Floor as a fraction of the function's dynamic instructions.
    pub min_frequency: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            min_count: 32,
            min_frequency: 0.005,
        }
    }
}

impl FusionConfig {
    /// Fuse every statically matched site regardless of the profile;
    /// used by tests and A/B harnesses.
    pub fn aggressive() -> Self {
        FusionConfig {
            min_count: 1,
            min_frequency: 0.0,
        }
    }
}

/// Per-block dispatch counters: the fusion profiler's input. Attach as
/// the [`DispatchObserver`] of a profiling run; the hot loop pays one
/// indexed increment per block dispatch and nothing per instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockCounts {
    /// `counts[func][block]` = dispatches observed.
    pub counts: Vec<Vec<u64>>,
}

impl BlockCounts {
    /// Zeroed counters shaped for `program`.
    pub fn for_program(program: &Program) -> Self {
        BlockCounts {
            counts: program
                .functions()
                .iter()
                .map(|f| vec![0; f.block_count()])
                .collect(),
        }
    }

    /// Total dispatches observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Visit count for one block (0 if out of shape).
    #[inline]
    pub fn get(&self, func: usize, block: usize) -> u64 {
        self.counts
            .get(func)
            .and_then(|f| f.get(block))
            .copied()
            .unwrap_or(0)
    }
}

impl DispatchObserver for BlockCounts {
    #[inline]
    fn on_block(&mut self, b: BlockId) {
        self.counts[b.func.0 as usize][b.block as usize] += 1;
    }
}

/// Estimated dynamic pattern frequencies: block-visit counts folded
/// over the static intra-block adjacencies of each decoded stream.
///
/// The scan mirrors the greedy longest-first rewrite with *all*
/// patterns enabled, so each count is the number of times the
/// corresponding fused handler would have run.
#[derive(Debug, Clone, Default)]
pub struct FusionProfile {
    /// `counts[func][pattern]` = estimated dynamic group executions.
    counts: Vec<[u64; NUM_PATTERNS]>,
    /// Dynamic instructions per function (visits × block lengths).
    dyn_instrs: Vec<u64>,
    /// The raw block-visit counters, kept for the rewrite's
    /// dispatches-eliminated estimate.
    visits: BlockCounts,
}

impl FusionProfile {
    /// Folds a profiling run's block counts over the decoded streams.
    pub fn collect(decoded: &DecodedProgram, visits: BlockCounts) -> Self {
        let mut counts = vec![[0u64; NUM_PATTERNS]; decoded.funcs.len()];
        let mut dyn_instrs = vec![0u64; decoded.funcs.len()];
        for (f, df) in decoded.funcs.iter().enumerate() {
            let mut i = 0usize;
            while i < df.code.len() {
                if df.code[i].op == op::ENTER_BLOCK {
                    i += 1;
                    continue;
                }
                let v = visits.get(f, df.block_of[i] as usize);
                dyn_instrs[f] += v;
                if let Some(desc) = match_at(&df.code, i, u32::MAX) {
                    counts[f][(desc.opcode - FUSED_BASE) as usize] += v;
                    // Account the rest of the group's instructions too.
                    dyn_instrs[f] += v * (desc.width() as u64 - 1);
                    i += desc.width();
                } else {
                    i += 1;
                }
            }
        }
        FusionProfile {
            counts,
            dyn_instrs,
            visits,
        }
    }

    /// Estimated dynamic executions of `pattern` in `func`.
    pub fn count(&self, func: usize, pattern: usize) -> u64 {
        self.counts[func][pattern]
    }
}

/// A per-function selection of superinstruction patterns, derived from
/// a [`FusionProfile`]: different workloads (different profiles) select
/// different pattern sets.
#[derive(Debug, Clone, Default)]
pub struct FusionPlan {
    /// Bitmask over `FUSION_TABLE` per function.
    selected: Vec<u32>,
    profile: FusionProfile,
}

impl FusionPlan {
    /// Thresholds the profile: pattern `p` is enabled in function `f`
    /// iff its estimated dynamic count clears both configured bars.
    pub fn select(profile: FusionProfile, cfg: &FusionConfig) -> Self {
        let mut selected = vec![0u32; profile.counts.len()];
        for (f, per_pattern) in profile.counts.iter().enumerate() {
            let rel_floor = (cfg.min_frequency * profile.dyn_instrs[f] as f64).ceil() as u64;
            let floor = cfg.min_count.max(rel_floor);
            for (p, &n) in per_pattern.iter().enumerate() {
                if n >= floor && n > 0 {
                    selected[f] |= 1 << p;
                }
            }
        }
        FusionPlan { selected, profile }
    }

    /// A plan that fuses every statically matched site in every
    /// function; used by golden tests and A/B harnesses.
    pub fn all(num_funcs: usize) -> Self {
        FusionPlan {
            selected: vec![u32::MAX; num_funcs],
            profile: FusionProfile::default(),
        }
    }

    /// Names of the patterns enabled for `func`, table order.
    pub fn selected_names(&self, func: usize) -> Vec<&'static str> {
        let mask = self.selected.get(func).copied().unwrap_or(0);
        FUSION_TABLE
            .iter()
            .enumerate()
            .filter(|(p, _)| mask & (1 << *p) != 0)
            .map(|(_, d)| d.name)
            .collect()
    }

    /// True when no function selects any pattern.
    pub fn is_empty(&self) -> bool {
        self.selected.iter().all(|&m| m == 0)
    }
}

/// Per-function rewrite statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncFusion {
    /// The function.
    pub func: FuncId,
    /// Static sites matching *any* table pattern (selected or not).
    pub candidates: u64,
    /// Groups actually planted.
    pub fused: u64,
    /// Estimated dynamic dispatches eliminated (profile visits ×
    /// (width−1) summed over planted groups).
    pub dispatches_eliminated: u64,
    /// Names of the patterns the plan enabled for this function.
    pub selected: Vec<&'static str>,
}

/// What a fusion rewrite did, per function and per pattern.
#[derive(Debug, Clone, Default)]
pub struct FusionReport {
    /// Per-function stats, indexed by function.
    pub funcs: Vec<FuncFusion>,
    /// Static planted sites per pattern, table order.
    pub by_pattern: Vec<(&'static str, u64)>,
}

impl FusionReport {
    /// Total static candidate sites.
    pub fn candidates(&self) -> u64 {
        self.funcs.iter().map(|f| f.candidates).sum()
    }

    /// Total groups planted.
    pub fn fused(&self) -> u64 {
        self.funcs.iter().map(|f| f.fused).sum()
    }

    /// Total estimated dynamic dispatches eliminated.
    pub fn dispatches_eliminated(&self) -> u64 {
        self.funcs.iter().map(|f| f.dispatches_eliminated).sum()
    }

    /// Union of selected pattern names across functions, table order.
    pub fn selected_union(&self) -> Vec<&'static str> {
        FUSION_TABLE
            .iter()
            .filter(|d| self.funcs.iter().any(|f| f.selected.contains(&d.name)))
            .map(|d| d.name)
            .collect()
    }
}

/// Longest-first greedy match of an enabled pattern at `code[i]`.
/// Table order puts triples first; `mask` restricts to the plan's
/// selection. Never matches a marker or an already-fused head (no
/// element matches opcodes outside the base set).
fn match_at(code: &[DOp], i: usize, mask: u32) -> Option<&'static FusionDesc> {
    for (p, desc) in FUSION_TABLE.iter().enumerate() {
        if mask & (1 << p) == 0 {
            continue;
        }
        let w = desc.width();
        if i + w <= code.len()
            && desc
                .pattern
                .iter()
                .enumerate()
                .all(|(k, pat)| pat.matches(code[i + k].op))
        {
            return Some(desc);
        }
    }
    None
}

/// Restores every decoded stream to its unfused form (idempotent).
pub fn unfuse(decoded: &mut DecodedProgram) {
    for df in &mut decoded.funcs {
        for d in &mut df.code {
            if is_fused(d.op) {
                d.op = base_op(d.op);
            }
        }
    }
}

/// Rewrites the decoded streams according to `plan`: unfuses first,
/// then plants fused opcodes on group heads (greedy, longest-first,
/// left-to-right, intra-block). Operands and shadow slots are left
/// untouched.
pub fn apply(decoded: &mut DecodedProgram, plan: &FusionPlan) -> FusionReport {
    unfuse(decoded);
    let mut report = FusionReport {
        funcs: Vec::with_capacity(decoded.funcs.len()),
        by_pattern: FUSION_TABLE.iter().map(|d| (d.name, 0)).collect(),
    };
    for (f, df) in decoded.funcs.iter_mut().enumerate() {
        let mut stats = FuncFusion {
            func: FuncId(f as u32),
            candidates: 0,
            fused: 0,
            dispatches_eliminated: 0,
            selected: plan.selected_names(f),
        };
        // Candidate census: greedy scan with every pattern enabled.
        let mut i = 0usize;
        while i < df.code.len() {
            if df.code[i].op == op::ENTER_BLOCK {
                i += 1;
                continue;
            }
            if let Some(desc) = match_at(&df.code, i, u32::MAX) {
                stats.candidates += 1;
                i += desc.width();
            } else {
                i += 1;
            }
        }
        // The rewrite proper: greedy scan with the plan's selection.
        let mask = plan.selected.get(f).copied().unwrap_or(0);
        let mut i = 0usize;
        while i < df.code.len() {
            if df.code[i].op == op::ENTER_BLOCK {
                i += 1;
                continue;
            }
            if let Some(desc) = match_at(&df.code, i, mask) {
                df.code[i].op = desc.opcode;
                stats.fused += 1;
                report.by_pattern[(desc.opcode - FUSED_BASE) as usize].1 += 1;
                stats.dispatches_eliminated +=
                    plan.profile.visits.get(f, df.block_of[i] as usize) * (desc.width() as u64 - 1);
                i += desc.width();
            } else {
                i += 1;
            }
        }
        report.funcs.push(stats);
    }
    report
}

/// Deliberately broken rewrites for testing the testers: each variant
/// plants a bug the fusion differential / conformance lockstep must
/// catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseQuirk {
    /// Plants a `load_load` head whose second "constituent" is the next
    /// block's `ENTER_BLOCK` marker — fusing across a block boundary.
    /// The group swallows the marker, so a block dispatch (and its
    /// observer event) silently disappears and the marker's operand
    /// field is misread as a local index.
    FuseAcrossBlockBoundary,
}

/// Plants `quirk` into an (already fused) decoded program. Returns
/// `false` when the program has no site with the required shape. Only
/// sites not covered by an existing fused group are considered, so the
/// planted bug is guaranteed to execute when its block does.
pub fn plant_quirk(decoded: &mut DecodedProgram, quirk: FuseQuirk) -> bool {
    match quirk {
        FuseQuirk::FuseAcrossBlockBoundary => {
            for df in &mut decoded.funcs {
                let mut i = 0usize;
                while i < df.code.len() {
                    let o = df.code[i].op;
                    if is_fused(o) {
                        i += desc_for(o).width();
                        continue;
                    }
                    if o == op::LOAD
                        && i + 1 < df.code.len()
                        && df.code[i + 1].op == op::ENTER_BLOCK
                    {
                        df.code[i].op = fop::LOAD_LOAD;
                        return true;
                    }
                    i += 1;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_ordered_and_heads_are_exact() {
        assert_eq!(FUSION_TABLE.len(), NUM_PATTERNS);
        let mut prev_width = usize::MAX;
        for (p, desc) in FUSION_TABLE.iter().enumerate() {
            assert_eq!(
                desc.opcode,
                FUSED_BASE + p as u8,
                "table order must equal opcode order"
            );
            assert!(
                matches!(desc.pattern[0], Pat::Op(_)),
                "{}: head must be exact for unfuse",
                desc.name
            );
            assert!(
                desc.width() >= 2 && desc.width() <= 3,
                "{}: width out of range",
                desc.name
            );
            assert!(
                desc.width() <= prev_width,
                "{}: triples must precede pairs (longest-first matching)",
                desc.name
            );
            prev_width = prev_width.min(desc.width());
            for pat in desc.pattern {
                assert!(
                    !pat.matches(op::ENTER_BLOCK),
                    "{}: no element may match a block marker",
                    desc.name
                );
                for f in FUSED_BASE..=u8::MAX {
                    assert!(
                        !pat.matches(f),
                        "{}: no element may match a fused opcode",
                        desc.name
                    );
                }
            }
        }
    }

    #[test]
    fn fused_opcodes_do_not_collide_with_base_ops() {
        for desc in FUSION_TABLE {
            assert!(is_fused(desc.opcode));
            assert!(desc.opcode >= FUSED_BASE);
            assert_eq!(
                base_op(desc.opcode),
                match desc.pattern[0] {
                    Pat::Op(x) => x,
                    _ => unreachable!(),
                }
            );
        }
        assert!(!is_fused(op::CHECKSUM));
        assert!(!is_fused(op::ENTER_BLOCK));
        assert!(!is_fused(FUSED_BASE + NUM_PATTERNS as u8));
    }
}

//! The frame arena: one contiguous `Value` slab for every activation's
//! locals **and** operand stack.
//!
//! The classic interpreter allocates two `Vec<Value>`s per call (locals +
//! stack). The arena replaces both with per-frame regions of a single
//! growing slab:
//!
//! ```text
//! slab: [ frame0 locals | frame0 stack | frame1 locals | frame1 stack | .. ]
//!         ^base0          ^stack_base0   ^base1 = limit0
//! ```
//!
//! Region sizes are static per function (`num_locals + max_stack`, with
//! `max_stack` proven by the verifier's depth analysis), so a call is a
//! pointer bump plus an argument `copy_within`, and a return is a pop.
//! Locals are filled **args-first**: arguments are copied into the region
//! head and only the `argc..num_locals` tail is zeroed — zeroing the tail
//! is mandatory on every push because the slab reuses memory of returned
//! frames, but the argument prefix is never written twice.
//!
//! The live values of a frame always occupy the contiguous range
//! `base..sp`, which makes GC root scanning a flat slice walk with no
//! per-frame pointer chasing.

use jvm_bytecode::FuncId;

use crate::value::Value;

/// Bookkeeping for one arena frame. The interpreter caches the hot fields
/// (`pc`, `sp`) in locals and flushes them here at call/return/GC
/// boundaries.
#[derive(Debug, Clone, Copy)]
pub struct FrameInfo {
    /// The executing function.
    pub func: FuncId,
    /// Saved program counter (an index into the *decoded* stream).
    pub pc: u32,
    /// Slab index of the first local.
    pub base: u32,
    /// Slab index of the operand stack floor (`base + num_locals`).
    pub stack_base: u32,
    /// Slab index one past the top of the operand stack.
    pub sp: u32,
    /// Slab index one past the frame's region (`base + frame_size`); the
    /// next frame begins here.
    pub limit: u32,
}

/// The contiguous frame slab plus its frame stack.
#[derive(Debug, Default)]
pub struct FrameArena {
    /// Backing storage: locals and stacks of all live frames.
    pub slab: Vec<Value>,
    /// Active frames, caller-first.
    pub frames: Vec<FrameInfo>,
}

impl FrameArena {
    /// An empty arena.
    pub fn new() -> Self {
        FrameArena::default()
    }

    /// Drops all frames but keeps the slab capacity (runs reuse it).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Current call depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The top frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    #[inline]
    pub fn top(&self) -> &FrameInfo {
        self.frames.last().expect("frame exists")
    }

    /// The top frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    #[inline]
    pub fn top_mut(&mut self) -> &mut FrameInfo {
        self.frames.last_mut().expect("frame exists")
    }

    /// Grows the slab to cover `limit` slots.
    #[inline]
    fn ensure(&mut self, limit: u32) {
        if self.slab.len() < limit as usize {
            self.slab.resize(limit as usize, Value::default());
        }
    }

    /// Pushes the entry frame, copying `args` into the first locals and
    /// zeroing the rest.
    ///
    /// # Panics
    ///
    /// Panics if frames are already active or `args` exceed the locals.
    pub fn push_entry(&mut self, func: FuncId, num_locals: u32, frame_size: u32, args: &[Value]) {
        assert!(self.frames.is_empty(), "entry frame must be first");
        assert!(args.len() <= num_locals as usize, "more args than locals");
        self.ensure(frame_size);
        self.slab[..args.len()].copy_from_slice(args);
        for v in &mut self.slab[args.len()..num_locals as usize] {
            *v = Value::default();
        }
        self.frames.push(FrameInfo {
            func,
            pc: 0,
            base: 0,
            stack_base: num_locals,
            sp: num_locals,
            limit: frame_size,
        });
    }

    /// Pushes a callee frame: moves the top `argc` stack slots of the
    /// caller into the callee's first locals (args-first), zeroes only
    /// the locals tail, and leaves the callee stack empty. The caller's
    /// `sp` must already be flushed into its [`FrameInfo`].
    ///
    /// # Panics
    ///
    /// Panics if no caller frame is active; debug builds assert the
    /// caller has `argc` values on its stack.
    pub fn push_call(&mut self, func: FuncId, num_locals: u32, frame_size: u32, argc: u32) {
        let caller = self.frames.last_mut().expect("caller exists");
        debug_assert!(caller.sp - caller.stack_base >= argc, "verified arity");
        let src = caller.sp - argc;
        caller.sp = src;
        let base = caller.limit;
        let limit = base + frame_size;
        self.ensure(limit);
        self.slab
            .copy_within(src as usize..(src + argc) as usize, base as usize);
        for v in &mut self.slab[(base + argc) as usize..(base + num_locals) as usize] {
            *v = Value::default();
        }
        self.frames.push(FrameInfo {
            func,
            pc: 0,
            base,
            stack_base: base + num_locals,
            sp: base + num_locals,
            limit,
        });
    }

    /// Pops the top frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    #[inline]
    pub fn pop_frame(&mut self) -> FrameInfo {
        self.frames.pop().expect("frame exists")
    }

    /// Iterates every live heap reference across all frames (GC roots).
    /// Top-frame `sp` must be flushed first.
    pub fn roots(&self) -> impl Iterator<Item = crate::value::RefId> + '_ {
        self.frames.iter().flat_map(|f| {
            self.slab[f.base as usize..f.sp as usize]
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
        })
    }

    /// Real byte footprint of the arena (capacities).
    pub fn memory_estimate(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<Value>()
            + self.frames.capacity() * std::mem::size_of::<FrameInfo>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::RefId;

    #[test]
    fn entry_frame_fills_args_first_and_zeroes_tail() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 4, 6, &[Value::Int(7), Value::Float(1.0)]);
        assert_eq!(a.slab[0], Value::Int(7));
        assert_eq!(a.slab[1], Value::Float(1.0));
        assert_eq!(a.slab[2], Value::Int(0));
        assert_eq!(a.slab[3], Value::Int(0));
        let f = a.top();
        assert_eq!((f.base, f.stack_base, f.sp, f.limit), (0, 4, 4, 6));
    }

    #[test]
    fn call_moves_args_and_zeroes_only_stale_tail() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 1, 4, &[Value::Int(1)]);
        // Caller pushes two args.
        a.slab[1] = Value::Int(10);
        a.slab[2] = Value::Int(20);
        a.top_mut().sp = 3;
        a.push_call(FuncId(1), 3, 5, 2);
        let callee = *a.top();
        assert_eq!(callee.base, 4);
        assert_eq!(a.slab[4], Value::Int(10));
        assert_eq!(a.slab[5], Value::Int(20));
        assert_eq!(a.slab[6], Value::Int(0), "tail local zeroed");
        assert_eq!(callee.stack_base, 7);
        assert_eq!(callee.sp, 7);
        // Caller's args were consumed.
        assert_eq!(a.frames[0].sp, 1);
    }

    #[test]
    fn reused_slab_region_is_rezeroed() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 1, 3, &[Value::Int(1)]);
        a.slab[1] = Value::Int(99);
        a.top_mut().sp = 2;
        a.push_call(FuncId(1), 2, 4, 1); // callee local 1 zeroed
        assert_eq!(a.slab[4], Value::Int(0));
        a.slab[4] = Value::Int(77); // dirty the region
        a.pop_frame();
        // Second call into the same region: stale 77 must not leak.
        a.slab[1] = Value::Int(42);
        a.top_mut().sp = 2;
        a.push_call(FuncId(1), 2, 4, 1);
        assert_eq!(a.slab[3], Value::Int(42));
        assert_eq!(a.slab[4], Value::Int(0), "stale data rezeroed");
    }

    #[test]
    fn roots_cover_exactly_live_regions() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 1, 4, &[Value::Ref(RefId(1))]);
        a.slab[1] = Value::Ref(RefId(2)); // live stack slot
        a.slab[2] = Value::Ref(RefId(3)); // above sp: dead
        a.top_mut().sp = 2;
        let roots: Vec<u32> = a.roots().map(|r| r.index() as u32).collect();
        assert_eq!(roots, vec![1, 2]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 8, 16, &[]);
        let cap = a.slab.capacity();
        a.clear();
        assert_eq!(a.depth(), 0);
        assert!(a.slab.capacity() >= cap);
        assert!(a.memory_estimate() > 0);
    }

    #[test]
    #[should_panic]
    fn too_many_entry_args_panics() {
        let mut a = FrameArena::new();
        a.push_entry(FuncId(0), 1, 2, &[Value::Int(1), Value::Int(2)]);
    }
}

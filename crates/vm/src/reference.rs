//! The frozen reference interpreter.
//!
//! This is the classic fetch-decode-execute loop the VM shipped with
//! before the pre-decoded threaded engine replaced it in [`crate::Vm`]:
//! a `match` over the full [`Instr`] enum, per-instruction
//! `block_index_of` + `cur_block` dispatch detection, and heap-allocated
//! per-frame `Vec` locals/stacks. It is kept **bit-for-bit intact** as
//! the differential oracle: the decoded engine must reproduce its
//! instruction counts, dispatch stream, heap behaviour, checksums and
//! errors exactly (see `tests/interp_differential.rs`), and the
//! `interp_speed` benchmark reports speedups relative to it.
//!
//! Do not "improve" this file; its value is that it does not change.

use jvm_bytecode::{BlockId, FuncId, Instr, Intrinsic, Program};

use crate::error::VmError;
use crate::frame::{Frame, NO_BLOCK};
use crate::heap::{Heap, HeapObj, HeapStats};
use crate::interp::{fold_checksum, VmConfig};
use crate::observer::DispatchObserver;
use crate::stats::ExecStats;
use crate::value::{OutputItem, Value};

/// The pre-overhaul virtual machine, frozen as an oracle.
///
/// Same public surface as [`crate::Vm`]: it borrows a verified
/// [`Program`], owns all mutable run state, and
/// [`ReferenceVm::run`] resets that state so one instance can execute
/// many runs.
#[derive(Debug)]
pub struct ReferenceVm<'p> {
    program: &'p Program,
    config: VmConfig,
    heap: Heap,
    frames: Vec<Frame>,
    stats: ExecStats,
    checksum: u64,
    output: Vec<OutputItem>,
}

impl<'p> ReferenceVm<'p> {
    /// Creates a reference VM with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self::with_config(program, VmConfig::default())
    }

    /// Creates a reference VM with an explicit configuration.
    pub fn with_config(program: &'p Program, config: VmConfig) -> Self {
        ReferenceVm {
            program,
            config,
            heap: Heap::new(config.gc_threshold),
            frames: Vec::new(),
            stats: ExecStats::default(),
            checksum: 0,
            output: Vec::new(),
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Statistics of the most recent run.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Heap statistics of the most recent run.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Checksum accumulated by `checksum` intrinsics during the most
    /// recent run.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Output captured from print intrinsics during the most recent run.
    pub fn output(&self) -> &[OutputItem] {
        &self.output
    }

    /// Executes the program's entry function with `args`, reporting every
    /// basic-block dispatch to `observer`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on runtime traps, wrong entry arguments, or
    /// when a configured resource limit is hit.
    pub fn run<O: DispatchObserver>(
        &mut self,
        args: &[Value],
        observer: &mut O,
    ) -> Result<Option<Value>, VmError> {
        // Reset run state.
        self.heap = Heap::new(self.config.gc_threshold);
        self.frames.clear();
        self.stats = ExecStats::default();
        self.checksum = 0;
        self.output.clear();

        let program = self.program;
        let entry = program.entry();
        let ef = program.function(entry);
        if args.len() != ef.num_params() as usize {
            return Err(VmError::BadEntryArgs {
                func: entry,
                expected: ef.num_params(),
                provided: args.len(),
            });
        }
        self.frames.push(Frame::new(entry, ef.num_locals(), args));
        self.stats.max_frame_depth = 1;

        macro_rules! pop {
            ($f:expr) => {
                $f.stack.pop().expect("verified code cannot underflow")
            };
        }

        loop {
            let depth = self.frames.len();
            let (func_id, pc) = {
                let f = &self.frames[depth - 1];
                (f.func, f.pc)
            };
            let func = program.function(func_id);

            // Block-dispatch detection: one event per block entered.
            let block = func.block_index_of(pc);
            {
                let f = &mut self.frames[depth - 1];
                if block != f.cur_block {
                    f.cur_block = block;
                    self.stats.block_dispatches += 1;
                    observer.on_block(BlockId::new(func_id, block));
                }
            }

            if self.stats.instructions >= self.config.max_steps {
                return Err(VmError::OutOfFuel);
            }
            self.stats.instructions += 1;

            let ins = &func.code()[pc as usize];
            let frame = self.frames.last_mut().expect("frame exists");

            match ins {
                Instr::IConst(v) => {
                    frame.stack.push(Value::Int(*v));
                    frame.pc += 1;
                }
                Instr::FConst(v) => {
                    frame.stack.push(Value::Float(*v));
                    frame.pc += 1;
                }
                Instr::ConstNull => {
                    frame.stack.push(Value::Null);
                    frame.pc += 1;
                }
                Instr::Dup => {
                    let v = *frame.stack.last().expect("verified");
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instr::Dup2 => {
                    let n = frame.stack.len();
                    let a = frame.stack[n - 2];
                    let b = frame.stack[n - 1];
                    frame.stack.push(a);
                    frame.stack.push(b);
                    frame.pc += 1;
                }
                Instr::Pop => {
                    let _ = pop!(frame);
                    frame.pc += 1;
                }
                Instr::Swap => {
                    let n = frame.stack.len();
                    frame.stack.swap(n - 1, n - 2);
                    frame.pc += 1;
                }
                Instr::Load(slot) => {
                    frame.stack.push(frame.locals[*slot as usize]);
                    frame.pc += 1;
                }
                Instr::Store(slot) => {
                    let v = pop!(frame);
                    frame.locals[*slot as usize] = v;
                    frame.pc += 1;
                }
                Instr::IInc(slot, delta) => {
                    let v = frame.locals[*slot as usize].as_int()?;
                    frame.locals[*slot as usize] = Value::Int(v.wrapping_add(*delta as i64));
                    frame.pc += 1;
                }
                Instr::IAdd => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                    frame.pc += 1;
                }
                Instr::ISub => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                    frame.pc += 1;
                }
                Instr::IMul => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                    frame.pc += 1;
                }
                Instr::IDiv => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_div(b)));
                    frame.pc += 1;
                }
                Instr::IRem => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    if b == 0 {
                        return Err(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_rem(b)));
                    frame.pc += 1;
                }
                Instr::INeg => {
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                    frame.pc += 1;
                }
                Instr::IShl => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_shl(b as u32 & 63)));
                    frame.pc += 1;
                }
                Instr::IShr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_shr(b as u32 & 63)));
                    frame.pc += 1;
                }
                Instr::IUShr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame
                        .stack
                        .push(Value::Int(((a as u64) >> (b as u32 & 63)) as i64));
                    frame.pc += 1;
                }
                Instr::IAnd => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a & b));
                    frame.pc += 1;
                }
                Instr::IOr => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a | b));
                    frame.pc += 1;
                }
                Instr::IXor => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Int(a ^ b));
                    frame.pc += 1;
                }
                Instr::FAdd => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a + b));
                    frame.pc += 1;
                }
                Instr::FSub => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a - b));
                    frame.pc += 1;
                }
                Instr::FMul => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a * b));
                    frame.pc += 1;
                }
                Instr::FDiv => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(a / b));
                    frame.pc += 1;
                }
                Instr::FNeg => {
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Float(-a));
                    frame.pc += 1;
                }
                Instr::I2F => {
                    let a = pop!(frame).as_int()?;
                    frame.stack.push(Value::Float(a as f64));
                    frame.pc += 1;
                }
                Instr::F2I => {
                    let a = pop!(frame).as_float()?;
                    frame.stack.push(Value::Int(a as i64));
                    frame.pc += 1;
                }
                Instr::IfICmp(op, target) => {
                    let b = pop!(frame).as_int()?;
                    let a = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    if op.eval_i64(a, b) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfI(op, target) => {
                    let a = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    if op.eval_i64(a, 0) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfFCmp(op, target) => {
                    let b = pop!(frame).as_float()?;
                    let a = pop!(frame).as_float()?;
                    self.stats.branches += 1;
                    if op.eval_f64(a, b) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfNull(target) => {
                    let v = pop!(frame);
                    self.stats.branches += 1;
                    if matches!(v, Value::Null) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::IfNonNull(target) => {
                    let v = pop!(frame);
                    self.stats.branches += 1;
                    if !matches!(v, Value::Null) {
                        self.stats.taken_branches += 1;
                        frame.pc = *target;
                        frame.cur_block = NO_BLOCK;
                    } else {
                        frame.pc += 1;
                    }
                }
                Instr::Goto(target) => {
                    frame.pc = *target;
                    frame.cur_block = NO_BLOCK;
                }
                Instr::TableSwitch {
                    low,
                    targets,
                    default,
                } => {
                    let v = pop!(frame).as_int()?;
                    self.stats.branches += 1;
                    self.stats.taken_branches += 1;
                    let idx = v.wrapping_sub(*low);
                    let target = if idx >= 0 && (idx as usize) < targets.len() {
                        targets[idx as usize]
                    } else {
                        *default
                    };
                    frame.pc = target;
                    frame.cur_block = NO_BLOCK;
                }
                Instr::InvokeStatic(callee) => {
                    let callee = *callee;
                    self.call(callee, program.function(callee).num_params(), false)?;
                }
                Instr::InvokeVirtual { slot, argc } => {
                    let (slot, argc) = (*slot, *argc);
                    let frame = self.frames.last_mut().expect("frame exists");
                    let recv_idx = frame.stack.len() - argc as usize;
                    let recv = frame.stack[recv_idx].as_ref_id()?;
                    let class = match self.heap.get(recv) {
                        HeapObj::Object { class, .. } => *class,
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object receiver",
                                found: "array",
                            })
                        }
                    };
                    let callee = program.class(class).resolve(slot);
                    self.stats.virtual_calls += 1;
                    self.call(callee, argc, true)?;
                }
                Instr::Return => {
                    let v = pop!(frame);
                    self.stats.returns += 1;
                    self.frames.pop();
                    match self.frames.last_mut() {
                        None => return Ok(Some(v)),
                        Some(caller) => caller.stack.push(v),
                    }
                }
                Instr::ReturnVoid => {
                    self.stats.returns += 1;
                    self.frames.pop();
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                }
                Instr::New(class) => {
                    let class = *class;
                    self.maybe_collect();
                    let num_fields = program.class(class).num_fields();
                    let r = self.heap.alloc_object(class, num_fields);
                    let frame = self.frames.last_mut().expect("frame exists");
                    frame.stack.push(Value::Ref(r));
                    frame.pc += 1;
                }
                Instr::GetField(n) => {
                    let obj = pop!(frame).as_ref_id()?;
                    let n = *n;
                    match self.heap.get(obj) {
                        HeapObj::Object { fields, .. } => {
                            let v = *fields.get(n as usize).ok_or(VmError::BadField {
                                field: n,
                                num_fields: fields.len() as u16,
                            })?;
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(v);
                            frame.pc += 1;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                Instr::PutField(n) => {
                    let v = pop!(frame);
                    let obj = pop!(frame).as_ref_id()?;
                    let n = *n;
                    frame.pc += 1;
                    match self.heap.get_mut(obj) {
                        HeapObj::Object { fields, .. } => {
                            let len = fields.len();
                            *fields.get_mut(n as usize).ok_or(VmError::BadField {
                                field: n,
                                num_fields: len as u16,
                            })? = v;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                Instr::NewArray => {
                    let len = pop!(frame).as_int()?;
                    self.maybe_collect();
                    let r = self.heap.alloc_array(len)?;
                    let frame = self.frames.last_mut().expect("frame exists");
                    frame.stack.push(Value::Ref(r));
                    frame.pc += 1;
                }
                Instr::ALoad => {
                    let idx = pop!(frame).as_int()?;
                    let arr = pop!(frame).as_ref_id()?;
                    match self.heap.get(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            let v = elems[idx as usize];
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(v);
                            frame.pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::AStore => {
                    let v = pop!(frame);
                    let idx = pop!(frame).as_int()?;
                    let arr = pop!(frame).as_ref_id()?;
                    frame.pc += 1;
                    match self.heap.get_mut(arr) {
                        HeapObj::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            elems[idx as usize] = v;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::ArrayLen => {
                    let arr = pop!(frame).as_ref_id()?;
                    match self.heap.get(arr) {
                        HeapObj::Array { elems } => {
                            let len = elems.len() as i64;
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.stack.push(Value::Int(len));
                            frame.pc += 1;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                Instr::Intrinsic(intrinsic) => {
                    self.run_intrinsic(*intrinsic)?;
                }
                Instr::Nop => {
                    frame.pc += 1;
                }
            }
        }
    }

    /// Pops `argc` arguments from the current frame and pushes a callee
    /// frame. The caller's `pc` is advanced past the call first, so the
    /// return lands on the continuation block.
    fn call(&mut self, callee: FuncId, argc: u16, _virtual_call: bool) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(VmError::CallStackOverflow);
        }
        self.stats.calls += 1;
        let cf = self.program.function(callee);
        debug_assert_eq!(cf.num_params(), argc, "verified arity");
        let frame = self.frames.last_mut().expect("frame exists");
        frame.pc += 1;
        let split = frame.stack.len() - argc as usize;
        let mut callee_frame = Frame::new(callee, cf.num_locals(), &[]);
        callee_frame.locals[..argc as usize].copy_from_slice(&frame.stack[split..]);
        frame.stack.truncate(split);
        self.frames.push(callee_frame);
        self.stats.max_frame_depth = self.stats.max_frame_depth.max(self.frames.len());
        Ok(())
    }

    /// Executes one intrinsic on the current frame.
    fn run_intrinsic(&mut self, i: Intrinsic) -> Result<(), VmError> {
        let frame = self.frames.last_mut().expect("frame exists");
        macro_rules! popv {
            () => {
                frame.stack.pop().expect("verified code cannot underflow")
            };
        }
        match i {
            Intrinsic::Sqrt => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.sqrt()));
            }
            Intrinsic::Sin => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.sin()));
            }
            Intrinsic::Cos => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.cos()));
            }
            Intrinsic::Exp => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.exp()));
            }
            Intrinsic::Log => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.ln()));
            }
            Intrinsic::AbsF => {
                let v = popv!().as_float()?;
                frame.stack.push(Value::Float(v.abs()));
            }
            Intrinsic::AbsI => {
                let v = popv!().as_int()?;
                frame.stack.push(Value::Int(v.wrapping_abs()));
            }
            Intrinsic::MinI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                frame.stack.push(Value::Int(a.min(b)));
            }
            Intrinsic::MaxI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                frame.stack.push(Value::Int(a.max(b)));
            }
            Intrinsic::PrintInt => {
                let v = popv!().as_int()?;
                if self.config.capture_output {
                    self.output.push(OutputItem::Int(v));
                }
            }
            Intrinsic::PrintFloat => {
                let v = popv!().as_float()?;
                if self.config.capture_output {
                    self.output.push(OutputItem::Float(v));
                }
            }
            Intrinsic::Checksum => {
                let v = popv!().as_int()?;
                self.checksum = fold_checksum(self.checksum, v);
            }
        }
        let frame = self.frames.last_mut().expect("frame exists");
        frame.pc += 1;
        Ok(())
    }

    /// Runs a collection if the heap suggests one, using all frame slots as
    /// roots.
    fn maybe_collect(&mut self) {
        if self.heap.should_collect() {
            let ReferenceVm { heap, frames, .. } = self;
            let roots = frames.iter().flat_map(|f| {
                f.stack
                    .iter()
                    .chain(f.locals.iter())
                    .filter_map(|v| match v {
                        Value::Ref(r) => Some(*r),
                        _ => None,
                    })
            });
            heap.collect(roots);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    #[test]
    fn reference_vm_runs_a_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let program = pb.build(f).unwrap();
        let mut vm = ReferenceVm::new(&program);
        let r = vm.run(&[Value::Int(10)], &mut NullObserver).unwrap();
        assert_eq!(r, Some(Value::Int(55)));
        assert_eq!(vm.stats().block_dispatches, 23);
        assert_eq!(vm.stats().branches, 11);
        assert_eq!(vm.stats().taken_branches, 1);
    }

    #[test]
    fn reference_vm_traps_like_the_engine() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        pb.function_mut(f).iconst(1).load(0).idiv().ret();
        let program = pb.build(f).unwrap();
        let mut vm = ReferenceVm::new(&program);
        assert_eq!(
            vm.run(&[Value::Int(0)], &mut NullObserver),
            Err(VmError::DivisionByZero)
        );
    }
}

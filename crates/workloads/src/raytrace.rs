//! `raytrace` analogue: integer ray/sphere intersection over a pixel
//! grid.
//!
//! SPECjvm `raytrace` is a "simple program which exhibits predictable
//! behaviour" (§5.1): the pixel loops are perfectly regular, while the
//! per-sphere hit/miss tests and the nearest-hit update are
//! data-dependent but spatially coherent (adjacent pixels usually hit the
//! same sphere). The analogue shoots one unnormalised integer ray per
//! pixel through a random sphere field, finds the nearest intersection
//! with an integer Newton square root, and folds a shade value per pixel
//! into per-row checksums.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

const SEED: i64 = 24680;
const NSPHERES: i64 = 12;
const FOCAL: i64 = 128;

fn image_size(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 32,
        Scale::Small => 112,
        Scale::Paper => 288,
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let w = image_size(scale);
    Workload {
        name: "raytrace",
        description: "integer ray/sphere nearest-hit renderer",
        program: build_program(w),
        args: vec![Value::Int(SEED)],
        expected_checksum: reference_checksum(SEED, w),
    }
}

fn build_program(wh: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    build_into(&mut pb, wh);
    let entry = pb.func_id("main").expect("main declared");
    pb.build(entry).expect("raytrace workload builds")
}

/// Emits the full program into `pb`.
fn build_into(pb: &mut ProgramBuilder, wh: i64) {
    let isqrt = pb.declare_function("isqrt", 1, true);
    let ray_sphere = pb.declare_function("ray_sphere", 8, true);
    let render = pb.declare_function("render", 5, false);
    let main = pb.declare_function("main", 1, false);

    {
        let b = pb.function_mut(isqrt);
        let x = 0u16;
        let y = b.alloc_local();
        let z = b.alloc_local();
        let small = b.new_label();
        b.load(x).iconst(2).if_icmp(CmpOp::Lt, small);
        b.load(x).store(y);
        b.load(x).iconst(1).iadd().iconst(2).idiv().store(z);
        let head = b.bind_new_label();
        let done = b.new_label();
        b.load(z).load(y).if_icmp(CmpOp::Ge, done);
        b.load(z).store(y);
        b.load(y)
            .load(x)
            .load(y)
            .idiv()
            .iadd()
            .iconst(2)
            .idiv()
            .store(z);
        b.goto(head);
        b.bind(done);
        b.load(y).ret();
        b.bind(small);
        b.load(x).ret();
    }

    // ray_sphere(dx, dy, a, cx, cy, cz, r, s) -> nearest-intersection
    // parameter t (×256), or 0 on a miss. One method call per sphere test,
    // as the object-oriented original would dispatch `Sphere.intersect`.
    {
        let b = pb.function_mut(ray_sphere);
        let (dx, dy, a, cx, cy, cz, r, s) = (0u16, 1u16, 2u16, 3u16, 4u16, 5u16, 6u16, 7u16);
        let bq = b.alloc_local();
        let cc = b.alloc_local();
        let disc = b.alloc_local();
        let miss = b.new_label();
        b.load(dx).load(cx).load(s).aload().imul();
        b.load(dy).load(cy).load(s).aload().imul().iadd();
        b.load(cz)
            .load(s)
            .aload()
            .iconst(FOCAL)
            .imul()
            .iadd()
            .store(bq);
        b.load(bq).if_i(CmpOp::Le, miss);
        b.load(cx).load(s).aload().load(cx).load(s).aload().imul();
        b.load(cy)
            .load(s)
            .aload()
            .load(cy)
            .load(s)
            .aload()
            .imul()
            .iadd();
        b.load(cz)
            .load(s)
            .aload()
            .load(cz)
            .load(s)
            .aload()
            .imul()
            .iadd();
        b.load(r)
            .load(s)
            .aload()
            .load(r)
            .load(s)
            .aload()
            .imul()
            .isub()
            .store(cc);
        b.load(bq)
            .load(bq)
            .imul()
            .load(a)
            .load(cc)
            .imul()
            .isub()
            .store(disc);
        b.load(disc).if_i(CmpOp::Lt, miss);
        b.load(bq).load(disc).invoke_static(isqrt).isub();
        b.iconst(256).imul().load(a).idiv().ret();
        b.bind(miss);
        b.iconst(0).ret();
    }

    {
        let b = pb.function_mut(render);
        let (cx, cy, cz, r, wh_l) = (0u16, 1u16, 2u16, 3u16, 4u16);
        let px = b.alloc_local();
        let py = b.alloc_local();
        let dx = b.alloc_local();
        let dy = b.alloc_local();
        let a = b.alloc_local();
        let s = b.alloc_local();
        let best_t = b.alloc_local();
        let t = b.alloc_local();
        let row_acc = b.alloc_local();
        let half = b.alloc_local();
        b.load(wh_l).iconst(2).idiv().store(half);

        b.iconst(0).store(py);
        let row_head = b.bind_new_label();
        let row_exit = b.new_label();
        b.load(py).load(wh_l).if_icmp(CmpOp::Ge, row_exit);
        b.iconst(0).store(row_acc);
        b.iconst(0).store(px);
        let col_head = b.bind_new_label();
        let col_exit = b.new_label();
        b.load(px).load(wh_l).if_icmp(CmpOp::Ge, col_exit);

        b.load(px).load(half).isub().store(dx);
        b.load(py).load(half).isub().store(dy);
        b.load(dx).load(dx).imul();
        b.load(dy).load(dy).imul().iadd();
        b.iconst(FOCAL * FOCAL).iadd().store(a);

        b.iconst(i64::MAX).store(best_t);
        b.iconst(0).store(s);
        let sp_head = b.bind_new_label();
        let sp_exit = b.new_label();
        b.load(s).iconst(NSPHERES).if_icmp(CmpOp::Ge, sp_exit);
        let next_sphere = b.new_label();
        b.load(dx)
            .load(dy)
            .load(a)
            .load(cx)
            .load(cy)
            .load(cz)
            .load(r)
            .load(s)
            .invoke_static(ray_sphere)
            .store(t);
        b.load(t).if_i(CmpOp::Le, next_sphere);
        b.load(t).load(best_t).if_icmp(CmpOp::Ge, next_sphere);
        b.load(t).store(best_t);
        b.bind(next_sphere);
        b.iinc(s, 1).goto(sp_head);
        b.bind(sp_exit);

        let shaded = b.new_label();
        let add_shade = b.new_label();
        b.load(best_t).iconst(i64::MAX).if_icmp(CmpOp::Ne, shaded);
        b.iconst(0).goto(add_shade);
        b.bind(shaded);
        b.iconst(255)
            .load(best_t)
            .iconst(4)
            .ishr()
            .iconst(255)
            .intrinsic(Intrinsic::MinI)
            .isub();
        b.bind(add_shade);
        b.load(row_acc).iadd().store(row_acc);

        b.iinc(px, 1).goto(col_head);
        b.bind(col_exit);
        b.load(row_acc).intrinsic(Intrinsic::Checksum);
        b.iinc(py, 1).goto(row_head);
        b.bind(row_exit);
        b.ret_void();
    }

    {
        let b = pb.function_mut(main);
        let state = 0u16;
        let cx = b.alloc_local();
        let cy = b.alloc_local();
        let cz = b.alloc_local();
        let r = b.alloc_local();
        let i = b.alloc_local();
        for arr in [cx, cy, cz, r] {
            b.iconst(NSPHERES).new_array().store(arr);
        }
        b.iconst(0).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).iconst(NSPHERES).if_icmp(CmpOp::Ge, exit);
        for (arr, bound, off) in [
            (cx, 600, -300),
            (cy, 600, -300),
            (cz, 800, 200),
            (r, 120, 20),
        ] {
            b.load(arr).load(i);
            emit_lcg_step(b, state);
            emit_lcg_sample(b, state, bound);
            b.iconst(off).iadd().astore();
        }
        b.iinc(i, 1).goto(head);
        b.bind(exit);
        b.load(cx)
            .load(cy)
            .load(cz)
            .load(r)
            .iconst(wh)
            .invoke_static(render);
        b.ret_void();
    }
}

// ---------------------------------------------------------------------------
// Reference implementation.
// ---------------------------------------------------------------------------

fn ref_isqrt(x: i64) -> i64 {
    if x < 2 {
        return x;
    }
    let mut y = x;
    let mut z = (x + 1) / 2;
    while z < y {
        y = z;
        z = (y + x / y) / 2;
    }
    y
}

/// Reference replay computing the expected checksum.
pub fn reference_checksum(seed: i64, wh: i64) -> u64 {
    let mut state = seed;
    let mut cx = [0i64; NSPHERES as usize];
    let mut cy = [0i64; NSPHERES as usize];
    let mut cz = [0i64; NSPHERES as usize];
    let mut r = [0i64; NSPHERES as usize];
    for i in 0..NSPHERES as usize {
        for (arr, bound, off) in [
            (&mut cx, 600, -300),
            (&mut cy, 600, -300),
            (&mut cz, 800, 200),
            (&mut r, 120, 20),
        ] {
            state = lcg_next(state);
            arr[i] = lcg_sample(state, bound) + off;
        }
    }
    let half = wh / 2;
    let mut checksum = 0u64;
    for py in 0..wh {
        let mut row_acc = 0i64;
        for px in 0..wh {
            let dx = px - half;
            let dy = py - half;
            let a = dx * dx + dy * dy + FOCAL * FOCAL;
            let mut best_t = i64::MAX;
            for s in 0..NSPHERES as usize {
                let bq = dx * cx[s] + dy * cy[s] + cz[s] * FOCAL;
                if bq <= 0 {
                    continue;
                }
                let cc = cx[s] * cx[s] + cy[s] * cy[s] + cz[s] * cz[s] - r[s] * r[s];
                let disc = bq * bq - a * cc;
                if disc < 0 {
                    continue;
                }
                let t = (bq - ref_isqrt(disc)) * 256 / a;
                if t <= 0 || t >= best_t {
                    continue;
                }
                best_t = t;
            }
            let shade = if best_t == i64::MAX {
                0
            } else {
                255 - (best_t >> 4).min(255)
            };
            row_acc += shade;
        }
        checksum = fold_checksum(checksum, row_acc);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for x in 0..2000i64 {
            let s = ref_isqrt(x);
            assert!(s * s <= x && (s + 1) * (s + 1) > x, "x={x} s={s}");
        }
        let big = 4_000_000_000_000_000i64;
        let s = ref_isqrt(big);
        assert!(s * s <= big && (s + 1) * (s + 1) > big);
    }

    #[test]
    fn scene_produces_hits_and_misses() {
        // The checksum must not equal the all-background checksum, and
        // some rows must be background-only — i.e. the image has contrast.
        let wh = image_size(Scale::Test);
        let mut all_bg = 0u64;
        for _ in 0..wh {
            all_bg = fold_checksum(all_bg, 0);
        }
        assert_ne!(reference_checksum(SEED, wh), all_bg);
    }
}

//! # trace-workloads
//!
//! Six synthetic benchmark programs written in [`jvm_bytecode`], mirroring
//! the branch character of the paper's benchmark suite (§5.1):
//!
//! | paper benchmark | analogue | branch character |
//! |---|---|---|
//! | SPECjvm `compress` | [`compress`]: LZW-style dictionary compressor | long regular loops with data-dependent dictionary probes |
//! | SPECjvm `javac` | [`javac`]: lexer + recursive-descent parser over generated source | irregular, switch-heavy, recursive — "traditionally one of the more challenging benchmarks" |
//! | SPECjvm `raytrace` | [`raytrace`]: fixed-point ray/sphere intersection | regular pixel loops with hit/miss conditionals |
//! | SPECjvm `mpegaudio` | [`mpegaudio`]: fixed-point filter bank + windowing | extremely regular DSP loops |
//! | `soot` | [`soot`]: worklist dataflow solver over a random CFG with polymorphic transfer functions | large, irregular, virtual-call heavy |
//! | `scimark` | [`scimark`]: SOR + Monte Carlo + sparse mat-vec kernels | extremely regular scientific loops |
//!
//! Every workload generates its own input data **inside the program** with
//! a seeded 64-bit LCG, so runs are bit-deterministic with no host data
//! transfer, and every workload ships a Rust *reference implementation*
//! that replays the identical arithmetic to predict the checksum the
//! program's `checksum` intrinsics will accumulate — the correctness
//! oracle for the interpreter, the trace machinery, and the benches.
//!
//! # Example
//!
//! ```
//! use trace_workloads::{Scale, registry};
//! use jvm_vm::{Vm, NullObserver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = registry::compress(Scale::Test);
//! let mut vm = Vm::new(&w.program);
//! vm.run(&w.args, &mut NullObserver)?;
//! assert_eq!(vm.checksum(), w.expected_checksum);
//! # Ok(())
//! # }
//! ```

pub mod compress;
pub mod javac;
pub mod lcg;
pub mod mpegaudio;
pub mod phase_shift;
pub mod prng;
pub mod raytrace;
pub mod registry;
pub mod scimark;
pub mod soot;
pub mod util;

pub use registry::{Scale, Workload};

//! `javac` analogue: a lexer plus error-recovering recursive-descent
//! parser over generated source text.
//!
//! SPECjvm `javac` is "traditionally one of the more challenging
//! benchmarks" (§5.1): compiler front-ends branch on *data* (the source),
//! through multi-way dispatch (scanner character classes), deep recursion
//! (the grammar) and frequent small calls. This analogue reproduces all
//! three: a `tableswitch`-driven scanner, a mutually recursive
//! `expr → term → factor` parser with error recovery over deliberately
//! noisy input, and tiny helper calls (`peek`) on every parser step.
//!
//! Character codes: `0..=9` digits, `10..=13` the operators `+ - * /`,
//! `14`/`15` parens, `16` letter, `17` space, `18` semicolon. Token
//! codes: 1 NUM, 2 IDENT, 3..=6 the operators, 7 `(`, 8 `)`, 9 `;`.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};
use crate::util::emit_arr_inc;

const SEED: i64 = 987654321;
const MAX_DEPTH: i64 = 64;

fn source_len(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 3_000,
        Scale::Small => 80_000,
        Scale::Paper => 800_000,
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let n = source_len(scale);
    Workload {
        name: "javac",
        description: "lexer + error-recovering recursive-descent parser",
        program: build_program(n),
        args: vec![Value::Int(SEED)],
        expected_checksum: reference_checksum(SEED, n),
    }
}

/// Maps an LCG percentile (0..100) to a character-code class, shared by
/// the bytecode generator and the reference.
fn char_class_thresholds() -> [(i64, i64); 8] {
    // (upper-bound-exclusive, code); code -1 means "digit" (sub-sampled),
    // and operators are decoded from the percentile directly.
    [
        (30, -1), // digit
        (38, 10), // '+'
        (46, 11), // '-'
        (54, 12), // '*'
        (60, 13), // '/'
        (68, 14), // '('
        (76, 15), // ')'
        (90, 16), // letter
    ]
}

fn build_program(n: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let gen_source = pb.declare_function("gen_source", 3, false);
    let lex = pb.declare_function("lex", 3, true);
    let peek = pb.declare_function("peek", 3, true);
    let parse_expr = pb.declare_function("parse_expr", 4, false);
    let parse_term = pb.declare_function("parse_term", 4, false);
    let parse_factor = pb.declare_function("parse_factor", 4, false);
    let parse_program = pb.declare_function("parse_program", 3, false);
    let main = pb.declare_function("main", 1, false);

    // gen_source(src, n, seed): weighted random character stream.
    {
        let b = pb.function_mut(gen_source);
        let (src, len, state) = (0u16, 1u16, 2u16);
        let i = b.alloc_local();
        let c = b.alloc_local();
        b.iconst(0).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        emit_lcg_step(b, state);
        let s = b.alloc_local();
        emit_lcg_sample(b, state, 100);
        b.store(s);
        let done = b.new_label();
        // Digits: a second sample picks which digit.
        let not_digit = b.new_label();
        b.load(s).iconst(30).if_icmp(CmpOp::Ge, not_digit);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 10);
        b.store(c).goto(done);
        b.bind(not_digit);
        // Fixed classes from the percentile thresholds.
        let mut prev_bound = 30;
        for &(bound, code) in char_class_thresholds().iter().skip(1) {
            let next = b.new_label();
            b.load(s).iconst(bound).if_icmp(CmpOp::Ge, next);
            b.iconst(code).store(c).goto(done);
            b.bind(next);
            prev_bound = bound;
        }
        let _ = prev_bound;
        // 90..96 space, else ';'.
        let semi = b.new_label();
        b.load(s).iconst(96).if_icmp(CmpOp::Ge, semi);
        b.iconst(17).store(c).goto(done);
        b.bind(semi);
        b.iconst(18).store(c);
        b.bind(done);
        b.load(src).load(i).load(c).astore();
        b.iinc(i, 1).goto(head);
        b.bind(exit);
        b.ret_void();
    }

    // lex(src, n, toks) -> ntok: tableswitch scanner with run folding.
    {
        let b = pb.function_mut(lex);
        let (src, len, toks) = (0u16, 1u16, 2u16);
        let i = b.alloc_local();
        let ntok = b.alloc_local();
        let c = b.alloc_local();
        b.iconst(0).store(i).iconst(0).store(ntok);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        b.load(src).load(i).aload().store(c);

        let l_digit = b.new_label();
        let l_op = b.new_label();
        let l_lparen = b.new_label();
        let l_rparen = b.new_label();
        let l_letter = b.new_label();
        let l_skip = b.new_label();
        let l_semi = b.new_label();
        let targets = [
            l_digit, l_digit, l_digit, l_digit, l_digit, // 0-4
            l_digit, l_digit, l_digit, l_digit, l_digit, // 5-9
            l_op, l_op, l_op, l_op, // 10-13
            l_lparen, l_rparen, // 14, 15
            l_letter, l_skip, l_semi, // 16, 17, 18
        ];
        let emit_tok = b.new_label();
        b.load(c).table_switch(0, &targets, l_skip);

        // NUM: fold a run of digits into one token.
        b.bind(l_digit);
        {
            let run = b.bind_new_label();
            let run_done = b.new_label();
            b.load(i)
                .iconst(1)
                .iadd()
                .load(len)
                .if_icmp(CmpOp::Ge, run_done);
            b.load(src)
                .load(i)
                .iconst(1)
                .iadd()
                .aload()
                .iconst(9)
                .if_icmp(CmpOp::Gt, run_done);
            b.iinc(i, 1).goto(run);
            b.bind(run_done);
        }
        b.iconst(1).goto(emit_tok);

        // Operators: token = char - 7 (3..=6).
        b.bind(l_op);
        b.load(c).iconst(7).isub().goto(emit_tok);

        b.bind(l_lparen);
        b.iconst(7).goto(emit_tok);
        b.bind(l_rparen);
        b.iconst(8).goto(emit_tok);

        // IDENT: fold a run of letters.
        b.bind(l_letter);
        {
            let run = b.bind_new_label();
            let run_done = b.new_label();
            b.load(i)
                .iconst(1)
                .iadd()
                .load(len)
                .if_icmp(CmpOp::Ge, run_done);
            b.load(src)
                .load(i)
                .iconst(1)
                .iadd()
                .aload()
                .iconst(16)
                .if_icmp(CmpOp::Ne, run_done);
            b.iinc(i, 1).goto(run);
            b.bind(run_done);
        }
        b.iconst(2).goto(emit_tok);

        b.bind(l_semi);
        b.iconst(9).goto(emit_tok);

        // emit_tok expects the token code on the stack.
        b.bind(emit_tok);
        {
            let v = b.alloc_local();
            b.store(v);
            b.load(toks).load(ntok).load(v).astore();
            b.iinc(ntok, 1);
        }
        b.bind(l_skip);
        b.iinc(i, 1).goto(head);

        b.bind(exit);
        b.load(ntok).ret();
    }

    // peek(toks, ntok, ctx) -> token at ctx[0], or 0 at EOF.
    {
        let b = pb.function_mut(peek);
        let (toks, ntok, ctx) = (0u16, 1u16, 2u16);
        let eof = b.new_label();
        b.load(ctx)
            .iconst(0)
            .aload()
            .load(ntok)
            .if_icmp(CmpOp::Ge, eof);
        b.load(toks).load(ctx).iconst(0).aload().aload().ret();
        b.bind(eof);
        b.iconst(0).ret();
    }

    // parse_factor(toks, ntok, ctx, depth).
    {
        let b = pb.function_mut(parse_factor);
        let (toks, ntok, ctx, depth) = (0u16, 1u16, 2u16, 3u16);
        let t = b.alloc_local();
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .invoke_static(peek)
            .store(t);
        let leaf = b.new_label();
        let paren = b.new_label();
        b.load(t).iconst(1).if_icmp(CmpOp::Eq, leaf);
        b.load(t).iconst(2).if_icmp(CmpOp::Eq, leaf);
        b.load(t).iconst(7).if_icmp(CmpOp::Eq, paren);
        // Error recovery: count and skip.
        emit_arr_inc(b, ctx, 2, 1); // errors++
        emit_arr_inc(b, ctx, 0, 1); // pos++
        b.ret_void();
        // NUM / IDENT leaf.
        b.bind(leaf);
        emit_arr_inc(b, ctx, 0, 1); // pos++
        emit_arr_inc(b, ctx, 1, 1); // nodes++
        b.ret_void();
        // Parenthesised subexpression.
        b.bind(paren);
        emit_arr_inc(b, ctx, 0, 1); // consume '('
        let too_deep = b.new_label();
        let after_sub = b.new_label();
        b.load(depth).iconst(MAX_DEPTH).if_icmp(CmpOp::Ge, too_deep);
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .load(depth)
            .iconst(1)
            .iadd()
            .invoke_static(parse_expr);
        b.goto(after_sub);
        b.bind(too_deep);
        emit_arr_inc(b, ctx, 2, 1); // errors++
        b.bind(after_sub);
        // Expect ')'.
        let missing = b.new_label();
        let closed = b.new_label();
        b.load(toks).load(ntok).load(ctx).invoke_static(peek);
        b.iconst(8).if_icmp(CmpOp::Ne, missing);
        emit_arr_inc(b, ctx, 0, 1); // consume ')'
        b.goto(closed);
        b.bind(missing);
        emit_arr_inc(b, ctx, 2, 1); // errors++
        b.bind(closed);
        emit_arr_inc(b, ctx, 1, 1); // nodes++
        b.ret_void();
    }

    // parse_term / parse_expr: left-associative binary chains.
    for (func, child, op_lo, op_hi) in [
        (parse_term, parse_factor, 5i64, 6i64),
        (parse_expr, parse_term, 3i64, 4i64),
    ] {
        let b = pb.function_mut(func);
        let (toks, ntok, ctx, depth) = (0u16, 1u16, 2u16, 3u16);
        let t = b.alloc_local();
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .load(depth)
            .invoke_static(child);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .invoke_static(peek)
            .store(t);
        b.load(t).iconst(op_lo).if_icmp(CmpOp::Lt, exit);
        b.load(t).iconst(op_hi).if_icmp(CmpOp::Gt, exit);
        emit_arr_inc(b, ctx, 0, 1); // consume operator
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .load(depth)
            .invoke_static(child);
        emit_arr_inc(b, ctx, 1, 1); // nodes++
        b.goto(head);
        b.bind(exit);
        b.ret_void();
    }

    // parse_program(toks, ntok, ctx): statement loop with recovery.
    {
        let b = pb.function_mut(parse_program);
        let (toks, ntok, ctx) = (0u16, 1u16, 2u16);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(ctx)
            .iconst(0)
            .aload()
            .load(ntok)
            .if_icmp(CmpOp::Ge, exit);
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .iconst(0)
            .invoke_static(parse_expr);
        // Expect ';'.
        let no_semi = b.new_label();
        let next = b.new_label();
        b.load(toks).load(ntok).load(ctx).invoke_static(peek);
        b.iconst(9).if_icmp(CmpOp::Ne, no_semi);
        emit_arr_inc(b, ctx, 0, 1);
        b.goto(next);
        b.bind(no_semi);
        emit_arr_inc(b, ctx, 2, 1);
        emit_arr_inc(b, ctx, 0, 1);
        b.bind(next);
        b.goto(head);
        b.bind(exit);
        b.ret_void();
    }

    // main(seed).
    {
        let b = pb.function_mut(main);
        let seed = 0u16;
        let src = b.alloc_local();
        let toks = b.alloc_local();
        let ntok = b.alloc_local();
        let ctx = b.alloc_local();
        b.iconst(n).new_array().store(src);
        b.load(src).iconst(n).load(seed).invoke_static(gen_source);
        b.iconst(n).new_array().store(toks);
        b.load(src)
            .iconst(n)
            .load(toks)
            .invoke_static(lex)
            .store(ntok);
        b.iconst(4).new_array().store(ctx);
        b.load(toks)
            .load(ntok)
            .load(ctx)
            .invoke_static(parse_program);
        b.load(ctx).iconst(1).aload().intrinsic(Intrinsic::Checksum); // nodes
        b.load(ctx).iconst(2).aload().intrinsic(Intrinsic::Checksum); // errors
        b.load(ntok).intrinsic(Intrinsic::Checksum);
        b.ret_void();
    }

    pb.build(main).expect("javac workload builds")
}

// ---------------------------------------------------------------------------
// Reference implementation.
// ---------------------------------------------------------------------------

struct Ctx {
    pos: i64,
    nodes: i64,
    errors: i64,
}

fn ref_gen_source(seed: i64, n: i64) -> Vec<i64> {
    let mut state = seed;
    let mut src = Vec::with_capacity(n as usize);
    for _ in 0..n {
        state = lcg_next(state);
        let s = lcg_sample(state, 100);
        let c = if s < 30 {
            state = lcg_next(state);
            lcg_sample(state, 10)
        } else if s < 38 {
            10
        } else if s < 46 {
            11
        } else if s < 54 {
            12
        } else if s < 60 {
            13
        } else if s < 68 {
            14
        } else if s < 76 {
            15
        } else if s < 90 {
            16
        } else if s < 96 {
            17
        } else {
            18
        };
        src.push(c);
    }
    src
}

fn ref_lex(src: &[i64]) -> Vec<i64> {
    let n = src.len() as i64;
    let mut toks = Vec::new();
    let mut i = 0i64;
    while i < n {
        let c = src[i as usize];
        match c {
            0..=9 => {
                while i + 1 < n && src[(i + 1) as usize] <= 9 {
                    i += 1;
                }
                toks.push(1);
            }
            10..=13 => toks.push(c - 7),
            14 => toks.push(7),
            15 => toks.push(8),
            16 => {
                while i + 1 < n && src[(i + 1) as usize] == 16 {
                    i += 1;
                }
                toks.push(2);
            }
            18 => toks.push(9),
            _ => {} // space
        }
        i += 1;
    }
    toks
}

fn ref_peek(toks: &[i64], ctx: &Ctx) -> i64 {
    if ctx.pos >= toks.len() as i64 {
        0
    } else {
        toks[ctx.pos as usize]
    }
}

fn ref_factor(toks: &[i64], ctx: &mut Ctx, depth: i64) {
    let t = ref_peek(toks, ctx);
    if t == 1 || t == 2 {
        ctx.pos += 1;
        ctx.nodes += 1;
        return;
    }
    if t == 7 {
        ctx.pos += 1;
        if depth >= MAX_DEPTH {
            ctx.errors += 1;
        } else {
            ref_expr(toks, ctx, depth + 1);
        }
        if ref_peek(toks, ctx) == 8 {
            ctx.pos += 1;
        } else {
            ctx.errors += 1;
        }
        ctx.nodes += 1;
        return;
    }
    ctx.errors += 1;
    ctx.pos += 1;
}

fn ref_term(toks: &[i64], ctx: &mut Ctx, depth: i64) {
    ref_factor(toks, ctx, depth);
    loop {
        let t = ref_peek(toks, ctx);
        if !(5..=6).contains(&t) {
            break;
        }
        ctx.pos += 1;
        ref_factor(toks, ctx, depth);
        ctx.nodes += 1;
    }
}

fn ref_expr(toks: &[i64], ctx: &mut Ctx, depth: i64) {
    ref_term(toks, ctx, depth);
    loop {
        let t = ref_peek(toks, ctx);
        if !(3..=4).contains(&t) {
            break;
        }
        ctx.pos += 1;
        ref_term(toks, ctx, depth);
        ctx.nodes += 1;
    }
}

/// Reference replay computing the expected checksum.
pub fn reference_checksum(seed: i64, n: i64) -> u64 {
    let src = ref_gen_source(seed, n);
    let toks = ref_lex(&src);
    let mut ctx = Ctx {
        pos: 0,
        nodes: 0,
        errors: 0,
    };
    while ctx.pos < toks.len() as i64 {
        ref_expr(&toks, &mut ctx, 0);
        if ref_peek(&toks, &ctx) == 9 {
            ctx.pos += 1;
        } else {
            ctx.errors += 1;
            ctx.pos += 1;
        }
    }
    let mut c = fold_checksum(0, ctx.nodes);
    c = fold_checksum(c, ctx.errors);
    fold_checksum(c, toks.len() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
    }

    #[test]
    fn parser_finds_both_nodes_and_errors() {
        // The random source must exercise both the happy path and the
        // recovery path, or the workload is not javac-like.
        let src = ref_gen_source(SEED, source_len(Scale::Test));
        let toks = ref_lex(&src);
        let mut ctx = Ctx {
            pos: 0,
            nodes: 0,
            errors: 0,
        };
        while ctx.pos < toks.len() as i64 {
            ref_expr(&toks, &mut ctx, 0);
            if ref_peek(&toks, &ctx) == 9 {
                ctx.pos += 1;
            } else {
                ctx.errors += 1;
                ctx.pos += 1;
            }
        }
        assert!(ctx.nodes > 100, "nodes {}", ctx.nodes);
        assert!(ctx.errors > 100, "errors {}", ctx.errors);
    }

    #[test]
    fn lexer_folds_runs() {
        let toks = ref_lex(&[1, 2, 3, 17, 16, 16, 16, 10, 5]);
        assert_eq!(toks, vec![1, 2, 3, 1]);
    }
}

//! Phase-shift workload: a hot loop whose dominant branch bias flips at
//! a configurable dispatch count.
//!
//! Before the flip the guard `r < thresh` is taken ~95% of the time, so
//! the trace machinery builds and serves a trace along the hot arm.
//! After the flip the same branch is taken only ~5% of the time: every
//! dispatch of the old trace now side-exits at its first guard. This is
//! exactly the *pathological trace* the lifetime health ladder exists
//! for — a trace that was correct when built and whose behavior rotted
//! under it — and the workload family is the fixture the chaos
//! campaigns, the warm-boot staleness regression and the `phase_shift`
//! bench leg all drive.
//!
//! The flip point is a **program argument**, not a compile-time
//! constant: `phase_shift`, `phase_shift_early` and `phase_shift_late`
//! at the same scale share one program (and therefore one program
//! hash), so a snapshot captured under one phase profile loads into a
//! differently-phased run — the staleness scenario the persist layer
//! must survive.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

/// LCG seed baked into the program (input is generated in-program, as
/// in every other workload).
const SEED: i64 = 424242;
/// Guard bias before the flip: `r < 95` of 100 — strongly taken.
const HOT_THRESH: i64 = 95;
/// Guard bias after the flip: `r < 5` of 100 — strongly not-taken.
const COLD_THRESH: i64 = 5;

fn iterations(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 6_000,
        Scale::Small => 200_000,
        Scale::Paper => 2_000_000,
    }
}

/// Builds the canonical variant: bias flips at the halfway point.
pub fn build(scale: Scale) -> Workload {
    build_variant(
        scale,
        "phase_shift",
        "biased branch flips from 95% to 5% taken at n/2",
        |n| n / 2,
    )
}

/// Early flip (n/4): most of the run executes *after* the shift, so
/// demotion latency dominates the measurement.
pub fn build_early(scale: Scale) -> Workload {
    build_variant(
        scale,
        "phase_shift_early",
        "biased branch flips from 95% to 5% taken at n/4",
        |n| n / 4,
    )
}

/// Late flip (3n/4): the trace earns a long healthy history before it
/// rots, stressing the EWMA's forgetting rate.
pub fn build_late(scale: Scale) -> Workload {
    build_variant(
        scale,
        "phase_shift_late",
        "biased branch flips from 95% to 5% taken at 3n/4",
        |n| 3 * n / 4,
    )
}

fn build_variant(
    scale: Scale,
    name: &'static str,
    description: &'static str,
    flip_of: fn(i64) -> i64,
) -> Workload {
    let n = iterations(scale);
    let flip = flip_of(n);
    Workload {
        name,
        description,
        program: build_program(),
        args: vec![Value::Int(n), Value::Int(flip)],
        expected_checksum: reference_checksum(n, flip),
    }
}

/// The program text is independent of scale and flip point — both ride
/// in as arguments — so every variant of the family shares one program
/// hash.
fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let phases = pb.declare_function("phases", 2, true);
    let main = pb.declare_function("main", 2, false);

    // phases(n, flip) -> sum.
    {
        let b = pb.function_mut(phases);
        let (len, flip) = (0u16, 1u16);
        let state = b.alloc_local();
        let sum = b.alloc_local();
        let i = b.alloc_local();
        let r = b.alloc_local();
        let thresh = b.alloc_local();
        b.iconst(SEED).store(state);
        b.iconst(0).store(sum).iconst(0).store(i);

        let head = b.bind_new_label();
        let exit = b.new_label();
        let late = b.new_label();
        let cmp = b.new_label();
        let cold = b.new_label();
        let fold = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        // r = lcg draw in [0, 100).
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 100);
        b.store(r);
        // thresh = i < flip ? HOT : COLD — the phase branch.
        b.load(i).load(flip).if_icmp(CmpOp::Ge, late);
        b.iconst(HOT_THRESH).store(thresh).goto(cmp);
        b.bind(late);
        b.iconst(COLD_THRESH).store(thresh);
        b.bind(cmp);
        // The guard whose bias rots: r < thresh.
        b.load(r).load(thresh).if_icmp(CmpOp::Ge, cold);
        // Hot arm: sum += i*3 + r.
        b.load(sum)
            .load(i)
            .iconst(3)
            .imul()
            .iadd()
            .load(r)
            .iadd()
            .store(sum);
        b.goto(fold);
        // Cold arm: sum += r*7 - i.
        b.bind(cold);
        b.load(sum)
            .load(r)
            .iconst(7)
            .imul()
            .iadd()
            .load(i)
            .isub()
            .store(sum);
        b.bind(fold);
        // Fold every iteration: a strong oracle — any divergence in any
        // iteration's arm choice changes the final checksum.
        b.load(sum).intrinsic(Intrinsic::Checksum);
        b.iinc(i, 1).goto(head);

        b.bind(exit);
        b.load(sum).ret();
    }

    // main(n, flip): phases(n, flip), checksum the result.
    {
        let b = pb.function_mut(main);
        b.load(0).load(1).invoke_static(phases);
        b.intrinsic(Intrinsic::Checksum);
        b.ret_void();
    }

    pb.build(main).expect("phase_shift workload builds")
}

/// Reference implementation: replays the identical arithmetic in Rust.
pub fn reference_checksum(n: i64, flip: i64) -> u64 {
    let mut state = SEED;
    let mut sum = 0i64;
    let mut checksum = 0u64;
    for i in 0..n {
        state = lcg_next(state);
        let r = lcg_sample(state, 100);
        let thresh = if i < flip { HOT_THRESH } else { COLD_THRESH };
        if r < thresh {
            sum = sum + i * 3 + r;
        } else {
            sum = sum + r * 7 - i;
        }
        checksum = fold_checksum(checksum, sum);
    }
    fold_checksum(checksum, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference_on_all_variants() {
        for w in [
            build(Scale::Test),
            build_early(Scale::Test),
            build_late(Scale::Test),
        ] {
            let mut vm = Vm::new(&w.program);
            vm.run(&w.args, &mut NullObserver).expect("runs");
            assert_eq!(vm.checksum(), w.expected_checksum, "{}", w.name);
            assert!(vm.stats().instructions > 10_000);
        }
    }

    #[test]
    fn variants_share_one_program_and_differ_only_in_args() {
        let (a, b, c) = (
            build(Scale::Test),
            build_early(Scale::Test),
            build_late(Scale::Test),
        );
        // Same program text ⇒ same snapshot hash domain (the warm-boot
        // staleness test depends on this).
        assert_eq!(
            trace_persist::program_hash(&a.program),
            trace_persist::program_hash(&b.program)
        );
        assert_eq!(
            trace_persist::program_hash(&a.program),
            trace_persist::program_hash(&c.program)
        );
        assert_ne!(a.args, b.args);
        assert_ne!(b.args, c.args);
        assert_ne!(a.expected_checksum, b.expected_checksum);
    }

    #[test]
    fn bias_actually_flips() {
        // Count hot-arm hits on each side of the flip in the reference
        // replay: strongly biased before, strongly anti-biased after.
        let n = iterations(Scale::Test);
        let flip = n / 2;
        let mut state = SEED;
        let (mut hot_before, mut hot_after) = (0i64, 0i64);
        for i in 0..n {
            state = lcg_next(state);
            let r = lcg_sample(state, 100);
            let thresh = if i < flip { HOT_THRESH } else { COLD_THRESH };
            if r < thresh {
                if i < flip {
                    hot_before += 1;
                } else {
                    hot_after += 1;
                }
            }
        }
        assert!(
            hot_before * 10 > flip * 8,
            "pre-flip hot arm must dominate: {hot_before}/{flip}"
        );
        assert!(
            hot_after * 10 < (n - flip) * 2,
            "post-flip hot arm must be rare: {hot_after}/{}",
            n - flip
        );
    }
}

//! `mpegaudio` analogue: fixed-point FIR filter bank with subband
//! windowing and quantisation.
//!
//! SPECjvm `mpegaudio` decodes MP3 frames — numerically heavy, extremely
//! regular inner loops (polyphase filter banks) with only rare
//! data-dependent branches (quantiser clamps). The analogue mirrors that:
//! a 32-tap FIR over a generated sample stream, an 8-subband windowed
//! energy accumulation per 32-sample frame, and saturating clamps that
//! almost never fire. Its branch profile is the most predictable of the
//! six workloads, which is why the paper's scimark/mpegaudio columns show
//! the longest traces.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

const SEED: i64 = 55555;
/// Real MPEG-1 layer-III synthesis windows are 512 taps; 128 keeps runs
/// fast while preserving the long-trip-count inner loop that makes this
/// benchmark's branches the most predictable of the suite.
const TAPS: i64 = 128;
const SUBBANDS: i64 = 8;
const FRAME: i64 = 32;

fn sample_count(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 2_000,
        Scale::Small => 30_000,
        Scale::Paper => 300_000,
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let n = sample_count(scale);
    Workload {
        name: "mpegaudio",
        description: "fixed-point FIR filter bank + subband windowing",
        program: build_program(n),
        args: vec![Value::Int(SEED)],
        expected_checksum: reference_checksum(SEED, n),
    }
}

fn build_program(n: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let fir_at = pb.declare_function("fir_at", 3, true);
    let band_energy = pb.declare_function("band_energy", 4, true);
    let fir = pb.declare_function("fir", 4, false);
    let subband = pb.declare_function("subband", 4, false);
    let main = pb.declare_function("main", 1, false);

    // fir_at(input, coef, i) -> Σ_k coef[k]·in[i-k], factored into a leaf
    // method as the Java original's per-sample MAC helper would be.
    {
        let b = pb.function_mut(fir_at);
        let (input, coef, i) = (0u16, 1u16, 2u16);
        let k = b.alloc_local();
        let acc = b.alloc_local();
        b.iconst(0).store(acc).iconst(0).store(k);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(k).iconst(TAPS).if_icmp(CmpOp::Ge, exit);
        b.load(acc);
        b.load(coef).load(k).aload();
        b.load(input).load(i).load(k).isub().aload();
        b.imul().iadd().store(acc);
        b.iinc(k, 1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
    }

    // band_energy(signal, window, f, sb) -> windowed frame energy.
    {
        let b = pb.function_mut(band_energy);
        let (signal, window, f, sb) = (0u16, 1u16, 2u16, 3u16);
        let j = b.alloc_local();
        let e = b.alloc_local();
        b.iconst(0).store(e).iconst(0).store(j);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(j).iconst(FRAME).if_icmp(CmpOp::Ge, exit);
        b.load(e);
        b.load(signal).load(f).load(j).iadd().aload();
        b.load(window)
            .load(sb)
            .iconst(FRAME)
            .imul()
            .load(j)
            .iadd()
            .aload();
        b.imul().iconst(15).ishr().iadd().store(e);
        b.iinc(j, 1).goto(head);
        b.bind(exit);
        b.load(e).ret();
    }

    // fir(input, output, coef, n): out[i] = fir_at(input, coef, i) >> 15
    // for i in TAPS-1..n (leading samples left at zero).
    {
        let b = pb.function_mut(fir);
        let (input, output, coef, len) = (0u16, 1u16, 2u16, 3u16);
        let i = b.alloc_local();
        b.iconst(TAPS - 1).store(i);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        b.load(output).load(i);
        b.load(input).load(coef).load(i).invoke_static(fir_at);
        b.iconst(15).ishr().astore();
        b.iinc(i, 1).goto(head);
        b.bind(exit);
        b.ret_void();
    }

    // subband(signal, window, bands, n): per frame, per subband, windowed
    // energy with a saturating clamp, accumulated into bands.
    {
        let b = pb.function_mut(subband);
        let (signal, window, bands, len) = (0u16, 1u16, 2u16, 3u16);
        let f = b.alloc_local(); // frame start
        let sb = b.alloc_local();
        let e = b.alloc_local();
        b.iconst(0).store(f);
        let frame_head = b.bind_new_label();
        let frame_exit = b.new_label();
        b.load(f)
            .iconst(FRAME)
            .iadd()
            .load(len)
            .if_icmp(CmpOp::Gt, frame_exit);
        b.iconst(0).store(sb);
        let sb_head = b.bind_new_label();
        let sb_exit = b.new_label();
        b.load(sb).iconst(SUBBANDS).if_icmp(CmpOp::Ge, sb_exit);
        b.load(signal)
            .load(window)
            .load(f)
            .load(sb)
            .invoke_static(band_energy);
        b.store(e);
        // Saturating clamp (rare path: window/signal magnitudes keep |e|
        // almost always inside the 20-bit band).
        let no_hi = b.new_label();
        let no_lo = b.new_label();
        b.load(e).iconst(1 << 20).if_icmp(CmpOp::Le, no_hi);
        b.iconst(1 << 20).store(e);
        b.bind(no_hi);
        b.load(e).iconst(-(1 << 20)).if_icmp(CmpOp::Ge, no_lo);
        b.iconst(-(1 << 20)).store(e);
        b.bind(no_lo);
        b.load(bands).load(sb);
        b.load(bands).load(sb).aload().load(e).iadd().astore();
        b.iinc(sb, 1).goto(sb_head);
        b.bind(sb_exit);
        b.load(f).iconst(FRAME).iadd().store(f);
        b.goto(frame_head);
        b.bind(frame_exit);
        b.ret_void();
    }

    // main(seed): generate samples, coefficients and window, run the
    // pipeline, checksum the band accumulators.
    {
        let b = pb.function_mut(main);
        let state = 0u16;
        let input = b.alloc_local();
        let output = b.alloc_local();
        let coef = b.alloc_local();
        let window = b.alloc_local();
        let bands = b.alloc_local();
        let i = b.alloc_local();

        b.iconst(n).new_array().store(input);
        b.iconst(n).new_array().store(output);
        b.iconst(TAPS).new_array().store(coef);
        b.iconst(SUBBANDS * FRAME).new_array().store(window);
        b.iconst(SUBBANDS).new_array().store(bands);

        // Samples in [-32768, 32768).
        b.iconst(0).store(i);
        let s_head = b.bind_new_label();
        let s_exit = b.new_label();
        b.load(i).iconst(n).if_icmp(CmpOp::Ge, s_exit);
        b.load(input).load(i);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 65536);
        b.iconst(32768).isub().astore();
        b.iinc(i, 1).goto(s_head);
        b.bind(s_exit);

        // Coefficients in [-16384, 16384).
        b.iconst(0).store(i);
        let c_head = b.bind_new_label();
        let c_exit = b.new_label();
        b.load(i).iconst(TAPS).if_icmp(CmpOp::Ge, c_exit);
        b.load(coef).load(i);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 32768);
        b.iconst(16384).isub().astore();
        b.iinc(i, 1).goto(c_head);
        b.bind(c_exit);

        // Window in [-8192, 8192).
        b.iconst(0).store(i);
        let w_head = b.bind_new_label();
        let w_exit = b.new_label();
        b.load(i)
            .iconst(SUBBANDS * FRAME)
            .if_icmp(CmpOp::Ge, w_exit);
        b.load(window).load(i);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 16384);
        b.iconst(8192).isub().astore();
        b.iinc(i, 1).goto(w_head);
        b.bind(w_exit);

        b.load(input)
            .load(output)
            .load(coef)
            .iconst(n)
            .invoke_static(fir);
        b.load(output)
            .load(window)
            .load(bands)
            .iconst(n)
            .invoke_static(subband);

        b.iconst(0).store(i);
        let k_head = b.bind_new_label();
        let k_exit = b.new_label();
        b.load(i).iconst(SUBBANDS).if_icmp(CmpOp::Ge, k_exit);
        b.load(bands).load(i).aload().intrinsic(Intrinsic::Checksum);
        b.iinc(i, 1).goto(k_head);
        b.bind(k_exit);
        b.ret_void();
    }

    let entry = pb.func_id("main").expect("declared");
    pb.build(entry).expect("mpegaudio workload builds")
}

// ---------------------------------------------------------------------------
// Reference implementation.
// ---------------------------------------------------------------------------

/// Reference replay computing the expected checksum.
pub fn reference_checksum(seed: i64, n: i64) -> u64 {
    let mut state = seed;
    let mut draw = |bound: i64, off: i64| {
        state = lcg_next(state);
        lcg_sample(state, bound) + off
    };
    let input: Vec<i64> = (0..n).map(|_| draw(65536, -32768)).collect();
    let coef: Vec<i64> = (0..TAPS).map(|_| draw(32768, -16384)).collect();
    let window: Vec<i64> = (0..SUBBANDS * FRAME).map(|_| draw(16384, -8192)).collect();

    let mut output = vec![0i64; n as usize];
    for i in (TAPS - 1)..n {
        let mut acc = 0i64;
        for k in 0..TAPS {
            acc += coef[k as usize] * input[(i - k) as usize];
        }
        output[i as usize] = acc >> 15;
    }

    let mut bands = vec![0i64; SUBBANDS as usize];
    let mut f = 0i64;
    while f + FRAME <= n {
        for sb in 0..SUBBANDS {
            let mut e = 0i64;
            for j in 0..FRAME {
                e += (output[(f + j) as usize] * window[(sb * FRAME + j) as usize]) >> 15;
            }
            e = e.clamp(-(1 << 20), 1 << 20);
            bands[sb as usize] += e;
        }
        f += FRAME;
    }

    let mut checksum = 0u64;
    for &b in &bands {
        checksum = fold_checksum(checksum, b);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
    }

    #[test]
    fn bands_accumulate_nonzero_energy() {
        // A silent pipeline (all-zero bands) means the fixed-point scaling
        // is wrong.
        let n = sample_count(Scale::Test);
        let mut zero = 0u64;
        for _ in 0..SUBBANDS {
            zero = fold_checksum(zero, 0);
        }
        assert_ne!(reference_checksum(SEED, n), zero);
    }
}

//! `scimark` analogue: SOR stencil, Monte Carlo integration, and sparse
//! matrix-vector kernels.
//!
//! SciMark is the paper's "scientific application" (§5.1): floating-point
//! kernels whose loops are so regular that the trace cache reaches its
//! longest traces and best coverage on it (the scimark column tops
//! Table I at every threshold). The analogue runs three of SciMark's
//! kernel shapes with in-program generated data:
//!
//! * **SOR** — Gauss–Seidel successive over-relaxation sweeps over an
//!   `N×N` grid (perfectly nested, perfectly predictable loops);
//! * **Monte Carlo** — π estimation, one data-dependent but unbiased
//!   branch per sample;
//! * **Sparse mat-vec** — CSR-style gather loops with indirection.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

const SEED: i64 = 777;
const OMEGA: f64 = 1.25;
const NZ_PER_ROW: i64 = 5;

/// Problem sizes of the three kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sizes {
    /// SOR grid edge length `N` (the grid is `N×N`).
    pub grid: i64,
    /// SOR sweeps.
    pub sweeps: i64,
    /// Monte Carlo samples.
    pub mc_samples: i64,
    /// Sparse matrix rows.
    pub sparse_rows: i64,
    /// Sparse mat-vec repetitions.
    pub sparse_reps: i64,
}

/// The kernel sizes used at each scale.
pub fn sizes(scale: Scale) -> Sizes {
    match scale {
        // Grid widths keep SciMark's defining property: very long
        // inner-loop trip counts (SciMark's own SOR grid is 100×100), so
        // loop back-edge correlations sit near 1.0 and traces can unroll
        // several iterations.
        Scale::Test => Sizes {
            grid: 40,
            sweeps: 4,
            mc_samples: 2_000,
            sparse_rows: 200,
            sparse_reps: 5,
        },
        Scale::Small => Sizes {
            grid: 100,
            sweeps: 30,
            mc_samples: 60_000,
            sparse_rows: 1_500,
            sparse_reps: 20,
        },
        Scale::Paper => Sizes {
            grid: 200,
            sweeps: 60,
            mc_samples: 600_000,
            sparse_rows: 12_000,
            sparse_reps: 60,
        },
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let s = sizes(scale);
    Workload {
        name: "scimark",
        description: "SOR + Monte Carlo + sparse mat-vec scientific kernels",
        program: build_program(&s),
        args: vec![Value::Int(SEED)],
        expected_checksum: reference_checksum(SEED, &s),
    }
}

/// Emits code pushing a float in `[0, 1)` drawn from the LCG.
fn emit_unit_float(b: &mut jvm_bytecode::FunctionBuilder, state: u16) {
    emit_lcg_step(b, state);
    emit_lcg_sample(b, state, 65536);
    b.i2f().fconst(65536.0).fdiv();
}

fn unit_float(state: &mut i64) -> f64 {
    *state = lcg_next(*state);
    lcg_sample(*state, 65536) as f64 / 65536.0
}

fn build_program(s: &Sizes) -> Program {
    let n = s.grid;
    let mut pb = ProgramBuilder::new();
    let stencil = pb.declare_function("stencil", 3, true);
    let next_unit = pb.declare_function("next_unit", 1, true);
    let row_dot = pb.declare_function("row_dot", 4, true);
    let sor = pb.declare_function("sor", 3, false);
    let montecarlo = pb.declare_function("montecarlo", 2, true);
    let sparse = pb.declare_function("sparse", 6, false);
    let main = pb.declare_function("main", 1, false);

    // stencil(g, idx, n) -> the relaxed value at idx. Factored out as the
    // Java original would be; the call edges add (perfectly predictable)
    // blocks to the hot SOR loop body.
    {
        let b = pb.function_mut(stencil);
        let (g, idx, n_l) = (0u16, 1u16, 2u16);
        b.load(g).load(idx).load(n_l).isub().aload(); // up
        b.load(g).load(idx).load(n_l).iadd().aload().fadd(); // +down
        b.load(g).load(idx).iconst(1).isub().aload().fadd(); // +left
        b.load(g).load(idx).iconst(1).iadd().aload().fadd(); // +right
        b.fconst(OMEGA * 0.25).fmul();
        b.load(g)
            .load(idx)
            .aload()
            .fconst(1.0 - OMEGA)
            .fmul()
            .fadd();
        b.ret();
    }

    // next_unit(st) -> a fresh float in [0,1); st is a one-element state
    // array (the analogue of java.util.Random's internal state).
    {
        let b = pb.function_mut(next_unit);
        let st = 0u16;
        b.load(st).iconst(0);
        b.load(st)
            .iconst(0)
            .aload()
            .iconst(crate::lcg::LCG_MUL)
            .imul()
            .iconst(crate::lcg::LCG_INC)
            .iadd();
        b.astore();
        b.load(st)
            .iconst(0)
            .aload()
            .iconst(33)
            .iushr()
            .iconst(65536)
            .irem()
            .i2f()
            .fconst(65536.0)
            .fdiv()
            .ret();
    }

    // row_dot(vals, cols, x, i) -> the i-th row's sparse dot product.
    {
        let b = pb.function_mut(row_dot);
        let (vals, cols, x, i) = (0u16, 1u16, 2u16, 3u16);
        let k = b.alloc_local();
        let acc = b.alloc_local();
        b.fconst(0.0).store(acc).iconst(0).store(k);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(k).iconst(NZ_PER_ROW).if_icmp(CmpOp::Ge, exit);
        b.load(acc);
        b.load(vals)
            .load(i)
            .iconst(NZ_PER_ROW)
            .imul()
            .load(k)
            .iadd()
            .aload();
        b.load(x)
            .load(cols)
            .load(i)
            .iconst(NZ_PER_ROW)
            .imul()
            .load(k)
            .iadd()
            .aload()
            .aload();
        b.fmul().fadd().store(acc);
        b.iinc(k, 1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
    }

    // sor(g, n, sweeps): in-place Gauss-Seidel SOR over the interior.
    {
        let b = pb.function_mut(sor);
        let (g, n_l, sweeps) = (0u16, 1u16, 2u16);
        let p = b.alloc_local();
        let i = b.alloc_local();
        let j = b.alloc_local();
        let idx = b.alloc_local();
        b.iconst(0).store(p);
        let p_head = b.bind_new_label();
        let p_exit = b.new_label();
        b.load(p).load(sweeps).if_icmp(CmpOp::Ge, p_exit);
        b.iconst(1).store(i);
        let i_head = b.bind_new_label();
        let i_exit = b.new_label();
        b.load(i)
            .load(n_l)
            .iconst(1)
            .isub()
            .if_icmp(CmpOp::Ge, i_exit);
        b.iconst(1).store(j);
        let j_head = b.bind_new_label();
        let j_exit = b.new_label();
        b.load(j)
            .load(n_l)
            .iconst(1)
            .isub()
            .if_icmp(CmpOp::Ge, j_exit);
        b.load(i).load(n_l).imul().load(j).iadd().store(idx);
        // g[idx] = stencil(g, idx, n).
        b.load(g).load(idx);
        b.load(g).load(idx).load(n_l).invoke_static(stencil);
        b.astore();
        b.iinc(j, 1).goto(j_head);
        b.bind(j_exit);
        b.iinc(i, 1).goto(i_head);
        b.bind(i_exit);
        b.iinc(p, 1).goto(p_head);
        b.bind(p_exit);
        b.ret_void();
    }

    // montecarlo(m, seed) -> hits inside the unit circle. The PRNG lives
    // behind a call, as java.util.Random would.
    {
        let b = pb.function_mut(montecarlo);
        let (m, seed) = (0u16, 1u16);
        let st = b.alloc_local();
        let k = b.alloc_local();
        let hits = b.alloc_local();
        let x = b.alloc_local();
        let y = b.alloc_local();
        b.iconst(1).new_array().store(st);
        b.load(st).iconst(0).load(seed).astore();
        b.iconst(0).store(k).iconst(0).store(hits);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(k).load(m).if_icmp(CmpOp::Ge, exit);
        b.load(st).invoke_static(next_unit).store(x);
        b.load(st).invoke_static(next_unit).store(y);
        let miss = b.new_label();
        b.load(x).load(x).fmul().load(y).load(y).fmul().fadd();
        b.fconst(1.0).if_fcmp(CmpOp::Gt, miss);
        b.iinc(hits, 1);
        b.bind(miss);
        b.iinc(k, 1).goto(head);
        b.bind(exit);
        b.load(hits).ret();
    }

    // sparse(vals, cols, x, y, rows, reps): y = A·x; x = 0.2·y, repeated.
    {
        let b = pb.function_mut(sparse);
        let (vals, cols, x, y, rows, reps) = (0u16, 1u16, 2u16, 3u16, 4u16, 5u16);
        let r = b.alloc_local();
        let i = b.alloc_local();
        let acc = b.alloc_local();
        b.iconst(0).store(r);
        let r_head = b.bind_new_label();
        let r_exit = b.new_label();
        b.load(r).load(reps).if_icmp(CmpOp::Ge, r_exit);
        b.iconst(0).store(i);
        let i_head = b.bind_new_label();
        let i_exit = b.new_label();
        b.load(i).load(rows).if_icmp(CmpOp::Ge, i_exit);
        // y[i] = row_dot(vals, cols, x, i).
        b.load(vals)
            .load(cols)
            .load(x)
            .load(i)
            .invoke_static(row_dot)
            .store(acc);
        b.load(y).load(i).load(acc).astore();
        b.iinc(i, 1).goto(i_head);
        b.bind(i_exit);
        // x = 0.2 * y.
        b.iconst(0).store(i);
        let c_head = b.bind_new_label();
        let c_exit = b.new_label();
        b.load(i).load(rows).if_icmp(CmpOp::Ge, c_exit);
        b.load(x)
            .load(i)
            .load(y)
            .load(i)
            .aload()
            .fconst(0.2)
            .fmul()
            .astore();
        b.iinc(i, 1).goto(c_head);
        b.bind(c_exit);
        b.iinc(r, 1).goto(r_head);
        b.bind(r_exit);
        b.ret_void();
    }

    // main(seed): generate, run kernels, checksum scaled sums.
    {
        let b = pb.function_mut(main);
        let state = 0u16;
        let g = b.alloc_local();
        let vals = b.alloc_local();
        let cols = b.alloc_local();
        let x = b.alloc_local();
        let y = b.alloc_local();
        let i = b.alloc_local();
        let facc = b.alloc_local();

        // Grid init with unit floats.
        b.iconst(n * n).new_array().store(g);
        b.iconst(0).store(i);
        let gi_head = b.bind_new_label();
        let gi_exit = b.new_label();
        b.load(i).iconst(n * n).if_icmp(CmpOp::Ge, gi_exit);
        b.load(g).load(i);
        emit_unit_float(b, state);
        b.astore();
        b.iinc(i, 1).goto(gi_head);
        b.bind(gi_exit);

        // Sparse matrix init.
        b.iconst(s.sparse_rows * NZ_PER_ROW).new_array().store(vals);
        b.iconst(s.sparse_rows * NZ_PER_ROW).new_array().store(cols);
        b.iconst(s.sparse_rows).new_array().store(x);
        b.iconst(s.sparse_rows).new_array().store(y);
        b.iconst(0).store(i);
        let sp_head = b.bind_new_label();
        let sp_exit = b.new_label();
        b.load(i)
            .iconst(s.sparse_rows * NZ_PER_ROW)
            .if_icmp(CmpOp::Ge, sp_exit);
        b.load(vals).load(i);
        emit_unit_float(b, state);
        b.astore();
        b.load(cols).load(i);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, s.sparse_rows);
        b.astore();
        b.iinc(i, 1).goto(sp_head);
        b.bind(sp_exit);
        b.iconst(0).store(i);
        let x_head = b.bind_new_label();
        let x_exit = b.new_label();
        b.load(i).iconst(s.sparse_rows).if_icmp(CmpOp::Ge, x_exit);
        b.load(x).load(i).fconst(1.0).astore();
        b.iinc(i, 1).goto(x_head);
        b.bind(x_exit);

        // Kernels.
        b.load(g).iconst(n).iconst(s.sweeps).invoke_static(sor);
        b.iconst(s.mc_samples).load(state).invoke_static(montecarlo);
        b.intrinsic(Intrinsic::Checksum); // hits
        b.load(vals)
            .load(cols)
            .load(x)
            .load(y)
            .iconst(s.sparse_rows)
            .iconst(s.sparse_reps)
            .invoke_static(sparse);

        // checksum f2i(sum(g) * 65536).
        b.fconst(0.0).store(facc);
        b.iconst(0).store(i);
        let cg_head = b.bind_new_label();
        let cg_exit = b.new_label();
        b.load(i).iconst(n * n).if_icmp(CmpOp::Ge, cg_exit);
        b.load(facc).load(g).load(i).aload().fadd().store(facc);
        b.iinc(i, 1).goto(cg_head);
        b.bind(cg_exit);
        b.load(facc)
            .fconst(65536.0)
            .fmul()
            .f2i()
            .intrinsic(Intrinsic::Checksum);

        // checksum f2i(sum(x) * 65536).
        b.fconst(0.0).store(facc);
        b.iconst(0).store(i);
        let cx_head = b.bind_new_label();
        let cx_exit = b.new_label();
        b.load(i).iconst(s.sparse_rows).if_icmp(CmpOp::Ge, cx_exit);
        b.load(facc).load(x).load(i).aload().fadd().store(facc);
        b.iinc(i, 1).goto(cx_head);
        b.bind(cx_exit);
        b.load(facc)
            .fconst(65536.0)
            .fmul()
            .f2i()
            .intrinsic(Intrinsic::Checksum);
        b.ret_void();
    }

    let entry = pb.func_id("main").expect("declared");
    pb.build(entry).expect("scimark workload builds")
}

// ---------------------------------------------------------------------------
// Reference implementation.
// ---------------------------------------------------------------------------

/// Reference replay computing the expected checksum.
pub fn reference_checksum(seed: i64, s: &Sizes) -> u64 {
    let n = s.grid as usize;
    let mut state = seed;

    let mut g: Vec<f64> = (0..n * n).map(|_| unit_float(&mut state)).collect();
    let nz = (s.sparse_rows * NZ_PER_ROW) as usize;
    let mut vals = Vec::with_capacity(nz);
    let mut cols = Vec::with_capacity(nz);
    for _ in 0..nz {
        vals.push(unit_float(&mut state));
        state = lcg_next(state);
        cols.push(lcg_sample(state, s.sparse_rows) as usize);
    }
    let mut x = vec![1.0f64; s.sparse_rows as usize];
    let mut y = vec![0.0f64; s.sparse_rows as usize];

    // SOR.
    for _ in 0..s.sweeps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                g[idx] = (((g[idx - n] + g[idx + n]) + g[idx - 1]) + g[idx + 1]) * (OMEGA * 0.25)
                    + g[idx] * (1.0 - OMEGA);
            }
        }
    }

    // Monte Carlo, continuing the same LCG stream.
    let mut mc_state = state;
    let mut hits = 0i64;
    for _ in 0..s.mc_samples {
        let px = unit_float(&mut mc_state);
        let py = unit_float(&mut mc_state);
        if px * px + py * py <= 1.0 {
            hits += 1;
        }
    }

    // Sparse.
    for _ in 0..s.sparse_reps {
        for (i, yi) in y.iter_mut().enumerate().take(s.sparse_rows as usize) {
            let mut acc = 0.0f64;
            for k in 0..NZ_PER_ROW as usize {
                let e = i * NZ_PER_ROW as usize + k;
                acc += vals[e] * x[cols[e]];
            }
            *yi = acc;
        }
        for i in 0..s.sparse_rows as usize {
            x[i] = y[i] * 0.2;
        }
    }

    let mut checksum = fold_checksum(0, hits);
    let gsum: f64 = g.iter().sum();
    checksum = fold_checksum(checksum, (gsum * 65536.0) as i64);
    let xsum: f64 = x.iter().sum();
    fold_checksum(checksum, (xsum * 65536.0) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
    }

    #[test]
    fn monte_carlo_estimates_pi() {
        let mut state = SEED;
        let m = 100_000;
        let mut hits = 0i64;
        for _ in 0..m {
            let x = unit_float(&mut state);
            let y = unit_float(&mut state);
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        let pi = 4.0 * hits as f64 / m as f64;
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi ≈ {pi}");
    }

    #[test]
    fn sor_smooths_the_grid() {
        // After SOR, interior variance should shrink relative to the
        // random initial grid.
        let s = sizes(Scale::Test);
        let n = s.grid as usize;
        let mut state = SEED;
        let mut g: Vec<f64> = (0..n * n).map(|_| unit_float(&mut state)).collect();
        let var = |g: &[f64]| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / g.len() as f64
        };
        let v0 = var(&g);
        for _ in 0..s.sweeps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let idx = i * n + j;
                    g[idx] = (((g[idx - n] + g[idx + n]) + g[idx - 1]) + g[idx + 1])
                        * (OMEGA * 0.25)
                        + g[idx] * (1.0 - OMEGA);
                }
            }
        }
        assert!(var(&g) < v0, "SOR must smooth");
    }
}

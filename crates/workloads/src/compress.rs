//! `compress` analogue: an LZW-style dictionary compressor.
//!
//! SPECjvm `compress` is a long-running, loop-dominated compressor whose
//! branches are mostly predictable (the paper calls it a "simple program
//! which exhibits predictable behaviour"). This analogue reproduces that
//! profile: a single hot loop over the input symbols, an inner
//! linear-probing dictionary lookup whose exit is strongly biased (most
//! probes hit on the first slot), and a rare dictionary-reset path.
//!
//! The input is generated in-program: a run-biased symbol stream (75%
//! chance of repeating the previous symbol) so the dictionary actually
//! compresses it.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

/// Hash-table size (power of two) and dictionary capacity.
const TABLE: i64 = 8192;
const MASK: i64 = TABLE - 1;
const DICT_CAP: i64 = 4096;
const HASH_MUL: i64 = 0x9E37_79B9_7F4A_7C15u64 as i64;
const SEED: i64 = 12345;

fn input_len(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 2_000,
        Scale::Small => 60_000,
        Scale::Paper => 600_000,
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let n = input_len(scale);
    let program = build_program(n);
    let expected_checksum = reference_checksum(SEED, n);
    Workload {
        name: "compress",
        description: "LZW-style compressor over a run-biased symbol stream",
        program,
        args: vec![Value::Int(SEED)],
        expected_checksum,
    }
}

fn build_program(n: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let gen_input = pb.declare_function("gen_input", 3, false);
    let hash = pb.declare_function("hash", 1, true);
    let compress = pb.declare_function("compress", 2, true);
    let main = pb.declare_function("main", 1, false);

    // hash(key) -> slot: a small leaf method, as the Java original would
    // factor it. Calls split the hot loop body into more basic blocks —
    // the call-dense shape the paper observes in Java code.
    {
        let b = pb.function_mut(hash);
        b.load(0)
            .iconst(HASH_MUL)
            .imul()
            .iconst(49)
            .iushr()
            .iconst(MASK)
            .iand()
            .ret();
    }

    // gen_input(arr, n, seed): fill arr with a run-biased symbol stream.
    {
        let b = pb.function_mut(gen_input);
        let (arr, len, state) = (0u16, 1u16, 2u16);
        let i = b.alloc_local();
        let prev = b.alloc_local();
        b.iconst(0).store(i).iconst(0).store(prev);
        let head = b.bind_new_label();
        let exit = b.new_label();
        let fresh = b.new_label();
        let store_sym = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 4);
        // sample == 0 (25%): draw a fresh symbol; otherwise repeat prev.
        b.if_i(CmpOp::Eq, fresh);
        b.goto(store_sym);
        b.bind(fresh);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 256);
        b.store(prev);
        b.bind(store_sym);
        b.load(arr).load(i).load(prev).astore();
        b.iinc(i, 1).goto(head);
        b.bind(exit);
        b.ret_void();
    }

    // compress(input, n) -> next_code: LZW with linear-probing dictionary.
    {
        let b = pb.function_mut(compress);
        let (input, len) = (0u16, 1u16);
        let hkey = b.alloc_local();
        let hval = b.alloc_local();
        let w = b.alloc_local();
        let i = b.alloc_local();
        let c = b.alloc_local();
        let key = b.alloc_local();
        let h = b.alloc_local();
        let next_code = b.alloc_local();
        let j = b.alloc_local();

        b.iconst(TABLE).new_array().store(hkey);
        b.iconst(TABLE).new_array().store(hval);
        b.iconst(256).store(next_code);
        b.load(input).iconst(0).aload().store(w);
        b.iconst(1).store(i);

        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(i).load(len).if_icmp(CmpOp::Ge, exit);
        // c = input[i]; key = w*256 + c + 1.
        b.load(input).load(i).aload().store(c);
        b.load(w)
            .iconst(256)
            .imul()
            .load(c)
            .iadd()
            .iconst(1)
            .iadd()
            .store(key);
        // h = hash(key).
        b.load(key).invoke_static(hash).store(h);
        // Probe: advance while slot is neither empty nor our key.
        let probe = b.bind_new_label();
        let probe_done = b.new_label();
        b.load(hkey).load(h).aload().if_i(CmpOp::Eq, probe_done); // empty
        b.load(hkey)
            .load(h)
            .aload()
            .load(key)
            .if_icmp(CmpOp::Eq, probe_done);
        b.load(h).iconst(1).iadd().iconst(MASK).iand().store(h);
        b.goto(probe);
        b.bind(probe_done);
        // Found?
        let miss = b.new_label();
        let advance = b.new_label();
        b.load(hkey)
            .load(h)
            .aload()
            .load(key)
            .if_icmp(CmpOp::Ne, miss);
        // Hit: extend the phrase.
        b.load(hval).load(h).aload().store(w);
        b.goto(advance);
        // Miss: emit w, insert (or reset a full dictionary), w = c.
        b.bind(miss);
        b.load(w).intrinsic(Intrinsic::Checksum);
        let reset = b.new_label();
        let after_insert = b.new_label();
        b.load(next_code).iconst(DICT_CAP).if_icmp(CmpOp::Ge, reset);
        b.load(hkey).load(h).load(key).astore();
        b.load(hval).load(h).load(next_code).astore();
        b.iinc(next_code, 1);
        b.goto(after_insert);
        // Dictionary full: clear the key table (rare path).
        b.bind(reset);
        b.iconst(0).store(j);
        let clear = b.bind_new_label();
        let clear_done = b.new_label();
        b.load(j).iconst(TABLE).if_icmp(CmpOp::Ge, clear_done);
        b.load(hkey).load(j).iconst(0).astore();
        b.iinc(j, 1).goto(clear);
        b.bind(clear_done);
        b.iconst(256).store(next_code);
        b.bind(after_insert);
        b.load(c).store(w);
        b.bind(advance);
        b.iinc(i, 1).goto(head);

        b.bind(exit);
        b.load(w).intrinsic(Intrinsic::Checksum);
        b.load(next_code).intrinsic(Intrinsic::Checksum);
        b.load(next_code).ret();
    }

    // main(seed): arr = new[n]; gen_input(arr, n, seed); compress(arr, n).
    {
        let b = pb.function_mut(main);
        let seed = 0u16;
        let arr = b.alloc_local();
        b.iconst(n).new_array().store(arr);
        b.load(arr).iconst(n).load(seed).invoke_static(gen_input);
        b.load(arr).iconst(n).invoke_static(compress);
        b.pop();
        b.ret_void();
    }

    pb.build(main).expect("compress workload builds")
}

/// Reference implementation: replays the identical arithmetic in Rust and
/// returns the checksum the program must accumulate.
pub fn reference_checksum(seed: i64, n: i64) -> u64 {
    // gen_input
    let mut state = seed;
    let mut prev = 0i64;
    let mut input = Vec::with_capacity(n as usize);
    for _ in 0..n {
        state = lcg_next(state);
        if lcg_sample(state, 4) == 0 {
            state = lcg_next(state);
            prev = lcg_sample(state, 256);
        }
        input.push(prev);
    }

    // compress
    let mut checksum = 0u64;
    let mut hkey = vec![0i64; TABLE as usize];
    let mut hval = vec![0i64; TABLE as usize];
    let mut next_code = 256i64;
    let mut w = input[0];
    for &c in &input[1..] {
        let key = w * 256 + c + 1;
        let mut h = (((key.wrapping_mul(HASH_MUL) as u64) >> 49) as i64 & MASK) as usize;
        loop {
            let k = hkey[h];
            if k == 0 || k == key {
                break;
            }
            h = (h + 1) & MASK as usize;
        }
        if hkey[h] == key {
            w = hval[h];
        } else {
            checksum = fold_checksum(checksum, w);
            if next_code < DICT_CAP {
                hkey[h] = key;
                hval[h] = next_code;
                next_code += 1;
            } else {
                hkey.iter_mut().for_each(|k| *k = 0);
                next_code = 256;
            }
            w = c;
        }
    }
    checksum = fold_checksum(checksum, w);
    fold_checksum(checksum, next_code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
        assert!(vm.stats().instructions > 10_000);
    }

    #[test]
    fn compression_actually_happens() {
        // The emitted code count must be far below the input length —
        // otherwise the run-biased generator or the dictionary is broken.
        let n = input_len(Scale::Test);
        let mut emits = 0u64;
        {
            // Count emissions via a separate replay.
            let mut state = SEED;
            let mut prev = 0i64;
            let mut input = Vec::new();
            for _ in 0..n {
                state = lcg_next(state);
                if lcg_sample(state, 4) == 0 {
                    state = lcg_next(state);
                    prev = lcg_sample(state, 256);
                }
                input.push(prev);
            }
            let mut hkey = vec![0i64; TABLE as usize];
            let mut hval = vec![0i64; TABLE as usize];
            let mut next_code = 256i64;
            let mut w = input[0];
            for &c in &input[1..] {
                let key = w * 256 + c + 1;
                let mut h = (((key.wrapping_mul(HASH_MUL) as u64) >> 49) as i64 & MASK) as usize;
                loop {
                    let k = hkey[h];
                    if k == 0 || k == key {
                        break;
                    }
                    h = (h + 1) & MASK as usize;
                }
                if hkey[h] == key {
                    w = hval[h];
                } else {
                    emits += 1;
                    if next_code < DICT_CAP {
                        hkey[h] = key;
                        hval[h] = next_code;
                        next_code += 1;
                    } else {
                        hkey.iter_mut().for_each(|k| *k = 0);
                        next_code = 256;
                    }
                    w = c;
                }
            }
        }
        // At Test scale the dictionary is still warming up, so expect a
        // modest ratio; larger scales compress much harder.
        assert!(
            (emits as i64) < n * 3 / 4,
            "expected compression: {emits} codes for {n} symbols"
        );
    }

    #[test]
    fn scales_are_monotonic() {
        assert!(input_len(Scale::Test) < input_len(Scale::Small));
        assert!(input_len(Scale::Small) < input_len(Scale::Paper));
    }
}

//! Workload registry: uniform access to the six benchmarks at three
//! problem scales.

use jvm_bytecode::Program;
use jvm_vm::Value;

/// Problem size for a workload.
///
/// * `Test` — sub-second, for unit/integration tests (≈10⁵ instructions);
/// * `Small` — seconds for all six, for quick table regeneration
///   (≈10⁶–10⁷ instructions);
/// * `Paper` — the full benchmark runs used by the Criterion benches
///   (≈10⁷–10⁸ instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test size.
    Test,
    /// Quick experiment size.
    Small,
    /// Full benchmark size.
    Paper,
}

/// A ready-to-run benchmark: program, entry arguments, and the checksum
/// its reference implementation predicts.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name matching the paper's benchmark column ("compress", …).
    pub name: &'static str,
    /// One-line description of what the program does.
    pub description: &'static str,
    /// The verified program.
    pub program: Program,
    /// Entry arguments.
    pub args: Vec<Value>,
    /// Checksum the run must produce (reference-implementation replay).
    pub expected_checksum: u64,
}

/// Builds the `compress` analogue.
pub fn compress(scale: Scale) -> Workload {
    crate::compress::build(scale)
}

/// Builds the `javac` analogue.
pub fn javac(scale: Scale) -> Workload {
    crate::javac::build(scale)
}

/// Builds the `raytrace` analogue.
pub fn raytrace(scale: Scale) -> Workload {
    crate::raytrace::build(scale)
}

/// Builds the `mpegaudio` analogue.
pub fn mpegaudio(scale: Scale) -> Workload {
    crate::mpegaudio::build(scale)
}

/// Builds the `soot` analogue.
pub fn soot(scale: Scale) -> Workload {
    crate::soot::build(scale)
}

/// Builds the `scimark` analogue.
pub fn scimark(scale: Scale) -> Workload {
    crate::scimark::build(scale)
}

/// Builds the phase-shift robustness workload (branch bias flips at
/// n/2). Not part of [`all`] — it models pathological behavior, not a
/// paper benchmark; the chaos campaigns, staleness regressions and the
/// `phase_shift` bench leg request it explicitly.
pub fn phase_shift(scale: Scale) -> Workload {
    crate::phase_shift::build(scale)
}

/// Phase-shift variant flipping at n/4 (demotion latency dominates).
pub fn phase_shift_early(scale: Scale) -> Workload {
    crate::phase_shift::build_early(scale)
}

/// Phase-shift variant flipping at 3n/4 (long healthy history first).
pub fn phase_shift_late(scale: Scale) -> Workload {
    crate::phase_shift::build_late(scale)
}

/// All six workloads in the paper's column order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        compress(scale),
        javac(scale),
        raytrace(scale),
        mpegaudio(scale),
        soot(scale),
        scimark(scale),
    ]
}

/// Looks a workload up by its paper name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    match name {
        "compress" => Some(compress(scale)),
        "javac" => Some(javac(scale)),
        "raytrace" => Some(raytrace(scale)),
        "mpegaudio" => Some(mpegaudio(scale)),
        "soot" => Some(soot(scale)),
        "scimark" => Some(scimark(scale)),
        "phase_shift" => Some(phase_shift(scale)),
        "phase_shift_early" => Some(phase_shift_early(scale)),
        "phase_shift_late" => Some(phase_shift_late(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_six_in_paper_order() {
        let ws = all(Scale::Test);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "compress",
                "javac",
                "raytrace",
                "mpegaudio",
                "soot",
                "scimark"
            ]
        );
    }

    #[test]
    fn by_name_resolves_and_rejects() {
        assert!(by_name("soot", Scale::Test).is_some());
        assert!(by_name("quake", Scale::Test).is_none());
    }
}

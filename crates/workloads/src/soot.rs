//! `soot` analogue: a worklist dataflow solver over a random control-flow
//! graph with polymorphic transfer functions.
//!
//! Soot is "a large real world application" (§5.1): a bytecode analysis
//! framework whose hot code is worklist-driven fixed-point iteration with
//! heavy use of virtual dispatch — exactly the polymorphic branch profile
//! that motivates the paper's branch-correlation design over plain
//! Dynamo-style speculation ("we find a virtual method call approximately
//! every 9 bytecode instructions", §3.4). The analogue builds a random
//! CFG, attaches one of three `transfer` implementations to every node
//! through a real class hierarchy, and runs a monotone bit-vector
//! analysis to fixpoint through `invokevirtual`.

use jvm_bytecode::{CmpOp, Intrinsic, Program, ProgramBuilder};
use jvm_vm::{fold_checksum, Value};

use crate::lcg::{emit_lcg_sample, emit_lcg_step, lcg_next, lcg_sample};
use crate::registry::{Scale, Workload};

const SEED: i64 = 13579;

fn node_count(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 200,
        Scale::Small => 2_500,
        Scale::Paper => 16_000,
    }
}

/// Builds the workload at the given scale.
pub fn build(scale: Scale) -> Workload {
    let nn = node_count(scale);
    Workload {
        name: "soot",
        description: "worklist dataflow over a random CFG with virtual transfer functions",
        program: build_program(nn),
        args: vec![Value::Int(SEED)],
        expected_checksum: reference_checksum(SEED, nn),
    }
}

fn build_program(nn: i64) -> Program {
    let cap = nn * 64; // fixpoint-iteration safety cap
    let mut pb = ProgramBuilder::new();

    // Transfer implementations: slot 0, signature (self, in) -> i64.
    let copy_impl = pb.declare_function("Copy.transfer", 2, true);
    let gen_impl = pb.declare_function("Gen.transfer", 2, true);
    let kill_impl = pb.declare_function("Kill.transfer", 2, true);
    let solve = pb.declare_function("solve", 7, true);
    let main = pb.declare_function("main", 1, false);

    // Class hierarchy: Base {mask} with Copy semantics; Gen and Kill
    // override the transfer slot.
    let base = pb.declare_class("Base", None, 1);
    let slot = pb.add_method(base, copy_impl);
    let gen_cls = pb.declare_class("GenNode", Some(base), 0);
    pb.override_method(gen_cls, slot, gen_impl);
    let kill_cls = pb.declare_class("KillNode", Some(base), 0);
    pb.override_method(kill_cls, slot, kill_impl);
    let copy_cls = pb.declare_class("CopyNode", Some(base), 0);

    {
        let b = pb.function_mut(copy_impl);
        b.load(1).ret();
    }
    {
        let b = pb.function_mut(gen_impl);
        b.load(1).load(0).get_field(0).ior().ret();
    }
    {
        let b = pb.function_mut(kill_impl);
        b.load(1)
            .load(0)
            .get_field(0)
            .iconst(-1)
            .ixor()
            .iand()
            .ret();
    }

    // solve(esucc, eoff, pred, poff, objs, out, nn) -> iterations.
    {
        let b = pb.function_mut(solve);
        let (esucc, eoff, pred, poff, objs, out, nn_l) = (0u16, 1u16, 2u16, 3u16, 4u16, 5u16, 6u16);
        let q = b.alloc_local();
        let inq = b.alloc_local();
        let head = b.alloc_local();
        let tail = b.alloc_local();
        let count = b.alloc_local();
        let iters = b.alloc_local();
        let v = b.alloc_local();
        let e = b.alloc_local();
        let newin = b.alloc_local();
        let newout = b.alloc_local();
        let t = b.alloc_local();

        b.load(nn_l).new_array().store(q);
        b.load(nn_l).new_array().store(inq);
        b.iconst(0).store(head).iconst(0).store(tail);
        b.iconst(0).store(count).iconst(0).store(iters);

        // Seed the worklist with every node.
        b.iconst(0).store(v);
        let seed_head = b.bind_new_label();
        let seed_exit = b.new_label();
        b.load(v).load(nn_l).if_icmp(CmpOp::Ge, seed_exit);
        b.load(q).load(v).load(v).astore();
        b.load(inq).load(v).iconst(1).astore();
        b.iinc(v, 1).goto(seed_head);
        b.bind(seed_exit);
        // Ring is full: count = nn, tail wraps to 0.
        b.load(nn_l).store(count).iconst(0).store(tail);

        // Main fixpoint loop.
        let loop_head = b.bind_new_label();
        let loop_exit = b.new_label();
        b.load(count).if_i(CmpOp::Le, loop_exit);
        b.load(iters).iconst(cap).if_icmp(CmpOp::Ge, loop_exit);
        b.iinc(iters, 1);
        // Pop v.
        b.load(q).load(head).aload().store(v);
        b.load(head).iconst(1).iadd().load(nn_l).irem().store(head);
        b.load(inq).load(v).iconst(0).astore();
        b.iinc(count, -1);
        // newin = OR over preds.
        b.iconst(0).store(newin);
        b.load(poff).load(v).aload().store(e);
        let pr_head = b.bind_new_label();
        let pr_exit = b.new_label();
        b.load(e)
            .load(poff)
            .load(v)
            .iconst(1)
            .iadd()
            .aload()
            .if_icmp(CmpOp::Ge, pr_exit);
        b.load(newin)
            .load(out)
            .load(pred)
            .load(e)
            .aload()
            .aload()
            .ior()
            .store(newin);
        b.iinc(e, 1).goto(pr_head);
        b.bind(pr_exit);
        // newout = objs[v].transfer(newin) — the virtual dispatch.
        b.load(objs).load(v).aload();
        b.load(newin);
        b.invoke_virtual(slot, 2).store(newout);
        // Changed? push successors.
        let unchanged = b.new_label();
        b.load(newout)
            .load(out)
            .load(v)
            .aload()
            .if_icmp(CmpOp::Eq, unchanged);
        b.load(out).load(v).load(newout).astore();
        b.load(eoff).load(v).aload().store(e);
        let su_head = b.bind_new_label();
        let su_exit = b.new_label();
        b.load(e)
            .load(eoff)
            .load(v)
            .iconst(1)
            .iadd()
            .aload()
            .if_icmp(CmpOp::Ge, su_exit);
        b.load(esucc).load(e).aload().store(t);
        // Push t unless already queued.
        let skip_push = b.new_label();
        b.load(inq).load(t).aload().if_i(CmpOp::Ne, skip_push);
        b.load(q).load(tail).load(t).astore();
        b.load(tail).iconst(1).iadd().load(nn_l).irem().store(tail);
        b.load(inq).load(t).iconst(1).astore();
        b.iinc(count, 1);
        b.bind(skip_push);
        b.iinc(e, 1).goto(su_head);
        b.bind(su_exit);
        b.bind(unchanged);
        b.goto(loop_head);
        b.bind(loop_exit);
        b.load(iters).ret();
    }

    // main(seed): build graph + objects, solve, checksum.
    {
        let b = pb.function_mut(main);
        let state = 0u16;
        let esucc = b.alloc_local();
        let eoff = b.alloc_local();
        let pcnt = b.alloc_local();
        let poff = b.alloc_local();
        let pred = b.alloc_local();
        let cursor = b.alloc_local();
        let objs = b.alloc_local();
        let out = b.alloc_local();
        let v = b.alloc_local();
        let e = b.alloc_local();
        let d = b.alloc_local();
        let total = b.alloc_local();
        let run = b.alloc_local();
        let t = b.alloc_local();
        let kind = b.alloc_local();
        let obj = b.alloc_local();
        let iters = b.alloc_local();

        b.iconst(nn * 3).new_array().store(esucc);
        b.iconst(nn + 1).new_array().store(eoff);
        b.iconst(nn).new_array().store(pcnt);
        b.iconst(nn + 1).new_array().store(poff);
        b.iconst(nn * 3).new_array().store(pred);
        b.iconst(nn).new_array().store(cursor);
        b.iconst(nn).new_array().store(objs);
        b.iconst(nn).new_array().store(out);

        // Random successor lists: degree 1..=3 per node.
        b.iconst(0).store(total).iconst(0).store(v);
        let g_head = b.bind_new_label();
        let g_exit = b.new_label();
        b.load(v).iconst(nn).if_icmp(CmpOp::Ge, g_exit);
        b.load(eoff).load(v).load(total).astore();
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 3);
        b.iconst(1).iadd().store(d);
        b.iconst(0).store(e);
        let d_head = b.bind_new_label();
        let d_exit = b.new_label();
        b.load(e).load(d).if_icmp(CmpOp::Ge, d_exit);
        emit_lcg_step(b, state);
        b.load(esucc).load(total);
        emit_lcg_sample(b, state, nn);
        b.astore();
        b.iinc(total, 1).iinc(e, 1).goto(d_head);
        b.bind(d_exit);
        b.iinc(v, 1).goto(g_head);
        b.bind(g_exit);
        b.load(eoff).iconst(nn).load(total).astore();

        // Predecessor counts.
        b.iconst(0).store(e);
        let pc_head = b.bind_new_label();
        let pc_exit = b.new_label();
        b.load(e).load(total).if_icmp(CmpOp::Ge, pc_exit);
        b.load(esucc).load(e).aload().store(t);
        b.load(pcnt)
            .load(t)
            .load(pcnt)
            .load(t)
            .aload()
            .iconst(1)
            .iadd()
            .astore();
        b.iinc(e, 1).goto(pc_head);
        b.bind(pc_exit);

        // Prefix sums into poff, copy into cursor.
        b.iconst(0).store(run).iconst(0).store(v);
        let ps_head = b.bind_new_label();
        let ps_exit = b.new_label();
        b.load(v).iconst(nn).if_icmp(CmpOp::Ge, ps_exit);
        b.load(poff).load(v).load(run).astore();
        b.load(cursor).load(v).load(run).astore();
        b.load(run).load(pcnt).load(v).aload().iadd().store(run);
        b.iinc(v, 1).goto(ps_head);
        b.bind(ps_exit);
        b.load(poff).iconst(nn).load(run).astore();

        // Fill the predecessor array.
        b.iconst(0).store(v);
        let f_head = b.bind_new_label();
        let f_exit = b.new_label();
        b.load(v).iconst(nn).if_icmp(CmpOp::Ge, f_exit);
        b.load(eoff).load(v).aload().store(e);
        let fe_head = b.bind_new_label();
        let fe_exit = b.new_label();
        b.load(e)
            .load(eoff)
            .load(v)
            .iconst(1)
            .iadd()
            .aload()
            .if_icmp(CmpOp::Ge, fe_exit);
        b.load(esucc).load(e).aload().store(t);
        b.load(pred).load(cursor).load(t).aload().load(v).astore();
        b.load(cursor)
            .load(t)
            .load(cursor)
            .load(t)
            .aload()
            .iconst(1)
            .iadd()
            .astore();
        b.iinc(e, 1).goto(fe_head);
        b.bind(fe_exit);
        b.iinc(v, 1).goto(f_head);
        b.bind(f_exit);

        // Polymorphic node objects with random masks.
        b.iconst(0).store(v);
        let o_head = b.bind_new_label();
        let o_exit = b.new_label();
        b.load(v).iconst(nn).if_icmp(CmpOp::Ge, o_exit);
        emit_lcg_step(b, state);
        emit_lcg_sample(b, state, 3);
        b.store(kind);
        let k_gen = b.new_label();
        let k_kill = b.new_label();
        let k_done = b.new_label();
        b.load(kind).iconst(0).if_icmp(CmpOp::Eq, k_gen);
        b.load(kind).iconst(1).if_icmp(CmpOp::Eq, k_kill);
        b.new_obj(copy_cls).store(obj).goto(k_done);
        b.bind(k_gen);
        b.new_obj(gen_cls).store(obj).goto(k_done);
        b.bind(k_kill);
        b.new_obj(kill_cls).store(obj);
        b.bind(k_done);
        emit_lcg_step(b, state);
        b.load(obj).load(state).put_field(0);
        b.load(objs).load(v).load(obj).astore();
        b.iinc(v, 1).goto(o_head);
        b.bind(o_exit);

        // Solve and checksum.
        b.load(esucc)
            .load(eoff)
            .load(pred)
            .load(poff)
            .load(objs)
            .load(out)
            .iconst(nn)
            .invoke_static(solve)
            .store(iters);
        b.load(iters).intrinsic(Intrinsic::Checksum);
        b.iconst(0).store(v);
        let c_head = b.bind_new_label();
        let c_exit = b.new_label();
        b.load(v).iconst(nn).if_icmp(CmpOp::Ge, c_exit);
        b.load(out).load(v).aload().intrinsic(Intrinsic::Checksum);
        b.iinc(v, 1).goto(c_head);
        b.bind(c_exit);
        b.ret_void();
    }

    let entry = pb.func_id("main").expect("declared");
    pb.build(entry).expect("soot workload builds")
}

// ---------------------------------------------------------------------------
// Reference implementation.
// ---------------------------------------------------------------------------

/// Reference replay computing the expected checksum.
pub fn reference_checksum(seed: i64, nn: i64) -> u64 {
    let n = nn as usize;
    let cap = nn * 64;
    let mut state = seed;

    // Graph generation (same draw order as the bytecode).
    let mut esucc: Vec<usize> = Vec::new();
    let mut eoff = vec![0usize; n + 1];
    for off in eoff.iter_mut().take(n) {
        *off = esucc.len();
        state = lcg_next(state);
        let d = lcg_sample(state, 3) + 1;
        for _ in 0..d {
            state = lcg_next(state);
            esucc.push(lcg_sample(state, nn) as usize);
        }
    }
    eoff[n] = esucc.len();

    // Predecessors.
    let mut pcnt = vec![0usize; n];
    for &t in &esucc {
        pcnt[t] += 1;
    }
    let mut poff = vec![0usize; n + 1];
    let mut run = 0usize;
    for v in 0..n {
        poff[v] = run;
        run += pcnt[v];
    }
    poff[n] = run;
    let mut cursor = poff[..n].to_vec();
    let mut pred = vec![0usize; esucc.len()];
    for v in 0..n {
        for &t in &esucc[eoff[v]..eoff[v + 1]] {
            pred[cursor[t]] = v;
            cursor[t] += 1;
        }
    }

    // Node kinds and masks.
    #[derive(Clone, Copy)]
    enum Kind {
        Gen,
        Kill,
        Copy,
    }
    let mut kinds = Vec::with_capacity(n);
    let mut masks = Vec::with_capacity(n);
    for _ in 0..n {
        state = lcg_next(state);
        let k = match lcg_sample(state, 3) {
            0 => Kind::Gen,
            1 => Kind::Kill,
            _ => Kind::Copy,
        };
        state = lcg_next(state);
        kinds.push(k);
        masks.push(state);
    }

    // Worklist fixpoint.
    let mut out = vec![0i64; n];
    let mut q: Vec<usize> = (0..n).collect();
    let mut inq = vec![true; n];
    let mut head = 0usize;
    let mut tail = 0usize; // == n % n conceptually; ring over capacity n
    let mut count = n;
    let mut iters = 0i64;
    // Ring buffer of capacity n, exactly like the bytecode.
    let mut ring = vec![0usize; n];
    ring[..n].copy_from_slice(&q);
    q.clear();
    while count > 0 && iters < cap {
        iters += 1;
        let v = ring[head];
        head = (head + 1) % n;
        inq[v] = false;
        count -= 1;
        let mut newin = 0i64;
        for e in poff[v]..poff[v + 1] {
            newin |= out[pred[e]];
        }
        let newout = match kinds[v] {
            Kind::Gen => newin | masks[v],
            Kind::Kill => newin & !masks[v],
            Kind::Copy => newin,
        };
        if newout != out[v] {
            out[v] = newout;
            for &t in &esucc[eoff[v]..eoff[v + 1]] {
                if !inq[t] {
                    ring[tail] = t;
                    tail = (tail + 1) % n;
                    inq[t] = true;
                    count += 1;
                }
            }
        }
    }

    let mut checksum = fold_checksum(0, iters);
    for &o in &out {
        checksum = fold_checksum(checksum, o);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn bytecode_matches_reference() {
        let w = build(Scale::Test);
        let mut vm = Vm::new(&w.program);
        vm.run(&w.args, &mut NullObserver).expect("runs");
        assert_eq!(vm.checksum(), w.expected_checksum);
        assert!(
            vm.stats().virtual_calls > 100,
            "soot must be virtual-call heavy: {}",
            vm.stats().virtual_calls
        );
    }

    #[test]
    fn fixpoint_is_reached_and_nontrivial() {
        // Re-derive the reference's iteration count to ensure the solver
        // does real work and terminates before the cap.
        let nn = node_count(Scale::Test);
        let c1 = reference_checksum(SEED, nn);
        let c2 = reference_checksum(SEED, nn);
        assert_eq!(c1, c2, "reference must be deterministic");
        assert_ne!(c1, fold_checksum(0, 0));
    }
}

//! Small bytecode-emission helpers shared by the workload generators.

use jvm_bytecode::FunctionBuilder;

/// Emits code pushing `arr[k]` where `arr` is a local slot and `k` a
/// constant index.
pub fn emit_arr_get(b: &mut FunctionBuilder, arr: u16, k: i64) {
    b.load(arr).iconst(k).aload();
}

/// Emits `arr[k] += delta` for a constant index.
pub fn emit_arr_inc(b: &mut FunctionBuilder, arr: u16, k: i64, delta: i64) {
    b.load(arr)
        .iconst(k)
        .load(arr)
        .iconst(k)
        .aload()
        .iconst(delta)
        .iadd()
        .astore();
}

/// Emits `arr[k] = v` for constant index and value.
pub fn emit_arr_set_const(b: &mut FunctionBuilder, arr: u16, k: i64, v: i64) {
    b.load(arr).iconst(k).iconst(v).astore();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{Intrinsic, ProgramBuilder};
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn helpers_emit_correct_array_ops() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        {
            let b = pb.function_mut(f);
            let a = b.alloc_local();
            b.iconst(3).new_array().store(a);
            emit_arr_set_const(b, a, 1, 10);
            emit_arr_inc(b, a, 1, 5);
            emit_arr_get(b, a, 1);
            b.intrinsic(Intrinsic::Checksum);
            b.ret_void();
        }
        let p = pb.build(f).unwrap();
        let mut vm = Vm::new(&p);
        vm.run(&[], &mut NullObserver).unwrap();
        assert_eq!(vm.checksum(), jvm_vm::fold_checksum(0, 15));
    }
}

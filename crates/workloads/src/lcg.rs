//! The shared 64-bit LCG used by every workload for in-program data
//! generation, with matching bytecode-emission and Rust-reference forms.
//!
//! Using one PRNG on both sides keeps each workload's reference
//! implementation a line-for-line replay of its bytecode.

use jvm_bytecode::FunctionBuilder;

/// Knuth's MMIX multiplier.
pub const LCG_MUL: i64 = 6364136223846793005;
/// Knuth's MMIX increment.
pub const LCG_INC: i64 = 1442695040888963407;

/// Advances the LCG state (Rust reference form).
#[inline]
pub fn lcg_next(state: i64) -> i64 {
    state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

/// Extracts a non-negative bounded sample from an LCG state, matching
/// [`emit_lcg_sample`]: `(state >>> 33) % bound`.
#[inline]
pub fn lcg_sample(state: i64, bound: i64) -> i64 {
    (((state as u64) >> 33) as i64) % bound
}

/// Emits `locals[state] = locals[state] * LCG_MUL + LCG_INC`.
pub fn emit_lcg_step(b: &mut FunctionBuilder, state: u16) {
    b.load(state)
        .iconst(LCG_MUL)
        .imul()
        .iconst(LCG_INC)
        .iadd()
        .store(state);
}

/// Emits code pushing `(locals[state] >>> 33) % bound` (a fresh sample in
/// `0..bound`; the state must have been stepped first).
pub fn emit_lcg_sample(b: &mut FunctionBuilder, state: u16, bound: i64) {
    b.load(state).iconst(33).iushr().iconst(bound).irem();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{Intrinsic, ProgramBuilder};
    use jvm_vm::{NullObserver, Value, Vm};

    #[test]
    fn reference_and_bytecode_lcg_agree() {
        // Bytecode: step the LCG 100 times, checksumming each sample.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        {
            let b = pb.function_mut(f);
            let i = b.alloc_local();
            b.iconst(100).store(i);
            let head = b.bind_new_label();
            let exit = b.new_label();
            b.load(i).if_i(jvm_bytecode::CmpOp::Le, exit);
            emit_lcg_step(b, 0);
            emit_lcg_sample(b, 0, 1000);
            b.intrinsic(Intrinsic::Checksum);
            b.iinc(i, -1).goto(head);
            b.bind(exit);
            b.ret_void();
        }
        let program = pb.build(f).unwrap();
        let mut vm = Vm::new(&program);
        vm.run(&[Value::Int(42)], &mut NullObserver).unwrap();

        // Reference replay.
        let mut state = 42i64;
        let mut checksum = 0u64;
        for _ in 0..100 {
            state = lcg_next(state);
            checksum = jvm_vm::fold_checksum(checksum, lcg_sample(state, 1000));
        }
        assert_eq!(vm.checksum(), checksum);
    }

    #[test]
    fn samples_are_in_range_and_spread() {
        let mut state = 7i64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            state = lcg_next(state);
            let s = lcg_sample(state, 50);
            assert!((0..50).contains(&s));
            seen.insert(s);
        }
        assert!(seen.len() > 40, "samples should cover most of the range");
    }
}

//! In-tree deterministic PRNGs: SplitMix64 and xoshiro256**.
//!
//! The offline build cannot resolve external crates, so everything that
//! previously leaned on `rand`/`proptest` RNGs (seeded property tests,
//! bench input shuffling) draws from these generators instead. The
//! workload *programs* are unaffected: their input data has always come
//! from the in-bytecode LCG in [`crate::lcg`] (MMIX constants), so the
//! block streams and checksums are byte-identical to the seed revision.
//!
//! Seed mapping: a test or bench names a single `u64` seed. That seed
//! feeds [`SplitMix64`], whose first four outputs initialise
//! [`Xoshiro256StarStar`]; case `k` of a seeded property test uses
//! `base_seed + k` so failures reproduce by case index.

/// Derives the seed for case `k` of a campaign rooted at `base`.
///
/// Every seeded harness in the workspace (the `tests/` property and fuzz
/// suites, the conformance chaos campaigns, corpus files) derives
/// per-case seeds through this one function, so a seed printed by one
/// harness's failure message reproduces the identical case in any other:
/// feed the printed value straight to [`Xoshiro256StarStar::new`], or
/// name the `(base, k)` pair. The mix runs `base ⊕ φ·k` through one
/// SplitMix64 step, so adjacent case indices land on uncorrelated
/// xoshiro states (plain `base + k` seeds produce correlated first
/// outputs).
pub fn seed_stream(base: u64, k: u64) -> u64 {
    SplitMix64::new(base ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// SplitMix64 — Steele, Lea & Flood's 64-bit mixing generator. Used both
/// directly (cheap, stateless-feel streams) and to expand seeds for
/// [`Xoshiro256StarStar`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — Blackman & Vigna's general-purpose generator, seeded
/// via SplitMix64 expansion as its authors recommend.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift
    /// reduction (bias is negligible for the bounds used in tests).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo < hi);
        lo + self.next_below(u64::from(hi - lo)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` over the full domain.
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Seed 0, first output of the canonical algorithm.
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        let mut c = Xoshiro256StarStar::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn seed_stream_is_deterministic_and_spreads_adjacent_cases() {
        assert_eq!(seed_stream(0xD1FF_5EED, 7), seed_stream(0xD1FF_5EED, 7));
        assert_ne!(seed_stream(0xD1FF_5EED, 7), seed_stream(0xD1FF_5EED, 8));
        assert_ne!(seed_stream(0xD1FF_5EED, 7), seed_stream(0x7070_5EED, 7));
        // Adjacent cases differ in roughly half their bits (mixed, not
        // merely incremented).
        let d = (seed_stream(1, 0) ^ seed_stream(1, 1)).count_ones();
        assert!((8..=56).contains(&d), "poor mixing: {d} differing bits");
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let v = rng.range_u32(3, 17);
            assert!((3..17).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Multi-VM throughput harness: private vs shared trace caches.
//!
//! Simulates a deployment serving many concurrent copies of the same
//! program: `M` worker threads each run a full [`TracingVm`] over a
//! registry workload, in three configurations —
//!
//! * **private** — every VM owns its cache and constructs inline (the
//!   pre-concurrency system, replicated M times);
//! * **shared-cold** — all VMs dispatch against one fresh
//!   [`SharedCache`], with construction on a background service thread
//!   fed by the bounded snapshot queue;
//! * **shared-warm** — as above, but the cache is pre-warmed by one
//!   untimed run before the timed workers start (the startup win of
//!   inheriting traces another VM already paid for).
//!
//! A fourth, single-VM leg measures **snapshot warm boot**: one private
//! VM is warmed and snapshotted ([`TracingVm::snapshot`]), then fresh
//! VMs are booted from those bytes — via [`TracingVm::load_snapshot`]
//! (verbatim restore) and [`TracingVm::aot_replay`] (profile replayed
//! through the constructor) — and compared against a cold start on
//! dispatches-before-first-trace-entry and in-run construction events.
//!
//! Each measurement is the *minimum wall clock* over `repeats`
//! (throughput noise is strictly downward), and reports **aggregate**
//! instructions per second: total instructions retired by all workers
//! divided by the wall time of the slowest worker. On a host with fewer
//! cores than workers the wall time grows with M and the aggregate
//! number plateaus — the report carries `host_cpus` so the scaling curve
//! is read against the hardware actually present (see EXPERIMENTS.md).
//!
//! Every VM run's checksum is asserted against the workload's expected
//! value, so the harness doubles as a concurrency stress test: a torn
//! link or a stale artifact would corrupt a checksum long before it
//! corrupted a timing.

use std::time::Instant;

use trace_cache::QueueStats;
use trace_exec::{run_shared_constructor, shared_session, EngineConfig, SharedSession, TracingVm};
use trace_workloads::registry::{self, Scale, Workload};

/// Shared-mode observability attached to a measurement point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedPoint {
    /// Fraction of trace insertions served by hash-consing (cross-VM
    /// dedup hits), in `[0, 1]`.
    pub dedup_hit_rate: f64,
    /// Distinct traces in the cache after the run.
    pub traces: usize,
    /// Entry branches linked after the run.
    pub links: usize,
    /// Traces the background constructor actually built.
    pub built: u64,
    /// Construction-queue counters (high-water depth, drops).
    pub queue: QueueStats,
    /// Estimated bytes of the session (shards + cons state + artifacts
    /// + in-flight snapshots).
    pub memory_bytes: usize,
}

/// One (mode, thread-count) measurement.
#[derive(Debug, Clone, Copy)]
pub struct ModePoint {
    /// Worker threads.
    pub threads: usize,
    /// Minimum wall clock over the repeats, seconds.
    pub wall_s: f64,
    /// Total instructions retired by all workers in the best repeat.
    pub instructions: u64,
    /// Aggregate throughput: `instructions / wall_s`.
    pub instr_per_s: f64,
    /// Trace entries summed over all workers.
    pub traces_entered: u64,
    /// Shared-cache observability (private mode: `None`).
    pub shared: Option<SharedPoint>,
}

/// One workload's scaling curves.
#[derive(Debug, Clone)]
pub struct ConcurrentRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Private-cache points, one per thread count.
    pub private: Vec<ModePoint>,
    /// Shared-cache cold-start points.
    pub shared_cold: Vec<ModePoint>,
    /// Shared-cache warm-start points.
    pub shared_warm: Vec<ModePoint>,
}

impl ConcurrentRow {
    fn mode(&self, mode: &str) -> &[ModePoint] {
        match mode {
            "private" => &self.private,
            "shared_cold" => &self.shared_cold,
            "shared_warm" => &self.shared_warm,
            other => panic!("unknown mode {other}"),
        }
    }

    /// Aggregate-throughput scaling of `mode` at `threads` relative to
    /// one thread of the same mode (1.0 = no scaling).
    pub fn scaling(&self, mode: &str, threads: usize) -> Option<f64> {
        let pts = self.mode(mode);
        let one = pts.iter().find(|p| p.threads == 1)?;
        let at = pts.iter().find(|p| p.threads == threads)?;
        if one.instr_per_s == 0.0 {
            return None;
        }
        Some(at.instr_per_s / one.instr_per_s)
    }

    /// Warm-vs-cold startup win at `threads`: warm aggregate throughput
    /// over cold aggregate throughput.
    pub fn warm_speedup(&self, threads: usize) -> Option<f64> {
        let cold = self.shared_cold.iter().find(|p| p.threads == threads)?;
        let warm = self.shared_warm.iter().find(|p| p.threads == threads)?;
        if cold.instr_per_s == 0.0 {
            return None;
        }
        Some(warm.instr_per_s / cold.instr_per_s)
    }
}

/// One single-VM boot-mode measurement (best of `repeats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BootPoint {
    /// Minimum wall clock of the timed run, seconds. Boot itself
    /// (loading or replaying the snapshot) is *not* timed — the point of
    /// the leg is what serving costs after the boot mode did its work.
    pub wall_s: f64,
    /// Instructions retired in the best repeat.
    pub instructions: u64,
    /// Throughput of the best repeat: `instructions / wall_s`.
    pub instr_per_s: f64,
    /// Block dispatches paid before the first trace entry (0 = the run
    /// never entered a trace) — time-to-first-trace-hit.
    pub first_entry_dispatch: u64,
    /// Traces constructed *during the timed run*; boot-time replay work
    /// is subtracted out. A warm start should construct (almost) nothing.
    pub traces_constructed: u64,
    /// Traces entered during the run.
    pub traces_entered: u64,
}

/// One workload's cold / warm-boot / AOT-replay comparison.
#[derive(Debug, Clone)]
pub struct WarmBootRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Snapshot container size in bytes.
    pub snapshot_bytes: usize,
    /// Traces installed verbatim by the warm boot.
    pub boot_traces: usize,
    /// Trace artifacts pre-built (compiled + lowered) by the warm boot.
    pub boot_artifacts: usize,
    /// Traces the AOT replay re-admitted through the constructor.
    pub aot_traces: usize,
    /// Fresh VM, no snapshot.
    pub cold: BootPoint,
    /// Fresh VM booted with [`TracingVm::load_snapshot`].
    pub warm: BootPoint,
    /// Fresh VM booted with [`TracingVm::aot_replay`].
    pub aot: BootPoint,
}

impl WarmBootRow {
    /// Warm-over-cold ratio of dispatches paid before the first trace
    /// entry (&lt; 1.0 = the warm boot reached trace execution sooner).
    /// `None` when the cold run never entered a trace.
    pub fn warmup_ratio(&self) -> Option<f64> {
        if self.cold.first_entry_dispatch == 0 || self.warm.first_entry_dispatch == 0 {
            return None;
        }
        Some(self.warm.first_entry_dispatch as f64 / self.cold.first_entry_dispatch as f64)
    }
}

/// One phase-shift workload's self-healing A/B: the identical run with
/// the health ladder on (default) vs off (`--no-health`), single VM.
#[derive(Debug, Clone)]
pub struct PhaseShiftRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Throughput with the health ladder on, best repeat.
    pub health_on_instr_per_s: f64,
    /// Throughput with the ladder off (fast trigger only), best repeat.
    pub health_off_instr_per_s: f64,
    /// Ladder demotion decisions applied in the best health-on repeat.
    pub demotions: u64,
    /// Demotions fired by the consecutive-side-exit streak limit.
    pub streak_demotions: u64,
    /// Re-admissions at previously-demoted entries (start on probation).
    pub readmissions: u64,
    /// Traces quarantined (ladder demotions + fast-trigger hits).
    pub quarantined: u64,
    /// Healthy → probation transitions.
    pub probations: u64,
    /// Health epochs run.
    pub epochs: u64,
}

impl PhaseShiftRow {
    /// Throughput retained with self-healing on relative to off
    /// (≥ 1.0 means demoting the rotten traces paid for itself).
    pub fn throughput_retention(&self) -> f64 {
        if self.health_off_instr_per_s == 0.0 {
            return 0.0;
        }
        self.health_on_instr_per_s / self.health_off_instr_per_s
    }
}

/// Full report: one row per workload.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Timed repeats per point (min wall is reported).
    pub repeats: usize,
    /// Worker-thread counts measured.
    pub threads: Vec<usize>,
    /// CPUs available on the measuring host — the ceiling on wall-clock
    /// scaling.
    pub host_cpus: usize,
    /// Construction-queue capacity used for shared modes.
    pub queue_capacity: usize,
    /// Per-workload rows.
    pub rows: Vec<ConcurrentRow>,
    /// Single-VM snapshot warm-boot rows (cold vs warm boot vs AOT
    /// replay), one per workload.
    pub warm_boot: Vec<WarmBootRow>,
    /// Phase-shift self-healing rows (health on vs off), one per
    /// phase-shift variant.
    pub phase_shift: Vec<PhaseShiftRow>,
}

impl ConcurrentReport {
    /// Workloads whose shared-cold run at `threads` deduped at least one
    /// trace across VMs.
    pub fn dedup_observed(&self, threads: usize) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                r.shared_cold
                    .iter()
                    .find(|p| p.threads == threads)
                    .and_then(|p| p.shared)
                    .is_some_and(|s| s.dedup_hit_rate > 0.0)
            })
            .count()
    }

    /// Serialises the report as JSON (hand-rolled: the workspace has no
    /// serde and the shape is fixed).
    pub fn to_json(&self) -> String {
        fn point(p: &ModePoint) -> String {
            let mut s = format!(
                "{{\"threads\": {}, \"wall_s\": {:.6}, \"instructions\": {}, \
                 \"instr_per_s\": {:.1}, \"traces_entered\": {}",
                p.threads, p.wall_s, p.instructions, p.instr_per_s, p.traces_entered
            );
            if let Some(sh) = &p.shared {
                s.push_str(&format!(
                    ", \"dedup_hit_rate\": {:.4}, \"traces\": {}, \"links\": {}, \
                     \"built\": {}, \"queue_max_depth\": {}, \"queue_dropped\": {}, \
                     \"memory_bytes\": {}",
                    sh.dedup_hit_rate,
                    sh.traces,
                    sh.links,
                    sh.built,
                    sh.queue.max_depth,
                    sh.queue.dropped,
                    sh.memory_bytes
                ));
            }
            s.push('}');
            s
        }
        fn mode(points: &[ModePoint]) -> String {
            let inner: Vec<String> = points.iter().map(point).collect();
            format!("[{}]", inner.join(", "))
        }

        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        let ts: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"thread_counts\": [{}],\n", ts.join(", ")));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!("    {{\"name\": \"{}\",\n", r.name));
            out.push_str(&format!("     \"private\": {},\n", mode(&r.private)));
            out.push_str(&format!(
                "     \"shared_cold\": {},\n",
                mode(&r.shared_cold)
            ));
            out.push_str(&format!(
                "     \"shared_warm\": {}}}{}\n",
                mode(&r.shared_warm),
                {
                    if i + 1 == self.rows.len() {
                        ""
                    } else {
                        ","
                    }
                }
            ));
        }
        out.push_str("  ],\n");
        fn boot_point(p: &BootPoint) -> String {
            format!(
                "{{\"wall_s\": {:.6}, \"instructions\": {}, \"instr_per_s\": {:.1}, \
                 \"first_entry_dispatch\": {}, \"traces_constructed\": {}, \
                 \"traces_entered\": {}}}",
                p.wall_s,
                p.instructions,
                p.instr_per_s,
                p.first_entry_dispatch,
                p.traces_constructed,
                p.traces_entered
            )
        }
        out.push_str("  \"warm_boot\": [\n");
        for (i, r) in self.warm_boot.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"snapshot_bytes\": {}, \"boot_traces\": {}, \
                 \"boot_artifacts\": {}, \"aot_traces\": {},\n     \"cold\": {},\n     \
                 \"warm_boot\": {},\n     \"aot_replay\": {}}}{}\n",
                r.name,
                r.snapshot_bytes,
                r.boot_traces,
                r.boot_artifacts,
                r.aot_traces,
                boot_point(&r.cold),
                boot_point(&r.warm),
                boot_point(&r.aot),
                if i + 1 == self.warm_boot.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"phase_shift\": [\n");
        for (i, r) in self.phase_shift.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"health_on_instr_per_s\": {:.1}, \
                 \"health_off_instr_per_s\": {:.1}, \"throughput_retention\": {:.4}, \
                 \"demotions\": {}, \"streak_demotions\": {}, \"readmissions\": {}, \
                 \"quarantined\": {}, \"probations\": {}, \"epochs\": {}}}{}\n",
                r.name,
                r.health_on_instr_per_s,
                r.health_off_instr_per_s,
                r.throughput_retention(),
                r.demotions,
                r.streak_demotions,
                r.readmissions,
                r.quarantined,
                r.probations,
                r.epochs,
                if i + 1 == self.phase_shift.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let max_t = self.threads.iter().copied().max().unwrap_or(1);
        let mut out = String::new();
        if self.rows.is_empty() {
            if !self.warm_boot.is_empty() {
                out.push_str(&self.render_warm_boot());
            }
            if !self.phase_shift.is_empty() {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&self.render_phase_shift());
            }
            return out;
        }
        out.push_str(&format!(
            "Concurrent trace serving, aggregate Minstr/s (scale {:?}, min of {} runs, {} host CPUs)\n",
            self.scale, self.repeats, self.host_cpus
        ));
        out.push_str(&format!(
            "{:<10} {:>4} {:>10} {:>12} {:>12} {:>7} {:>7} {:>6} {:>8}\n",
            "workload",
            "thr",
            "private",
            "shared-cold",
            "shared-warm",
            "scale",
            "dedup%",
            "qmax",
            "dropped"
        ));
        for r in &self.rows {
            for (i, &t) in self.threads.iter().enumerate() {
                let get = |pts: &[ModePoint]| {
                    pts.iter()
                        .find(|p| p.threads == t)
                        .map_or(0.0, |p| p.instr_per_s / 1e6)
                };
                let sh = r
                    .shared_cold
                    .iter()
                    .find(|p| p.threads == t)
                    .and_then(|p| p.shared)
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{:<10} {:>4} {:>10.2} {:>12.2} {:>12.2} {:>7.2} {:>7.1} {:>6} {:>8}\n",
                    if i == 0 { r.name } else { "" },
                    t,
                    get(&r.private),
                    get(&r.shared_cold),
                    get(&r.shared_warm),
                    r.scaling("shared_cold", t).unwrap_or(0.0),
                    sh.dedup_hit_rate * 100.0,
                    sh.queue.max_depth,
                    sh.queue.dropped,
                ));
            }
            if let Some(w) = r.warm_speedup(max_t) {
                out.push_str(&format!(
                    "{:<10} warm-start speedup at {} threads: {:.2}x\n",
                    "", max_t, w
                ));
            }
        }
        if !self.warm_boot.is_empty() {
            out.push('\n');
            out.push_str(&self.render_warm_boot());
        }
        if !self.phase_shift.is_empty() {
            out.push('\n');
            out.push_str(&self.render_phase_shift());
        }
        out
    }

    /// Renders the phase-shift self-healing table: health-on vs
    /// health-off throughput plus the ladder counters.
    pub fn render_phase_shift(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Phase-shift self-healing, single VM Minstr/s (scale {:?}, min of {} runs; \
             ret = health-on throughput over health-off)\n",
            self.scale, self.repeats
        ));
        out.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
            "workload", "on", "off", "ret", "demot", "strk", "readm", "quar", "epochs"
        ));
        for r in &self.phase_shift {
            out.push_str(&format!(
                "{:<18} {:>9.2} {:>9.2} {:>5.0}% {:>6} {:>6} {:>6} {:>6} {:>7}\n",
                r.name,
                r.health_on_instr_per_s / 1e6,
                r.health_off_instr_per_s / 1e6,
                r.throughput_retention() * 100.0,
                r.demotions,
                r.streak_demotions,
                r.readmissions,
                r.quarantined,
                r.epochs,
            ));
        }
        out
    }

    /// Renders the snapshot warm-boot table: dispatches paid before the
    /// first trace entry (`…-fed`) and traces constructed during the
    /// timed run (`…-cons`) for cold start, warm boot, and AOT replay.
    pub fn render_warm_boot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Snapshot warm boot, single VM (scale {:?}, min of {} runs; fed = dispatches \
             before first trace entry, cons = traces constructed in-run)\n",
            self.scale, self.repeats
        ));
        out.push_str(&format!(
            "{:<10} {:>7} {:>6} {:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}\n",
            "workload",
            "snap-B",
            "traces",
            "preb",
            "cold-fed",
            "warm-fed",
            "aot-fed",
            "cold-cons",
            "warm-cons",
            "aot-cons"
        ));
        for r in &self.warm_boot {
            out.push_str(&format!(
                "{:<10} {:>7} {:>6} {:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}\n",
                r.name,
                r.snapshot_bytes,
                r.boot_traces,
                r.boot_artifacts,
                r.cold.first_entry_dispatch,
                r.warm.first_entry_dispatch,
                r.aot.first_entry_dispatch,
                r.cold.traces_constructed,
                r.warm.traces_constructed,
                r.aot.traces_constructed,
            ));
            if let Some(ratio) = r.warmup_ratio() {
                out.push_str(&format!(
                    "{:<10} warm boot reached its first trace in {:.1}% of the cold warm-up\n",
                    "",
                    ratio * 100.0
                ));
            }
        }
        out
    }
}

/// Runs `m` worker VMs (one full workload run each) and returns
/// `(wall_s, total_instructions, total_trace_entries)`. Private mode
/// when `session` is `None`.
fn run_workers(
    w: &Workload,
    config: EngineConfig,
    m: usize,
    session: Option<&SharedSession>,
) -> (f64, u64, u64) {
    std::thread::scope(|s| {
        let start = Instant::now();
        let handles: Vec<_> = (0..m)
            .map(|_| {
                let sess = session.cloned();
                s.spawn(move || {
                    let mut vm = match sess {
                        Some(sess) => TracingVm::new_shared(&w.program, config, sess),
                        None => TracingVm::new(&w.program, config),
                    };
                    let report = vm.run(&w.args).expect("workload runs");
                    assert_eq!(
                        report.checksum, w.expected_checksum,
                        "{} checksum diverged under concurrency",
                        w.name
                    );
                    (report.exec.instructions, report.traces.entered)
                })
            })
            .collect();
        let mut instrs = 0u64;
        let mut entered = 0u64;
        for h in handles {
            let (i, e) = h.join().expect("worker");
            instrs += i;
            entered += e;
        }
        (start.elapsed().as_secs_f64(), instrs, entered)
    })
}

/// Private-cache measurement: `m` isolated VMs, min wall over repeats.
fn measure_private(w: &Workload, config: EngineConfig, m: usize, repeats: usize) -> ModePoint {
    let mut best = (f64::INFINITY, 0u64, 0u64);
    for _ in 0..repeats.max(1) {
        let r = run_workers(w, config, m, None);
        if r.0 < best.0 {
            best = r;
        }
    }
    ModePoint {
        threads: m,
        wall_s: best.0,
        instructions: best.1,
        instr_per_s: best.1 as f64 / best.0.max(f64::MIN_POSITIVE),
        traces_entered: best.2,
        shared: None,
    }
}

/// Blocks until the construction queue drains (all submitted snapshots
/// consumed), bounded by ~1s so a wedged service cannot hang the bench.
fn drain_queue(session: &SharedSession) {
    for _ in 0..10_000 {
        if session.queue.stats().depth == 0 {
            return;
        }
        std::thread::yield_now();
    }
}

/// Shared-cache measurement. Each repeat builds a *fresh* session (cold
/// runs must not inherit a previous repeat's traces); `warm` additionally
/// runs one untimed VM and waits for the queue to drain before timing.
fn measure_shared(
    w: &Workload,
    config: EngineConfig,
    m: usize,
    repeats: usize,
    queue_capacity: usize,
    warm: bool,
) -> ModePoint {
    let mut best = (f64::INFINITY, 0u64, 0u64);
    let mut best_shared = SharedPoint::default();
    for _ in 0..repeats.max(1) {
        let (cache, session, rx) = shared_session(queue_capacity);
        let (r, built) = std::thread::scope(|s| {
            let svc = s.spawn(|| run_shared_constructor(rx, &cache, &w.program, config));
            if warm {
                let mut vm = TracingVm::new_shared(&w.program, config, session.clone());
                vm.run(&w.args).expect("warm-up runs");
                drain_queue(&session);
            }
            let r = run_workers(w, config, m, Some(&session));
            let queue = session.queue.stats();
            let memory = session.memory_estimate();
            drop(session);
            let stats = svc.join().expect("constructor service");
            (r, (stats.traces_created, queue, memory))
        });
        if r.0 < best.0 {
            best = r;
            let cs = cache.stats();
            best_shared = SharedPoint {
                dedup_hit_rate: cs.dedup_hit_rate(),
                traces: cache.trace_count(),
                links: cache.link_count(),
                built: built.0,
                queue: built.1,
                memory_bytes: built.2,
            };
        }
    }
    ModePoint {
        threads: m,
        wall_s: best.0,
        instructions: best.1,
        instr_per_s: best.1 as f64 / best.0.max(f64::MIN_POSITIVE),
        traces_entered: best.2,
        shared: Some(best_shared),
    }
}

/// How a [`measure_boot`] VM starts.
#[derive(Clone, Copy)]
enum BootMode {
    Cold,
    Warm,
    Aot,
}

impl BootMode {
    fn label(self) -> &'static str {
        match self {
            BootMode::Cold => "cold",
            BootMode::Warm => "warm-boot",
            BootMode::Aot => "aot-replay",
        }
    }
}

/// One single-VM boot-mode measurement: per repeat, a fresh VM boots
/// per `mode` from `snapshot` and runs the workload once; the fastest
/// repeat is kept. Returns the point plus that repeat's boot report
/// (`None` for cold starts). Only the run is timed — the leg measures
/// what serving costs *after* the boot mode did its work.
fn measure_boot(
    w: &Workload,
    config: EngineConfig,
    repeats: usize,
    snapshot: &[u8],
    mode: BootMode,
) -> (BootPoint, Option<trace_exec::WarmBootReport>) {
    let mut best: Option<(BootPoint, Option<trace_exec::WarmBootReport>)> = None;
    for _ in 0..repeats.max(1) {
        let mut vm = TracingVm::new(&w.program, config);
        let boot = match mode {
            BootMode::Cold => None,
            BootMode::Warm => Some(vm.load_snapshot(snapshot).expect("own snapshot loads")),
            BootMode::Aot => Some(vm.aot_replay(snapshot).expect("own snapshot replays")),
        };
        let replayed = vm.constructor_stats().traces_created;
        let start = Instant::now();
        let report = vm.run(&w.args).expect("workload runs");
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            report.checksum,
            w.expected_checksum,
            "{} checksum diverged after {} start",
            w.name,
            mode.label()
        );
        let point = BootPoint {
            wall_s: wall,
            instructions: report.exec.instructions,
            instr_per_s: report.exec.instructions as f64 / wall.max(f64::MIN_POSITIVE),
            first_entry_dispatch: report.traces.first_entry_dispatch,
            traces_constructed: report.constructor.traces_created - replayed,
            traces_entered: report.traces.entered,
        };
        if best.as_ref().is_none_or(|(b, _)| wall < b.wall_s) {
            best = Some((point, boot));
        }
    }
    best.expect("at least one repeat")
}

/// Measures the snapshot warm-boot leg for every registry workload at
/// `scale`: one private VM is warmed and snapshotted, then cold /
/// warm-boot / AOT-replay starts are compared over `repeats`.
pub fn run_warm_boot_filtered(
    scale: Scale,
    repeats: usize,
    only: Option<&str>,
) -> Vec<WarmBootRow> {
    let config = EngineConfig::paper_default();
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let mut warming = TracingVm::new(&w.program, config);
        warming.run(&w.args).expect("warming run");
        let snapshot = warming.snapshot();
        let (cold, _) = measure_boot(&w, config, repeats, &snapshot, BootMode::Cold);
        let (warm, warm_report) = measure_boot(&w, config, repeats, &snapshot, BootMode::Warm);
        let (aot, aot_report) = measure_boot(&w, config, repeats, &snapshot, BootMode::Aot);
        let wb = warm_report.unwrap_or_default();
        rows.push(WarmBootRow {
            name: w.name,
            snapshot_bytes: snapshot.len(),
            boot_traces: wb.traces_installed,
            boot_artifacts: wb.artifacts_prebuilt,
            aot_traces: aot_report.unwrap_or_default().traces_installed,
            cold,
            warm,
            aot,
        });
    }
    rows
}

/// Engine parameters for the phase-shift leg. The phase-shift guard is
/// 95% biased, which sits *below* the paper's 0.97 admission threshold —
/// at paper defaults the constructor would cut the trace before the
/// guard and nothing could rot. The leg therefore runs the same tuned
/// configuration as the robustness test suite (admission 0.90, short
/// start delay, 64-dispatch decay epoch) so the biased guard lands
/// inside traces and the ladder has something to judge.
fn phase_shift_config() -> EngineConfig {
    EngineConfig {
        jit: trace_jit::TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..trace_jit::TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        ..EngineConfig::paper_default()
    }
}

/// Measures the phase-shift self-healing A/B for every phase-shift
/// variant at `scale`: one VM with the ladder on vs one with it off,
/// best of `repeats`, checksums asserted on every run.
pub fn run_phase_shift_filtered(
    scale: Scale,
    repeats: usize,
    only: Option<&str>,
) -> Vec<PhaseShiftRow> {
    use trace_workloads::registry::{phase_shift, phase_shift_early, phase_shift_late};

    let mut rows = Vec::new();
    for w in [
        phase_shift(scale),
        phase_shift_early(scale),
        phase_shift_late(scale),
    ] {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let measure = |config: EngineConfig| {
            let mut best_wall = f64::INFINITY;
            let mut best_instr = 0u64;
            let mut best_health = trace_cache::HealthStats::default();
            let mut best_quarantined = 0u64;
            for _ in 0..repeats.max(1) {
                let mut vm = TracingVm::new(&w.program, config);
                let start = Instant::now();
                let report = vm.run(&w.args).expect("phase-shift run");
                let wall = start.elapsed().as_secs_f64();
                assert_eq!(
                    report.checksum, w.expected_checksum,
                    "{} checksum diverged",
                    w.name
                );
                if wall < best_wall {
                    best_wall = wall;
                    best_instr = report.exec.instructions;
                    best_health = vm.health_stats();
                    best_quarantined = report.cache.traces_quarantined;
                }
            }
            (
                best_instr as f64 / best_wall.max(f64::MIN_POSITIVE),
                best_health,
                best_quarantined,
            )
        };
        let (on_ips, hs, quarantined) = measure(phase_shift_config());
        let (off_ips, _, _) = measure(phase_shift_config().with_health(false));
        rows.push(PhaseShiftRow {
            name: w.name,
            health_on_instr_per_s: on_ips,
            health_off_instr_per_s: off_ips,
            demotions: hs.demotions,
            streak_demotions: hs.streak_demotions,
            readmissions: hs.readmitted_watched,
            quarantined,
            probations: hs.probations,
            epochs: hs.epochs,
        });
    }
    rows
}

/// A phase-shift-only report (`concurrent --phase-shift`): just the
/// self-healing A/B leg, no thread ladder, no warm boot.
pub fn run_phase_shift_only(scale: Scale, repeats: usize, only: Option<&str>) -> ConcurrentReport {
    ConcurrentReport {
        scale,
        repeats,
        threads: Vec::new(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queue_capacity: QUEUE_CAPACITY,
        rows: Vec::new(),
        warm_boot: Vec::new(),
        phase_shift: run_phase_shift_filtered(scale, repeats, only),
    }
}

/// A boot-only report (`concurrent --load-snapshot`): just the snapshot
/// warm-boot leg, no thread ladder.
pub fn run_boot_only(scale: Scale, repeats: usize, only: Option<&str>) -> ConcurrentReport {
    ConcurrentReport {
        scale,
        repeats,
        threads: Vec::new(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queue_capacity: QUEUE_CAPACITY,
        rows: Vec::new(),
        warm_boot: run_warm_boot_filtered(scale, repeats, only),
        phase_shift: Vec::new(),
    }
}

/// Default construction-queue capacity for the harness.
pub const QUEUE_CAPACITY: usize = 64;

/// Thread counts measured (clipped to `max_threads`).
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Measures every registry workload at `scale` across the thread ladder
/// up to `max_threads`.
pub fn run(scale: Scale, max_threads: usize, repeats: usize) -> ConcurrentReport {
    run_filtered(scale, max_threads, repeats, None)
}

/// Like [`run`], optionally restricted to a single workload name.
pub fn run_filtered(
    scale: Scale,
    max_threads: usize,
    repeats: usize,
    only: Option<&str>,
) -> ConcurrentReport {
    let config = EngineConfig::paper_default();
    let threads: Vec<usize> = THREAD_LADDER
        .iter()
        .copied()
        .filter(|&t| t <= max_threads.max(1))
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let mut row = ConcurrentRow {
            name: w.name,
            private: Vec::new(),
            shared_cold: Vec::new(),
            shared_warm: Vec::new(),
        };
        for &m in &threads {
            row.private.push(measure_private(&w, config, m, repeats));
            row.shared_cold.push(measure_shared(
                &w,
                config,
                m,
                repeats,
                QUEUE_CAPACITY,
                false,
            ));
            row.shared_warm
                .push(measure_shared(&w, config, m, repeats, QUEUE_CAPACITY, true));
        }
        rows.push(row);
    }
    ConcurrentReport {
        scale,
        repeats,
        threads,
        host_cpus,
        queue_capacity: QUEUE_CAPACITY,
        rows,
        warm_boot: run_warm_boot_filtered(scale, repeats, only),
        phase_shift: run_phase_shift_filtered(scale, repeats, only),
    }
}

// ---------------------------------------------------------------------------
// Fault-injection mode (`concurrent --faults <seed>`)
// ---------------------------------------------------------------------------

/// Payload budget applied to the shared cache in faulted runs — small
/// enough that the busier workloads overflow it and the second-chance
/// eviction sweep runs for real.
pub fn fault_budget_bytes() -> usize {
    6 * trace_cache::trace_cost(16)
}

/// One workload's faulted measurements: the same M-VM shared deployment
/// as the throughput harness, but supervised, payload-budgeted, and run
/// under three fault profiles (none / standard / constructor-killer).
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Clean supervised+budgeted baseline, aggregate instr/s.
    pub clean_instr_per_s: f64,
    /// Standard fault plan, aggregate instr/s.
    pub faulted_instr_per_s: f64,
    /// Constructor-killer plan (permanently degraded), aggregate instr/s.
    pub degraded_instr_per_s: f64,
    /// Faults fired by the standard plan in the best faulted repeat.
    pub faults_fired: u64,
    /// Eviction / quarantine counters from the best faulted repeat.
    pub traces_evicted: u64,
    pub links_evicted: u64,
    pub traces_quarantined: u64,
    pub quarantine_rejected: u64,
    pub budget_overruns: u64,
    /// Supervisor health from the best faulted repeat.
    pub restarts: u64,
    pub panics: u64,
    /// The constructor-killer run ended permanently degraded.
    pub degraded: bool,
}

impl FaultRow {
    /// Throughput retained under the standard fault plan relative to the
    /// clean supervised baseline (1.0 = no overhead).
    pub fn faulted_retention(&self) -> f64 {
        if self.clean_instr_per_s == 0.0 {
            return 0.0;
        }
        self.faulted_instr_per_s / self.clean_instr_per_s
    }

    /// Throughput retained in permanently degraded (interpreter-only)
    /// mode relative to the clean supervised baseline.
    pub fn degraded_retention(&self) -> f64 {
        if self.clean_instr_per_s == 0.0 {
            return 0.0;
        }
        self.degraded_instr_per_s / self.clean_instr_per_s
    }
}

/// Fault-mode report: one row per workload, all at one thread count.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Worker threads per measurement.
    pub threads: usize,
    /// Timed repeats per point (min wall is reported).
    pub repeats: usize,
    /// Base fault seed (per-workload seeds are streamed from it).
    pub seed: u64,
    /// Payload budget applied to every faulted session.
    pub budget_bytes: usize,
    /// Per-workload rows.
    pub rows: Vec<FaultRow>,
}

impl FaultReport {
    /// Serialises the fault report as JSON (hand-rolled, like
    /// [`ConcurrentReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"fault_seed\": {},\n", self.seed));
        out.push_str(&format!("  \"budget_bytes\": {},\n", self.budget_bytes));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"clean_instr_per_s\": {:.1}, \
                 \"faulted_instr_per_s\": {:.1}, \"degraded_instr_per_s\": {:.1}, \
                 \"faulted_retention\": {:.4}, \"degraded_retention\": {:.4}, \
                 \"faults_fired\": {}, \"traces_evicted\": {}, \"links_evicted\": {}, \
                 \"traces_quarantined\": {}, \"quarantine_rejected\": {}, \
                 \"budget_overruns\": {}, \"restarts\": {}, \"panics\": {}, \
                 \"degraded\": {}}}{}\n",
                r.name,
                r.clean_instr_per_s,
                r.faulted_instr_per_s,
                r.degraded_instr_per_s,
                r.faulted_retention(),
                r.degraded_retention(),
                r.faults_fired,
                r.traces_evicted,
                r.links_evicted,
                r.traces_quarantined,
                r.quarantine_rejected,
                r.budget_overruns,
                r.restarts,
                r.panics,
                r.degraded,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fault-injected trace serving, aggregate Minstr/s (scale {:?}, {} threads, \
             min of {} runs, seed {:#x}, budget {} B)\n",
            self.scale, self.threads, self.repeats, self.seed, self.budget_bytes
        ));
        out.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}\n",
            "workload",
            "clean",
            "faulted",
            "degraded",
            "fired",
            "evict",
            "quar",
            "rejct",
            "ovrn",
            "rstrt",
            "flt-ret",
            "deg-ret"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7.0}% {:>7.0}%\n",
                r.name,
                r.clean_instr_per_s / 1e6,
                r.faulted_instr_per_s / 1e6,
                r.degraded_instr_per_s / 1e6,
                r.faults_fired,
                r.traces_evicted,
                r.traces_quarantined,
                r.quarantine_rejected,
                r.budget_overruns,
                r.restarts,
                r.faulted_retention() * 100.0,
                r.degraded_retention() * 100.0,
            ));
        }
        out
    }
}

/// Counters captured from the best (fastest) faulted repeat.
struct FaultCounters {
    fired: u64,
    cache: trace_cache::SharedCacheStats,
    health: trace_cache::ServiceHealthSnapshot,
}

/// One supervised, payload-budgeted, fault-injected shared measurement:
/// `m` worker VMs against one session whose constructor runs under the
/// supervisor with the given plan. Every worker still asserts its
/// checksum, so a fault that changed results aborts the bench.
fn measure_faulted(
    w: &Workload,
    config: EngineConfig,
    m: usize,
    repeats: usize,
    fault: trace_cache::FaultConfig,
    seed: u64,
) -> (f64, FaultCounters) {
    use std::sync::Arc;
    use trace_cache::{FaultPlan, SupervisorConfig};
    use trace_exec::run_supervised_shared_constructor;

    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff_base_ms: 0,
        backoff_max_ms: 0,
    };
    let mut best_wall = f64::INFINITY;
    let mut best_instr = 0u64;
    let mut best = FaultCounters {
        fired: 0,
        cache: Default::default(),
        health: Default::default(),
    };
    for _ in 0..repeats.max(1) {
        let (cache, session, rx) = shared_session(QUEUE_CAPACITY);
        let plan = Arc::new(FaultPlan::new(seed, fault));
        cache.set_faults(Arc::clone(&plan));
        session.queue.set_faults(Arc::clone(&plan));
        session.set_cache_budget(Some(fault_budget_bytes()));
        let health = Arc::clone(&session.health);
        let r = std::thread::scope(|s| {
            let h = Arc::clone(&health);
            let c = Arc::clone(&cache);
            let svc_plan = Arc::clone(&plan);
            let svc = s.spawn(move || {
                run_supervised_shared_constructor(
                    rx,
                    &c,
                    &w.program,
                    config,
                    supervisor,
                    &h,
                    Some(svc_plan),
                )
            });
            let r = run_workers(w, config, m, Some(&session));
            drop(session);
            svc.join().expect("supervisor thread must not panic");
            r
        });
        if r.0 < best_wall {
            best_wall = r.0;
            best_instr = r.1;
            best = FaultCounters {
                fired: plan.stats().total_fired(),
                cache: cache.stats(),
                health: health.snapshot(),
            };
        }
    }
    (best_instr as f64 / best_wall.max(f64::MIN_POSITIVE), best)
}

/// Measures every registry workload under the three fault profiles at a
/// single thread count. The clean profile uses the same supervised,
/// budgeted deployment (so retention numbers isolate the *faults*, not
/// the supervision machinery).
pub fn run_faults(scale: Scale, threads: usize, repeats: usize, seed: u64) -> FaultReport {
    run_faults_filtered(scale, threads, repeats, seed, None)
}

/// Like [`run_faults`], optionally restricted to a single workload name.
pub fn run_faults_filtered(
    scale: Scale,
    threads: usize,
    repeats: usize,
    seed: u64,
    only: Option<&str>,
) -> FaultReport {
    use trace_cache::FaultConfig;
    use trace_workloads::prng::seed_stream;

    let config = EngineConfig::paper_default();
    let m = threads.max(1);
    let mut rows = Vec::new();
    for (k, w) in registry::all(scale).iter().enumerate() {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let ws = seed_stream(seed, k as u64);
        let (clean_ips, _) = measure_faulted(w, config, m, repeats, FaultConfig::none(), ws);
        let (faulted_ips, fc) = measure_faulted(w, config, m, repeats, FaultConfig::standard(), ws);
        let (degraded_ips, dc) =
            measure_faulted(w, config, m, repeats, FaultConfig::constructor_killer(), ws);
        rows.push(FaultRow {
            name: w.name,
            clean_instr_per_s: clean_ips,
            faulted_instr_per_s: faulted_ips,
            degraded_instr_per_s: degraded_ips,
            faults_fired: fc.fired,
            traces_evicted: fc.cache.traces_evicted,
            links_evicted: fc.cache.links_evicted,
            traces_quarantined: fc.cache.traces_quarantined,
            quarantine_rejected: fc.cache.quarantine_rejected,
            budget_overruns: fc.cache.budget_overruns,
            restarts: fc.health.restarts,
            panics: fc.health.panics,
            degraded: dc.health.degraded,
        });
    }
    FaultReport {
        scale,
        threads: m,
        repeats,
        seed,
        budget_bytes: fault_budget_bytes(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_thread_smoke_measures_all_modes_and_checks_checksums() {
        let report = run_filtered(Scale::Test, 2, 1, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.private.len(), 2);
        assert_eq!(row.shared_cold.len(), 2);
        assert_eq!(row.shared_warm.len(), 2);
        for p in row
            .private
            .iter()
            .chain(&row.shared_cold)
            .chain(&row.shared_warm)
        {
            assert!(p.instructions > 0);
            assert!(p.instr_per_s > 0.0);
        }
        // Shared points carry observability; private points do not.
        assert!(row.private.iter().all(|p| p.shared.is_none()));
        assert!(row.shared_cold.iter().all(|p| p.shared.is_some()));
        // JSON and table render every mode.
        let json = report.to_json();
        assert!(json.contains("\"shared_cold\""));
        assert!(json.contains("\"dedup_hit_rate\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(report.render().contains("compress"));
    }

    #[test]
    fn faulted_smoke_degrades_the_killer_run_and_keeps_results() {
        // One workload, two threads, one repeat: the constructor-killer
        // profile must end permanently degraded with zero constructed
        // traces surviving, while every worker checksum still matched
        // (run_workers asserts them). The report carries the counters.
        let report = run_faults_filtered(Scale::Test, 2, 1, 0xFA17_BE4C, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.clean_instr_per_s > 0.0);
        assert!(row.faulted_instr_per_s > 0.0);
        assert!(row.degraded_instr_per_s > 0.0);
        assert!(row.degraded, "killer profile must end degraded");
        let json = report.to_json();
        assert!(json.contains("\"degraded_retention\""));
        assert!(json.contains("\"traces_quarantined\""));
        assert!(report.render().contains("compress"));
    }

    #[test]
    fn warm_boot_leg_measures_all_three_start_modes() {
        let report = run_boot_only(Scale::Test, 1, Some("compress"));
        assert!(report.rows.is_empty());
        assert_eq!(report.warm_boot.len(), 1);
        let r = &report.warm_boot[0];
        assert!(r.snapshot_bytes > 0);
        assert!(r.boot_traces > 0, "compress must snapshot some traces");
        assert!(r.boot_artifacts > 0, "warm boot must pre-build artifacts");
        assert!(r.aot_traces > 0, "aot replay must re-admit traces");
        for p in [&r.cold, &r.warm, &r.aot] {
            assert!(p.instructions > 0);
            assert!(p.instr_per_s > 0.0);
        }
        // The whole point of the leg: a warm boot reaches its first
        // trace entry no later than a cold start and constructs fewer
        // traces while serving.
        assert!(r.cold.first_entry_dispatch > 0, "cold run never traced");
        assert!(r.warm.first_entry_dispatch > 0);
        assert!(r.warm.first_entry_dispatch <= r.cold.first_entry_dispatch);
        assert!(r.warm.traces_constructed <= r.cold.traces_constructed);
        // JSON carries the new keys; boot-only render shows the table.
        let json = report.to_json();
        assert!(json.contains("\"warm_boot\""));
        assert!(json.contains("\"first_entry_dispatch\""));
        assert!(json.contains("\"aot_replay\""));
        assert!(report.render().contains("Snapshot warm boot"));
    }

    #[test]
    fn phase_shift_leg_demotes_and_reports_retention() {
        let report = run_phase_shift_only(Scale::Test, 1, None);
        assert!(report.rows.is_empty());
        assert!(report.warm_boot.is_empty());
        assert_eq!(report.phase_shift.len(), 3);
        for r in &report.phase_shift {
            assert!(r.health_on_instr_per_s > 0.0);
            assert!(r.health_off_instr_per_s > 0.0);
            assert!(r.throughput_retention() > 0.0);
            assert!(
                r.demotions + r.quarantined >= 1,
                "{}: the rotten trace was never removed",
                r.name
            );
            assert!(r.epochs > 0, "{}: no health epoch ran", r.name);
        }
        // JSON carries the self-healing keys; the table renders.
        let json = report.to_json();
        assert!(json.contains("\"phase_shift\""));
        assert!(json.contains("\"demotions\""));
        assert!(json.contains("\"readmissions\""));
        assert!(json.contains("\"throughput_retention\""));
        assert!(report.render().contains("Phase-shift self-healing"));
    }

    #[test]
    fn scaling_and_warm_speedup_are_computed_against_one_thread() {
        let mk = |threads: usize, ips: f64| ModePoint {
            threads,
            wall_s: 1.0,
            instructions: 1,
            instr_per_s: ips,
            traces_entered: 0,
            shared: None,
        };
        let row = ConcurrentRow {
            name: "x",
            private: vec![mk(1, 10.0), mk(4, 30.0)],
            shared_cold: vec![mk(1, 10.0), mk(4, 25.0)],
            shared_warm: vec![mk(1, 12.0), mk(4, 40.0)],
        };
        assert_eq!(row.scaling("private", 4), Some(3.0));
        assert_eq!(row.scaling("shared_cold", 4), Some(2.5));
        assert_eq!(row.warm_speedup(4), Some(40.0 / 25.0));
    }
}

//! Multi-VM throughput harness: private vs shared trace caches.
//!
//! Simulates a deployment serving many concurrent copies of the same
//! program: `M` worker threads each run a full [`TracingVm`] over a
//! registry workload, in three configurations —
//!
//! * **private** — every VM owns its cache and constructs inline (the
//!   pre-concurrency system, replicated M times);
//! * **shared-cold** — all VMs dispatch against one fresh
//!   [`SharedCache`], with construction on a background service thread
//!   fed by the bounded snapshot queue;
//! * **shared-warm** — as above, but the cache is pre-warmed by one
//!   untimed run before the timed workers start (the startup win of
//!   inheriting traces another VM already paid for).
//!
//! Each measurement is the *minimum wall clock* over `repeats`
//! (throughput noise is strictly downward), and reports **aggregate**
//! instructions per second: total instructions retired by all workers
//! divided by the wall time of the slowest worker. On a host with fewer
//! cores than workers the wall time grows with M and the aggregate
//! number plateaus — the report carries `host_cpus` so the scaling curve
//! is read against the hardware actually present (see EXPERIMENTS.md).
//!
//! Every VM run's checksum is asserted against the workload's expected
//! value, so the harness doubles as a concurrency stress test: a torn
//! link or a stale artifact would corrupt a checksum long before it
//! corrupted a timing.

use std::time::Instant;

use trace_cache::QueueStats;
use trace_exec::{run_shared_constructor, shared_session, EngineConfig, SharedSession, TracingVm};
use trace_workloads::registry::{self, Scale, Workload};

/// Shared-mode observability attached to a measurement point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedPoint {
    /// Fraction of trace insertions served by hash-consing (cross-VM
    /// dedup hits), in `[0, 1]`.
    pub dedup_hit_rate: f64,
    /// Distinct traces in the cache after the run.
    pub traces: usize,
    /// Entry branches linked after the run.
    pub links: usize,
    /// Traces the background constructor actually built.
    pub built: u64,
    /// Construction-queue counters (high-water depth, drops).
    pub queue: QueueStats,
    /// Estimated bytes of the session (shards + cons state + artifacts
    /// + in-flight snapshots).
    pub memory_bytes: usize,
}

/// One (mode, thread-count) measurement.
#[derive(Debug, Clone, Copy)]
pub struct ModePoint {
    /// Worker threads.
    pub threads: usize,
    /// Minimum wall clock over the repeats, seconds.
    pub wall_s: f64,
    /// Total instructions retired by all workers in the best repeat.
    pub instructions: u64,
    /// Aggregate throughput: `instructions / wall_s`.
    pub instr_per_s: f64,
    /// Trace entries summed over all workers.
    pub traces_entered: u64,
    /// Shared-cache observability (private mode: `None`).
    pub shared: Option<SharedPoint>,
}

/// One workload's scaling curves.
#[derive(Debug, Clone)]
pub struct ConcurrentRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Private-cache points, one per thread count.
    pub private: Vec<ModePoint>,
    /// Shared-cache cold-start points.
    pub shared_cold: Vec<ModePoint>,
    /// Shared-cache warm-start points.
    pub shared_warm: Vec<ModePoint>,
}

impl ConcurrentRow {
    fn mode(&self, mode: &str) -> &[ModePoint] {
        match mode {
            "private" => &self.private,
            "shared_cold" => &self.shared_cold,
            "shared_warm" => &self.shared_warm,
            other => panic!("unknown mode {other}"),
        }
    }

    /// Aggregate-throughput scaling of `mode` at `threads` relative to
    /// one thread of the same mode (1.0 = no scaling).
    pub fn scaling(&self, mode: &str, threads: usize) -> Option<f64> {
        let pts = self.mode(mode);
        let one = pts.iter().find(|p| p.threads == 1)?;
        let at = pts.iter().find(|p| p.threads == threads)?;
        if one.instr_per_s == 0.0 {
            return None;
        }
        Some(at.instr_per_s / one.instr_per_s)
    }

    /// Warm-vs-cold startup win at `threads`: warm aggregate throughput
    /// over cold aggregate throughput.
    pub fn warm_speedup(&self, threads: usize) -> Option<f64> {
        let cold = self.shared_cold.iter().find(|p| p.threads == threads)?;
        let warm = self.shared_warm.iter().find(|p| p.threads == threads)?;
        if cold.instr_per_s == 0.0 {
            return None;
        }
        Some(warm.instr_per_s / cold.instr_per_s)
    }
}

/// Full report: one row per workload.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Timed repeats per point (min wall is reported).
    pub repeats: usize,
    /// Worker-thread counts measured.
    pub threads: Vec<usize>,
    /// CPUs available on the measuring host — the ceiling on wall-clock
    /// scaling.
    pub host_cpus: usize,
    /// Construction-queue capacity used for shared modes.
    pub queue_capacity: usize,
    /// Per-workload rows.
    pub rows: Vec<ConcurrentRow>,
}

impl ConcurrentReport {
    /// Workloads whose shared-cold run at `threads` deduped at least one
    /// trace across VMs.
    pub fn dedup_observed(&self, threads: usize) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                r.shared_cold
                    .iter()
                    .find(|p| p.threads == threads)
                    .and_then(|p| p.shared)
                    .is_some_and(|s| s.dedup_hit_rate > 0.0)
            })
            .count()
    }

    /// Serialises the report as JSON (hand-rolled: the workspace has no
    /// serde and the shape is fixed).
    pub fn to_json(&self) -> String {
        fn point(p: &ModePoint) -> String {
            let mut s = format!(
                "{{\"threads\": {}, \"wall_s\": {:.6}, \"instructions\": {}, \
                 \"instr_per_s\": {:.1}, \"traces_entered\": {}",
                p.threads, p.wall_s, p.instructions, p.instr_per_s, p.traces_entered
            );
            if let Some(sh) = &p.shared {
                s.push_str(&format!(
                    ", \"dedup_hit_rate\": {:.4}, \"traces\": {}, \"links\": {}, \
                     \"built\": {}, \"queue_max_depth\": {}, \"queue_dropped\": {}, \
                     \"memory_bytes\": {}",
                    sh.dedup_hit_rate,
                    sh.traces,
                    sh.links,
                    sh.built,
                    sh.queue.max_depth,
                    sh.queue.dropped,
                    sh.memory_bytes
                ));
            }
            s.push('}');
            s
        }
        fn mode(points: &[ModePoint]) -> String {
            let inner: Vec<String> = points.iter().map(point).collect();
            format!("[{}]", inner.join(", "))
        }

        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        let ts: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"thread_counts\": [{}],\n", ts.join(", ")));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!("    {{\"name\": \"{}\",\n", r.name));
            out.push_str(&format!("     \"private\": {},\n", mode(&r.private)));
            out.push_str(&format!(
                "     \"shared_cold\": {},\n",
                mode(&r.shared_cold)
            ));
            out.push_str(&format!(
                "     \"shared_warm\": {}}}{}\n",
                mode(&r.shared_warm),
                {
                    if i + 1 == self.rows.len() {
                        ""
                    } else {
                        ","
                    }
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let max_t = self.threads.iter().copied().max().unwrap_or(1);
        let mut out = String::new();
        out.push_str(&format!(
            "Concurrent trace serving, aggregate Minstr/s (scale {:?}, min of {} runs, {} host CPUs)\n",
            self.scale, self.repeats, self.host_cpus
        ));
        out.push_str(&format!(
            "{:<10} {:>4} {:>10} {:>12} {:>12} {:>7} {:>7} {:>6} {:>8}\n",
            "workload",
            "thr",
            "private",
            "shared-cold",
            "shared-warm",
            "scale",
            "dedup%",
            "qmax",
            "dropped"
        ));
        for r in &self.rows {
            for (i, &t) in self.threads.iter().enumerate() {
                let get = |pts: &[ModePoint]| {
                    pts.iter()
                        .find(|p| p.threads == t)
                        .map_or(0.0, |p| p.instr_per_s / 1e6)
                };
                let sh = r
                    .shared_cold
                    .iter()
                    .find(|p| p.threads == t)
                    .and_then(|p| p.shared)
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{:<10} {:>4} {:>10.2} {:>12.2} {:>12.2} {:>7.2} {:>7.1} {:>6} {:>8}\n",
                    if i == 0 { r.name } else { "" },
                    t,
                    get(&r.private),
                    get(&r.shared_cold),
                    get(&r.shared_warm),
                    r.scaling("shared_cold", t).unwrap_or(0.0),
                    sh.dedup_hit_rate * 100.0,
                    sh.queue.max_depth,
                    sh.queue.dropped,
                ));
            }
            if let Some(w) = r.warm_speedup(max_t) {
                out.push_str(&format!(
                    "{:<10} warm-start speedup at {} threads: {:.2}x\n",
                    "", max_t, w
                ));
            }
        }
        out
    }
}

/// Runs `m` worker VMs (one full workload run each) and returns
/// `(wall_s, total_instructions, total_trace_entries)`. Private mode
/// when `session` is `None`.
fn run_workers(
    w: &Workload,
    config: EngineConfig,
    m: usize,
    session: Option<&SharedSession>,
) -> (f64, u64, u64) {
    std::thread::scope(|s| {
        let start = Instant::now();
        let handles: Vec<_> = (0..m)
            .map(|_| {
                let sess = session.cloned();
                s.spawn(move || {
                    let mut vm = match sess {
                        Some(sess) => TracingVm::new_shared(&w.program, config, sess),
                        None => TracingVm::new(&w.program, config),
                    };
                    let report = vm.run(&w.args).expect("workload runs");
                    assert_eq!(
                        report.checksum, w.expected_checksum,
                        "{} checksum diverged under concurrency",
                        w.name
                    );
                    (report.exec.instructions, report.traces.entered)
                })
            })
            .collect();
        let mut instrs = 0u64;
        let mut entered = 0u64;
        for h in handles {
            let (i, e) = h.join().expect("worker");
            instrs += i;
            entered += e;
        }
        (start.elapsed().as_secs_f64(), instrs, entered)
    })
}

/// Private-cache measurement: `m` isolated VMs, min wall over repeats.
fn measure_private(w: &Workload, config: EngineConfig, m: usize, repeats: usize) -> ModePoint {
    let mut best = (f64::INFINITY, 0u64, 0u64);
    for _ in 0..repeats.max(1) {
        let r = run_workers(w, config, m, None);
        if r.0 < best.0 {
            best = r;
        }
    }
    ModePoint {
        threads: m,
        wall_s: best.0,
        instructions: best.1,
        instr_per_s: best.1 as f64 / best.0.max(f64::MIN_POSITIVE),
        traces_entered: best.2,
        shared: None,
    }
}

/// Blocks until the construction queue drains (all submitted snapshots
/// consumed), bounded by ~1s so a wedged service cannot hang the bench.
fn drain_queue(session: &SharedSession) {
    for _ in 0..10_000 {
        if session.queue.stats().depth == 0 {
            return;
        }
        std::thread::yield_now();
    }
}

/// Shared-cache measurement. Each repeat builds a *fresh* session (cold
/// runs must not inherit a previous repeat's traces); `warm` additionally
/// runs one untimed VM and waits for the queue to drain before timing.
fn measure_shared(
    w: &Workload,
    config: EngineConfig,
    m: usize,
    repeats: usize,
    queue_capacity: usize,
    warm: bool,
) -> ModePoint {
    let mut best = (f64::INFINITY, 0u64, 0u64);
    let mut best_shared = SharedPoint::default();
    for _ in 0..repeats.max(1) {
        let (cache, session, rx) = shared_session(queue_capacity);
        let (r, built) = std::thread::scope(|s| {
            let svc = s.spawn(|| run_shared_constructor(rx, &cache, &w.program, config));
            if warm {
                let mut vm = TracingVm::new_shared(&w.program, config, session.clone());
                vm.run(&w.args).expect("warm-up runs");
                drain_queue(&session);
            }
            let r = run_workers(w, config, m, Some(&session));
            let queue = session.queue.stats();
            let memory = session.memory_estimate();
            drop(session);
            let stats = svc.join().expect("constructor service");
            (r, (stats.traces_created, queue, memory))
        });
        if r.0 < best.0 {
            best = r;
            let cs = cache.stats();
            best_shared = SharedPoint {
                dedup_hit_rate: cs.dedup_hit_rate(),
                traces: cache.trace_count(),
                links: cache.link_count(),
                built: built.0,
                queue: built.1,
                memory_bytes: built.2,
            };
        }
    }
    ModePoint {
        threads: m,
        wall_s: best.0,
        instructions: best.1,
        instr_per_s: best.1 as f64 / best.0.max(f64::MIN_POSITIVE),
        traces_entered: best.2,
        shared: Some(best_shared),
    }
}

/// Default construction-queue capacity for the harness.
pub const QUEUE_CAPACITY: usize = 64;

/// Thread counts measured (clipped to `max_threads`).
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Measures every registry workload at `scale` across the thread ladder
/// up to `max_threads`.
pub fn run(scale: Scale, max_threads: usize, repeats: usize) -> ConcurrentReport {
    run_filtered(scale, max_threads, repeats, None)
}

/// Like [`run`], optionally restricted to a single workload name.
pub fn run_filtered(
    scale: Scale,
    max_threads: usize,
    repeats: usize,
    only: Option<&str>,
) -> ConcurrentReport {
    let config = EngineConfig::paper_default();
    let threads: Vec<usize> = THREAD_LADDER
        .iter()
        .copied()
        .filter(|&t| t <= max_threads.max(1))
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let mut row = ConcurrentRow {
            name: w.name,
            private: Vec::new(),
            shared_cold: Vec::new(),
            shared_warm: Vec::new(),
        };
        for &m in &threads {
            row.private.push(measure_private(&w, config, m, repeats));
            row.shared_cold.push(measure_shared(
                &w,
                config,
                m,
                repeats,
                QUEUE_CAPACITY,
                false,
            ));
            row.shared_warm
                .push(measure_shared(&w, config, m, repeats, QUEUE_CAPACITY, true));
        }
        rows.push(row);
    }
    ConcurrentReport {
        scale,
        repeats,
        threads,
        host_cpus,
        queue_capacity: QUEUE_CAPACITY,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_thread_smoke_measures_all_modes_and_checks_checksums() {
        let report = run_filtered(Scale::Test, 2, 1, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.private.len(), 2);
        assert_eq!(row.shared_cold.len(), 2);
        assert_eq!(row.shared_warm.len(), 2);
        for p in row
            .private
            .iter()
            .chain(&row.shared_cold)
            .chain(&row.shared_warm)
        {
            assert!(p.instructions > 0);
            assert!(p.instr_per_s > 0.0);
        }
        // Shared points carry observability; private points do not.
        assert!(row.private.iter().all(|p| p.shared.is_none()));
        assert!(row.shared_cold.iter().all(|p| p.shared.is_some()));
        // JSON and table render every mode.
        let json = report.to_json();
        assert!(json.contains("\"shared_cold\""));
        assert!(json.contains("\"dedup_hit_rate\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(report.render().contains("compress"));
    }

    #[test]
    fn scaling_and_warm_speedup_are_computed_against_one_thread() {
        let mk = |threads: usize, ips: f64| ModePoint {
            threads,
            wall_s: 1.0,
            instructions: 1,
            instr_per_s: ips,
            traces_entered: 0,
            shared: None,
        };
        let row = ConcurrentRow {
            name: "x",
            private: vec![mk(1, 10.0), mk(4, 30.0)],
            shared_cold: vec![mk(1, 10.0), mk(4, 25.0)],
            shared_warm: vec![mk(1, 12.0), mk(4, 40.0)],
        };
        assert_eq!(row.scaling("private", 4), Some(3.0));
        assert_eq!(row.scaling("shared_cold", 4), Some(2.5));
        assert_eq!(row.warm_speedup(4), Some(40.0 / 25.0));
    }
}

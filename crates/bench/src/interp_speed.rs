//! Interpreter speed microbenchmark: reference vs pre-decoded engine.
//!
//! Times complete workload runs of the frozen [`ReferenceVm`] (the
//! classic fetch-decode-execute loop over the `Instr` enum, per-
//! instruction block detection, `Vec`-per-frame state) against the
//! pre-decoded threaded [`Vm`] (flat opcode streams with baked-in
//! block-entry markers, frame arena, verifier-backed unchecked stack
//! ops) on every registry workload.
//!
//! Methodology matches `hot_path`: both sides execute the *identical*
//! semantic work (asserted — same instruction count, same dispatch
//! count, same checksum), each number is the minimum over `repeats`
//! timed runs after one untimed warm-up, and output capture is off so
//! sink pushes don't pollute timing. Costs are reported two ways:
//!
//! * **ns/instruction** — wall time over executed bytecode instructions,
//!   the headline per-dispatch cost model number (DESIGN.md);
//! * **ns/dispatch** — wall time over basic-block dispatches, comparable
//!   with the `hot_path` profiler numbers.
//!
//! The report also carries the decoded-code and frame-arena byte
//! footprints, since the decoded form trades memory for dispatch speed.

use std::time::Instant;

use jvm_vm::{DecodedMemory, NullObserver, ReferenceVm, Vm, VmConfig};
use trace_workloads::registry::{self, Scale, Workload};

/// One workload's timings (all minima over the repeat count).
#[derive(Debug, Clone)]
pub struct InterpRow {
    /// Workload name (registry name).
    pub name: String,
    /// Executed bytecode instructions (identical on both sides).
    pub instructions: u64,
    /// Basic-block dispatches (identical on both sides).
    pub dispatches: u64,
    /// Reference interpreter, ns per instruction.
    pub reference_ns_per_instr: f64,
    /// Decoded engine, ns per instruction.
    pub decoded_ns_per_instr: f64,
    /// Decoded-code footprint for this workload's program (bytes).
    pub decoded_memory: DecodedMemory,
    /// Frame-arena slab footprint after the runs (bytes).
    pub arena_bytes: usize,
}

impl InterpRow {
    /// Percentage reduction in ns/instruction (positive = decoded
    /// engine faster).
    pub fn improvement_pct(&self) -> f64 {
        if self.reference_ns_per_instr == 0.0 {
            return 0.0;
        }
        (1.0 - self.decoded_ns_per_instr / self.reference_ns_per_instr) * 100.0
    }

    /// Reference interpreter, ns per block dispatch.
    pub fn reference_ns_per_dispatch(&self) -> f64 {
        self.reference_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Decoded engine, ns per block dispatch.
    pub fn decoded_ns_per_dispatch(&self) -> f64 {
        self.decoded_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }
}

/// Full report, one row per measured workload.
#[derive(Debug, Clone)]
pub struct InterpReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Timed runs per number (min is reported).
    pub repeats: usize,
    /// Per-workload rows.
    pub rows: Vec<InterpRow>,
}

impl InterpReport {
    /// Geometric-mean speedup (reference / decoded ns-per-instruction;
    /// > 1 means the decoded engine is faster).
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| (r.reference_ns_per_instr / r.decoded_ns_per_instr).ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Geometric-mean ns/instruction improvement as a percentage
    /// (positive = decoded engine faster).
    pub fn geomean_improvement_pct(&self) -> f64 {
        (1.0 - 1.0 / self.geomean_speedup()) * 100.0
    }

    /// Serialises the report as JSON (hand-rolled: the workspace has no
    /// serde and the shape is fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"geomean_speedup\": {:.4},\n",
            self.geomean_speedup()
        ));
        out.push_str(&format!(
            "  \"geomean_improvement_pct\": {:.2},\n",
            self.geomean_improvement_pct()
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"instructions\": {}, \"dispatches\": {},\n",
                    "     \"ns_per_instruction\": ",
                    "{{\"reference\": {:.3}, \"decoded\": {:.3}, \"improvement_pct\": {:.2}}},\n",
                    "     \"ns_per_dispatch\": ",
                    "{{\"reference\": {:.3}, \"decoded\": {:.3}}},\n",
                    "     \"decoded_code_bytes\": {}, \"decoded_map_bytes\": {}, ",
                    "\"decoded_pool_bytes\": {}, \"arena_bytes\": {}}}{}\n",
                ),
                r.name,
                r.instructions,
                r.dispatches,
                r.reference_ns_per_instr,
                r.decoded_ns_per_instr,
                r.improvement_pct(),
                r.reference_ns_per_dispatch(),
                r.decoded_ns_per_dispatch(),
                r.decoded_memory.code_bytes,
                r.decoded_memory.map_bytes,
                r.decoded_memory.pool_bytes,
                r.arena_bytes,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Interpreter speed, ns/instruction (scale {:?}, min of {} runs)\n",
            self.scale, self.repeats
        ));
        out.push_str(&format!(
            "{:<10} {:>14} {:>9} {:>9} {:>7} {:>10} {:>10} {:>10}\n",
            "workload",
            "instructions",
            "ref",
            "decoded",
            "gain%",
            "ref-disp",
            "dec-disp",
            "dec-KiB"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>14} {:>9.3} {:>9.3} {:>7.1} {:>10.2} {:>10.2} {:>10.1}\n",
                r.name,
                r.instructions,
                r.reference_ns_per_instr,
                r.decoded_ns_per_instr,
                r.improvement_pct(),
                r.reference_ns_per_dispatch(),
                r.decoded_ns_per_dispatch(),
                r.decoded_memory.total() as f64 / 1024.0,
            ));
        }
        out.push_str(&format!(
            "geomean speedup {:.3}x ({:.1}% ns/instruction)\n",
            self.geomean_speedup(),
            self.geomean_improvement_pct()
        ));
        out
    }
}

/// Minimum wall-clock seconds over `repeats` timed calls of `pass`, with
/// one untimed warm-up (page-in, branch predictors, allocator).
fn min_secs(repeats: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn measure_workload(w: &Workload, repeats: usize) -> InterpRow {
    // Output capture off: timing must not include sink pushes.
    let config = VmConfig {
        capture_output: false,
        ..VmConfig::default()
    };

    let mut reference = ReferenceVm::with_config(&w.program, config);
    let ref_secs = min_secs(repeats, || {
        let r = reference.run(&w.args, &mut NullObserver).expect("runs");
        std::hint::black_box(r);
    });

    let mut decoded = Vm::with_config(&w.program, config);
    let dec_secs = min_secs(repeats, || {
        let r = decoded.run(&w.args, &mut NullObserver).expect("runs");
        std::hint::black_box(r);
    });

    // Both engines must have done the identical semantic work — this is
    // the same equivalence the differential suite pins, re-checked on
    // the timed configuration.
    let rs = reference.stats();
    let ds = decoded.stats();
    assert_eq!(rs, ds, "{}: stats diverged between engines", w.name);
    assert_eq!(
        reference.checksum(),
        decoded.checksum(),
        "{}: checksum diverged between engines",
        w.name
    );
    assert_eq!(
        decoded.checksum(),
        w.expected_checksum,
        "{}: checksum does not match the workload reference",
        w.name
    );

    let instructions = ds.instructions.max(1);
    InterpRow {
        name: w.name.to_owned(),
        instructions: ds.instructions,
        dispatches: ds.block_dispatches,
        reference_ns_per_instr: ref_secs * 1e9 / instructions as f64,
        decoded_ns_per_instr: dec_secs * 1e9 / instructions as f64,
        decoded_memory: decoded.decoded().memory_estimate(),
        arena_bytes: decoded.arena_memory(),
    }
}

/// Measures registry workloads at `scale`, optionally restricted to a
/// single workload name; each reported number is the minimum over
/// `repeats` timed full runs.
pub fn run(scale: Scale, repeats: usize, only: Option<&str>) -> InterpReport {
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        rows.push(measure_workload(&w, repeats));
    }
    InterpReport {
        scale,
        repeats,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_derived_quantities_are_consistent() {
        let r = InterpRow {
            name: "w".into(),
            instructions: 1000,
            dispatches: 100,
            reference_ns_per_instr: 10.0,
            decoded_ns_per_instr: 5.0,
            decoded_memory: DecodedMemory::default(),
            arena_bytes: 0,
        };
        assert!((r.improvement_pct() - 50.0).abs() < 1e-9);
        assert!((r.reference_ns_per_dispatch() - 100.0).abs() < 1e-9);
        assert!((r.decoded_ns_per_dispatch() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_uniform_speedup_is_that_speedup() {
        let row = |ref_ns: f64, dec_ns: f64| InterpRow {
            name: "w".into(),
            instructions: 1,
            dispatches: 1,
            reference_ns_per_instr: ref_ns,
            decoded_ns_per_instr: dec_ns,
            decoded_memory: DecodedMemory::default(),
            arena_bytes: 0,
        };
        let report = InterpReport {
            scale: Scale::Test,
            repeats: 1,
            rows: vec![row(10.0, 5.0), row(4.0, 2.0)],
        };
        assert!((report.geomean_speedup() - 2.0).abs() < 1e-9);
        assert!((report.geomean_improvement_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn report_runs_and_serialises_at_test_scale() {
        let report = run(Scale::Test, 1, None);
        assert_eq!(report.rows.len(), registry::all(Scale::Test).len());
        assert!(report.rows.iter().all(|r| r.instructions > 0));
        let json = report.to_json();
        assert!(json.contains("\"geomean_speedup\""));
        assert!(json.contains("\"ns_per_instruction\""));
        let table = report.render();
        for r in &report.rows {
            assert!(json.contains(&r.name));
            assert!(table.contains(&r.name));
        }
    }

    #[test]
    fn workload_filter_restricts_rows() {
        let report = run(Scale::Test, 1, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].name, "compress");
    }
}

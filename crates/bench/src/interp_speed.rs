//! Interpreter speed microbenchmark: reference vs pre-decoded engine.
//!
//! Times complete workload runs of the frozen [`ReferenceVm`] (the
//! classic fetch-decode-execute loop over the `Instr` enum, per-
//! instruction block detection, `Vec`-per-frame state) against the
//! pre-decoded threaded [`Vm`] (flat opcode streams with baked-in
//! block-entry markers, frame arena, verifier-backed unchecked stack
//! ops) on every registry workload.
//!
//! Methodology matches `hot_path`: both sides execute the *identical*
//! semantic work (asserted — same instruction count, same dispatch
//! count, same checksum), each number is the minimum over `repeats`
//! timed runs after one untimed warm-up, and output capture is off so
//! sink pushes don't pollute timing. Costs are reported two ways:
//!
//! * **ns/instruction** — wall time over executed bytecode instructions,
//!   the headline per-dispatch cost model number (DESIGN.md);
//! * **ns/dispatch** — wall time over basic-block dispatches, comparable
//!   with the `hot_path` profiler numbers.
//!
//! The report also carries the decoded-code and frame-arena byte
//! footprints, since the decoded form trades memory for dispatch speed.
//!
//! Four additions ride along:
//!
//! * a **fused** leg — the same decoded `Vm` after the profile-driven
//!   superinstruction pass (`jvm_vm::fuse`): a profiling run collects
//!   block visits, selection picks the patterns that clear the default
//!   thresholds, and the timed passes execute the quickened stream;
//! * an **engine-dop** leg — a warm [`TracingVm`] with `reg_ir` *off*,
//!   so hot traces execute from decoded `DOp` streams. This is the
//!   apples-to-apples baseline for the register tier:
//!   `reg_improvement_pct` compares the two warm engines, never a warm
//!   engine against a bare interpreter (the old methodology double-
//!   counted trace-pipeline overheads on one side — see EXPERIMENTS.md);
//! * a **lowered-reg** leg (warm `TracingVm`, register-lowered traces),
//!   as before;
//! * per-workload **opcode pair and triple histograms** — the hottest
//!   dynamic adjacencies, reconstructed exactly from the block-dispatch
//!   stream — the evidence base for the superinstruction table, plus
//!   the fusion pass's own statistics (candidates, groups planted,
//!   dispatches eliminated, selected patterns).

use std::collections::HashMap;
use std::time::Instant;

use jvm_bytecode::BlockId;
use jvm_vm::decode::op;
use jvm_vm::{
    BlockCounts, DecodedMemory, DecodedProgram, FusionConfig, NullObserver, ReferenceVm, Vm,
    VmConfig,
};
use trace_exec::{EngineConfig, TracingVm};
use trace_jit::TraceJitConfig;
use trace_workloads::registry::{self, Scale, Workload};

/// How many hot opcode pairs each row reports.
pub const TOP_PAIRS: usize = 8;

/// How many hot opcode triples each row reports.
pub const TOP_TRIPLES: usize = 8;

/// Statistics of one workload's profile-driven fusion rewrite.
#[derive(Debug, Clone, Default)]
pub struct FusionStats {
    /// Statically matchable group sites (full table, before selection).
    pub candidates: u64,
    /// Groups actually planted under the selected patterns.
    pub applied: u64,
    /// Estimated dynamic dispatches eliminated (profile-weighted).
    pub dispatches_eliminated: u64,
    /// Selected pattern names, union across functions, table order.
    pub selected: Vec<&'static str>,
}

/// One workload's timings (all minima over the repeat count).
#[derive(Debug, Clone)]
pub struct InterpRow {
    /// Workload name (registry name).
    pub name: String,
    /// Executed bytecode instructions (identical on both sides).
    pub instructions: u64,
    /// Basic-block dispatches (identical on both sides).
    pub dispatches: u64,
    /// Reference interpreter, ns per instruction.
    pub reference_ns_per_instr: f64,
    /// Decoded engine, ns per instruction.
    pub decoded_ns_per_instr: f64,
    /// Decoded engine after profile-driven superinstruction fusion, ns
    /// per (source) instruction.
    pub fused_ns_per_instr: f64,
    /// Warm trace-executing engine with decoded-`DOp` traces (`reg_ir`
    /// off), ns per (source) instruction — the fair baseline for the
    /// register tier.
    pub engine_dop_ns_per_instr: f64,
    /// Warm trace-executing engine with register-lowered traces, ns per
    /// (source) instruction. Below `decoded_ns_per_instr` once the hot
    /// paths run from three-address code.
    pub lowered_reg_ns_per_instr: f64,
    /// Hottest dynamic opcode pairs `(first, second, count)` — the
    /// fusion/lowering shopping list for this workload.
    pub hot_pairs: Vec<(&'static str, &'static str, u64)>,
    /// Hottest dynamic opcode triples `(a, b, c, count)`.
    pub hot_triples: Vec<(&'static str, &'static str, &'static str, u64)>,
    /// The fusion pass's own numbers for this workload.
    pub fusion: FusionStats,
    /// Decoded-code footprint for this workload's program (bytes).
    pub decoded_memory: DecodedMemory,
    /// Frame-arena slab footprint after the runs (bytes).
    pub arena_bytes: usize,
}

impl InterpRow {
    /// Percentage reduction in ns/instruction (positive = decoded
    /// engine faster).
    pub fn improvement_pct(&self) -> f64 {
        if self.reference_ns_per_instr == 0.0 {
            return 0.0;
        }
        (1.0 - self.decoded_ns_per_instr / self.reference_ns_per_instr) * 100.0
    }

    /// Reference interpreter, ns per block dispatch.
    pub fn reference_ns_per_dispatch(&self) -> f64 {
        self.reference_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Decoded engine, ns per block dispatch.
    pub fn decoded_ns_per_dispatch(&self) -> f64 {
        self.decoded_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Fused decoded engine, ns per block dispatch.
    pub fn fused_ns_per_dispatch(&self) -> f64 {
        self.fused_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Percentage reduction of the fused decoded engine relative to the
    /// unfused decoded engine (positive = fusion pays).
    pub fn fused_improvement_pct(&self) -> f64 {
        if self.decoded_ns_per_instr == 0.0 {
            return 0.0;
        }
        (1.0 - self.fused_ns_per_instr / self.decoded_ns_per_instr) * 100.0
    }

    /// Decoded-trace engine, ns per block dispatch (of the source
    /// stream — the engine itself dispatches far fewer blocks).
    pub fn engine_dop_ns_per_dispatch(&self) -> f64 {
        self.engine_dop_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Register-trace engine, ns per block dispatch (of the source
    /// stream — the engine itself dispatches far fewer blocks).
    pub fn lowered_reg_ns_per_dispatch(&self) -> f64 {
        self.lowered_reg_ns_per_instr * self.instructions as f64 / self.dispatches.max(1) as f64
    }

    /// Percentage reduction of the register-trace engine relative to the
    /// *decoded-trace engine* (positive = register traces faster). Both
    /// sides are warm `TracingVm`s differing only in `reg_ir`, so this
    /// isolates the lowering itself; comparing a warm engine against a
    /// bare interpreter (the pre-fix methodology) mixes trace-pipeline
    /// overheads into one side and is not reported any more.
    pub fn reg_improvement_pct(&self) -> f64 {
        if self.engine_dop_ns_per_instr == 0.0 {
            return 0.0;
        }
        (1.0 - self.lowered_reg_ns_per_instr / self.engine_dop_ns_per_instr) * 100.0
    }
}

/// Full report, one row per measured workload.
#[derive(Debug, Clone)]
pub struct InterpReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Timed runs per number (min is reported).
    pub repeats: usize,
    /// Per-workload rows.
    pub rows: Vec<InterpRow>,
}

impl InterpReport {
    /// Geometric-mean speedup (reference / decoded ns-per-instruction;
    /// > 1 means the decoded engine is faster).
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| (r.reference_ns_per_instr / r.decoded_ns_per_instr).ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Geometric-mean ns/instruction improvement as a percentage
    /// (positive = decoded engine faster).
    pub fn geomean_improvement_pct(&self) -> f64 {
        (1.0 - 1.0 / self.geomean_speedup()) * 100.0
    }

    /// Geometric-mean speedup of the fused decoded engine over the
    /// unfused decoded engine (> 1 means fusion pays).
    pub fn geomean_fused_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| (r.decoded_ns_per_instr / r.fused_ns_per_instr).ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Workloads on which the fused leg beat the unfused decoded leg on
    /// ns/dispatch.
    pub fn fused_wins(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.fused_ns_per_dispatch() < r.decoded_ns_per_dispatch())
            .count()
    }

    /// Serialises the report as JSON (hand-rolled: the workspace has no
    /// serde and the shape is fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"geomean_speedup\": {:.4},\n",
            self.geomean_speedup()
        ));
        out.push_str(&format!(
            "  \"geomean_improvement_pct\": {:.2},\n",
            self.geomean_improvement_pct()
        ));
        out.push_str(&format!(
            "  \"geomean_fused_speedup\": {:.4},\n",
            self.geomean_fused_speedup()
        ));
        out.push_str(&format!("  \"fused_wins\": {},\n", self.fused_wins()));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let pairs: Vec<String> = r
                .hot_pairs
                .iter()
                .map(|(a, b, n)| format!("{{\"pair\": \"{a} {b}\", \"count\": {n}}}"))
                .collect();
            let triples: Vec<String> = r
                .hot_triples
                .iter()
                .map(|(a, b, c, n)| format!("{{\"triple\": \"{a} {b} {c}\", \"count\": {n}}}"))
                .collect();
            let selected: Vec<String> = r
                .fusion
                .selected
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect();
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"instructions\": {}, \"dispatches\": {},\n",
                    "     \"ns_per_instruction\": ",
                    "{{\"reference\": {:.3}, \"decoded\": {:.3}, \"fused\": {:.3}, ",
                    "\"engine-dop\": {:.3}, \"lowered-reg\": {:.3}, ",
                    "\"improvement_pct\": {:.2}, \"fused_improvement_pct\": {:.2}, ",
                    "\"reg_improvement_pct\": {:.2}}},\n",
                    "     \"ns_per_dispatch\": ",
                    "{{\"reference\": {:.3}, \"decoded\": {:.3}, \"fused\": {:.3}, ",
                    "\"engine-dop\": {:.3}, \"lowered-reg\": {:.3}}},\n",
                    "     \"fusion\": {{\"candidates\": {}, \"applied\": {}, ",
                    "\"dispatches_eliminated\": {}, \"selected\": [{}]}},\n",
                    "     \"hot_opcode_pairs\": [{}],\n",
                    "     \"hot_opcode_triples\": [{}],\n",
                    "     \"decoded_code_bytes\": {}, \"decoded_map_bytes\": {}, ",
                    "\"decoded_pool_bytes\": {}, \"arena_bytes\": {}}}{}\n",
                ),
                r.name,
                r.instructions,
                r.dispatches,
                r.reference_ns_per_instr,
                r.decoded_ns_per_instr,
                r.fused_ns_per_instr,
                r.engine_dop_ns_per_instr,
                r.lowered_reg_ns_per_instr,
                r.improvement_pct(),
                r.fused_improvement_pct(),
                r.reg_improvement_pct(),
                r.reference_ns_per_dispatch(),
                r.decoded_ns_per_dispatch(),
                r.fused_ns_per_dispatch(),
                r.engine_dop_ns_per_dispatch(),
                r.lowered_reg_ns_per_dispatch(),
                r.fusion.candidates,
                r.fusion.applied,
                r.fusion.dispatches_eliminated,
                selected.join(", "),
                pairs.join(", "),
                triples.join(", "),
                r.decoded_memory.code_bytes,
                r.decoded_memory.map_bytes,
                r.decoded_memory.pool_bytes,
                r.arena_bytes,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Interpreter speed, ns/instruction (scale {:?}, min of {} runs)\n",
            self.scale, self.repeats
        ));
        out.push_str(&format!(
            "{:<10} {:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8}\n",
            "workload",
            "instructions",
            "ref",
            "decoded",
            "fused",
            "eng-dop",
            "reg",
            "fuse%",
            "reg%",
            "dec-KiB"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>14} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6.1} {:>6.1} {:>8.1}\n",
                r.name,
                r.instructions,
                r.reference_ns_per_instr,
                r.decoded_ns_per_instr,
                r.fused_ns_per_instr,
                r.engine_dop_ns_per_instr,
                r.lowered_reg_ns_per_instr,
                r.fused_improvement_pct(),
                r.reg_improvement_pct(),
                r.decoded_memory.total() as f64 / 1024.0,
            ));
        }
        for r in &self.rows {
            let pairs: Vec<String> = r
                .hot_pairs
                .iter()
                .map(|(a, b, n)| format!("{a} {b} ({n})"))
                .collect();
            out.push_str(&format!("hot pairs {:<10}: {}\n", r.name, pairs.join(", ")));
        }
        for r in &self.rows {
            let triples: Vec<String> = r
                .hot_triples
                .iter()
                .map(|(a, b, c, n)| format!("{a} {b} {c} ({n})"))
                .collect();
            out.push_str(&format!(
                "hot triples {:<10}: {}\n",
                r.name,
                triples.join(", ")
            ));
        }
        for r in &self.rows {
            out.push_str(&format!(
                "fusion {:<10}: {} candidates, {} applied, {} dispatches eliminated, selected [{}]\n",
                r.name,
                r.fusion.candidates,
                r.fusion.applied,
                r.fusion.dispatches_eliminated,
                r.fusion.selected.join(", ")
            ));
        }
        out.push_str(&format!(
            "geomean speedup {:.3}x ({:.1}% ns/instruction); fused over decoded {:.3}x, faster on {}/{} workloads\n",
            self.geomean_speedup(),
            self.geomean_improvement_pct(),
            self.geomean_fused_speedup(),
            self.fused_wins(),
            self.rows.len(),
        ));
        out
    }
}

/// Bare mnemonic for a decoded opcode, families collapsed to their
/// generic name (all six `if_icmp` comparisons count as one pair key —
/// the dispatch cost is per family, not per comparison).
fn mnemonic(o: u8) -> &'static str {
    match o {
        op::ENTER_BLOCK => "enter_block",
        op::ICONST => "iconst",
        op::FCONST => "fconst",
        op::CONST_NULL => "const_null",
        op::DUP => "dup",
        op::DUP2 => "dup2",
        op::POP => "pop",
        op::SWAP => "swap",
        op::LOAD => "load",
        op::STORE => "store",
        op::IINC => "iinc",
        op::IADD => "iadd",
        op::ISUB => "isub",
        op::IMUL => "imul",
        op::IDIV => "idiv",
        op::IREM => "irem",
        op::INEG => "ineg",
        op::ISHL => "ishl",
        op::ISHR => "ishr",
        op::IUSHR => "iushr",
        op::IAND => "iand",
        op::IOR => "ior",
        op::IXOR => "ixor",
        op::FADD => "fadd",
        op::FSUB => "fsub",
        op::FMUL => "fmul",
        op::FDIV => "fdiv",
        op::FNEG => "fneg",
        op::I2F => "i2f",
        op::F2I => "f2i",
        op::IF_ICMP_EQ..=op::IF_ICMP_GE => "if_icmp",
        op::IF_I_EQ..=op::IF_I_GE => "if",
        op::IF_FCMP_EQ..=op::IF_FCMP_GE => "if_fcmp",
        op::IF_NULL => "if_null",
        op::IF_NON_NULL => "if_nonnull",
        op::GOTO => "goto",
        op::TABLE_SWITCH => "tableswitch",
        op::INVOKE_STATIC => "invokestatic",
        op::INVOKE_VIRTUAL => "invokevirtual",
        op::RETURN => "return",
        op::RETURN_VOID => "return_void",
        op::NEW => "new",
        op::GET_FIELD => "getfield",
        op::PUT_FIELD => "putfield",
        op::NEW_ARRAY => "newarray",
        op::ALOAD => "aload",
        op::ASTORE => "astore",
        op::ARRAY_LEN => "arraylen",
        op::NOP => "nop",
        op::SQRT..=op::CHECKSUM => "intrinsic",
        _ => "?",
    }
}

/// The hottest dynamic opcode pairs and triples of a workload,
/// reconstructed exactly from its basic-block dispatch stream: blocks
/// are straight-line, so the dynamic instruction stream is the
/// concatenation of the dispatched blocks' decoded bodies (markers
/// skipped), and adjacency counts fall out of one pass with no
/// per-instruction instrumentation in the timed engines.
#[allow(clippy::type_complexity)]
fn hot_opcode_adjacencies(
    w: &Workload,
    top_pairs: usize,
    top_triples: usize,
) -> (
    Vec<(&'static str, &'static str, u64)>,
    Vec<(&'static str, &'static str, &'static str, u64)>,
) {
    let mut stream: Vec<BlockId> = Vec::new();
    let mut vm = Vm::new(&w.program);
    vm.run(&w.args, &mut |b| stream.push(b)).expect("runs");

    // Decoded spans of every block: marker index + 1 .. next marker.
    let decoded = DecodedProgram::decode(&w.program);
    let mut spans: HashMap<(u32, u32), (usize, usize)> = HashMap::new();
    for func in w.program.functions() {
        let df = decoded.func(func.id());
        let mut marks: Vec<(u32, usize)> = df
            .code
            .iter()
            .enumerate()
            .filter(|(_, d)| d.op == op::ENTER_BLOCK)
            .map(|(i, d)| (d.b, i))
            .collect();
        marks.sort_by_key(|&(_, i)| i);
        for (k, &(block, start)) in marks.iter().enumerate() {
            let end = marks.get(k + 1).map_or(df.code.len(), |&(_, i)| i);
            spans.insert((func.id().0, block), (start + 1, end));
        }
    }

    let mut pair_counts: HashMap<(u8, u8), u64> = HashMap::new();
    let mut triple_counts: HashMap<(u8, u8, u8), u64> = HashMap::new();
    let mut prev: Option<u8> = None;
    let mut prev2: Option<u8> = None;
    for b in stream {
        let &(start, end) = spans.get(&(b.func.0, b.block)).expect("dispatched block");
        for d in &decoded.func(b.func).code[start..end] {
            if let Some(p) = prev {
                *pair_counts.entry((p, d.op)).or_insert(0) += 1;
                if let Some(pp) = prev2 {
                    *triple_counts.entry((pp, p, d.op)).or_insert(0) += 1;
                }
            }
            prev2 = prev;
            prev = Some(d.op);
        }
    }
    let mut pairs: Vec<((u8, u8), u64)> = pair_counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let pairs = pairs
        .into_iter()
        .take(top_pairs)
        .map(|((a, b), n)| (mnemonic(a), mnemonic(b), n))
        .collect();
    let mut triples: Vec<((u8, u8, u8), u64)> = triple_counts.into_iter().collect();
    triples.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let triples = triples
        .into_iter()
        .take(top_triples)
        .map(|((a, b, c), n)| (mnemonic(a), mnemonic(b), mnemonic(c), n))
        .collect();
    (pairs, triples)
}

/// Minimum wall-clock seconds over `repeats` timed calls of `pass`, with
/// one untimed warm-up (page-in, branch predictors, allocator).
fn min_secs(repeats: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn measure_workload(w: &Workload, repeats: usize) -> InterpRow {
    // Output capture off: timing must not include sink pushes.
    let config = VmConfig {
        capture_output: false,
        ..VmConfig::default()
    };

    let mut reference = ReferenceVm::with_config(&w.program, config);
    let ref_secs = min_secs(repeats, || {
        let r = reference.run(&w.args, &mut NullObserver).expect("runs");
        std::hint::black_box(r);
    });

    let mut decoded = Vm::with_config(&w.program, config);
    let dec_secs = min_secs(repeats, || {
        let r = decoded.run(&w.args, &mut NullObserver).expect("runs");
        std::hint::black_box(r);
    });

    // Fused decoded leg: an untimed profiling run collects block visits,
    // the default thresholds select this workload's patterns, and the
    // timed passes execute the quickened stream.
    let mut fused = Vm::with_config(&w.program, config);
    let mut visits = BlockCounts::for_program(&w.program);
    fused.run(&w.args, &mut visits).expect("runs");
    let fusion_report = fused.fuse_with_profile(visits, &FusionConfig::default());
    let fused_secs = min_secs(repeats, || {
        let r = fused.run(&w.args, &mut NullObserver).expect("runs");
        std::hint::black_box(r);
    });

    // Warm trace-executing engines. The untimed warm-up run inside
    // `min_secs` compiles the hot traces, so the timed passes run them
    // from decoded `DOp` streams (engine-dop) and three-address register
    // code (lowered-reg) respectively — the two legs differ only in
    // `reg_ir`, which is what makes their ratio a fair lowering number.
    let mut jit = TraceJitConfig::paper_default();
    jit.vm.capture_output = false;
    let mut dop_engine = TracingVm::new(
        &w.program,
        EngineConfig {
            jit,
            optimize: true,
            superinstructions: true,
            reg_ir: false,
            dop_fusion: true,
            health: true,
        },
    );
    let dop_secs = min_secs(repeats, || {
        let r = dop_engine.run(&w.args).expect("runs");
        std::hint::black_box(r.checksum);
    });

    let mut reg_engine = TracingVm::new(
        &w.program,
        EngineConfig {
            jit,
            optimize: true,
            superinstructions: true,
            reg_ir: true,
            dop_fusion: true,
            health: true,
        },
    );
    let reg_secs = min_secs(repeats, || {
        let r = reg_engine.run(&w.args).expect("runs");
        std::hint::black_box(r.checksum);
    });

    // Both engines must have done the identical semantic work — this is
    // the same equivalence the differential suite pins, re-checked on
    // the timed configuration.
    let rs = reference.stats();
    let ds = decoded.stats();
    assert_eq!(rs, ds, "{}: stats diverged between engines", w.name);
    assert_eq!(
        reference.checksum(),
        decoded.checksum(),
        "{}: checksum diverged between engines",
        w.name
    );
    assert_eq!(
        decoded.checksum(),
        w.expected_checksum,
        "{}: checksum does not match the workload reference",
        w.name
    );

    // The fused stream must have done the identical semantic work too —
    // fusion is a dispatch-cost optimisation, not a semantic one.
    assert_eq!(
        fused.stats(),
        ds,
        "{}: fused stats diverged from decoded",
        w.name
    );
    assert_eq!(
        fused.checksum(),
        w.expected_checksum,
        "{}: fused checksum diverged",
        w.name
    );

    assert_eq!(
        dop_engine.run(&w.args).expect("runs").checksum,
        w.expected_checksum,
        "{}: decoded-trace engine diverged",
        w.name
    );
    assert_eq!(
        reg_engine.run(&w.args).expect("runs").checksum,
        w.expected_checksum,
        "{}: register-trace engine diverged",
        w.name
    );

    let (hot_pairs, hot_triples) = hot_opcode_adjacencies(w, TOP_PAIRS, TOP_TRIPLES);
    let instructions = ds.instructions.max(1);
    InterpRow {
        name: w.name.to_owned(),
        instructions: ds.instructions,
        dispatches: ds.block_dispatches,
        reference_ns_per_instr: ref_secs * 1e9 / instructions as f64,
        decoded_ns_per_instr: dec_secs * 1e9 / instructions as f64,
        fused_ns_per_instr: fused_secs * 1e9 / instructions as f64,
        engine_dop_ns_per_instr: dop_secs * 1e9 / instructions as f64,
        lowered_reg_ns_per_instr: reg_secs * 1e9 / instructions as f64,
        hot_pairs,
        hot_triples,
        fusion: FusionStats {
            candidates: fusion_report.candidates(),
            applied: fusion_report.fused(),
            dispatches_eliminated: fusion_report.dispatches_eliminated(),
            selected: fusion_report.selected_union(),
        },
        decoded_memory: decoded.decoded().memory_estimate(),
        arena_bytes: decoded.arena_memory(),
    }
}

/// Measures registry workloads at `scale`, optionally restricted to a
/// single workload name; each reported number is the minimum over
/// `repeats` timed full runs.
pub fn run(scale: Scale, repeats: usize, only: Option<&str>) -> InterpReport {
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        rows.push(measure_workload(&w, repeats));
    }
    InterpReport {
        scale,
        repeats,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_derived_quantities_are_consistent() {
        let r = InterpRow {
            name: "w".into(),
            instructions: 1000,
            dispatches: 100,
            reference_ns_per_instr: 10.0,
            decoded_ns_per_instr: 5.0,
            fused_ns_per_instr: 4.0,
            engine_dop_ns_per_instr: 5.0,
            lowered_reg_ns_per_instr: 2.5,
            hot_pairs: Vec::new(),
            hot_triples: Vec::new(),
            fusion: FusionStats::default(),
            decoded_memory: DecodedMemory::default(),
            arena_bytes: 0,
        };
        assert!((r.improvement_pct() - 50.0).abs() < 1e-9);
        assert!((r.reference_ns_per_dispatch() - 100.0).abs() < 1e-9);
        assert!((r.decoded_ns_per_dispatch() - 50.0).abs() < 1e-9);
        assert!((r.fused_ns_per_dispatch() - 40.0).abs() < 1e-9);
        assert!((r.fused_improvement_pct() - 20.0).abs() < 1e-9);
        assert!((r.engine_dop_ns_per_dispatch() - 50.0).abs() < 1e-9);
        assert!((r.lowered_reg_ns_per_dispatch() - 25.0).abs() < 1e-9);
        // reg improvement is engine-vs-engine: 2.5 vs 5.0 → 50%.
        assert!((r.reg_improvement_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_uniform_speedup_is_that_speedup() {
        let row = |ref_ns: f64, dec_ns: f64| InterpRow {
            name: "w".into(),
            instructions: 1,
            dispatches: 1,
            reference_ns_per_instr: ref_ns,
            decoded_ns_per_instr: dec_ns,
            fused_ns_per_instr: dec_ns / 2.0,
            engine_dop_ns_per_instr: dec_ns,
            lowered_reg_ns_per_instr: dec_ns,
            hot_pairs: Vec::new(),
            hot_triples: Vec::new(),
            fusion: FusionStats::default(),
            decoded_memory: DecodedMemory::default(),
            arena_bytes: 0,
        };
        let report = InterpReport {
            scale: Scale::Test,
            repeats: 1,
            rows: vec![row(10.0, 5.0), row(4.0, 2.0)],
        };
        assert!((report.geomean_speedup() - 2.0).abs() < 1e-9);
        assert!((report.geomean_improvement_pct() - 50.0).abs() < 1e-9);
        assert!((report.geomean_fused_speedup() - 2.0).abs() < 1e-9);
        assert_eq!(report.fused_wins(), 2);
    }

    #[test]
    fn report_runs_and_serialises_at_test_scale() {
        let report = run(Scale::Test, 1, None);
        assert_eq!(report.rows.len(), registry::all(Scale::Test).len());
        assert!(report.rows.iter().all(|r| r.instructions > 0));
        let json = report.to_json();
        assert!(json.contains("\"geomean_speedup\""));
        assert!(json.contains("\"ns_per_instruction\""));
        assert!(json.contains("\"lowered-reg\""), "reg leg must be in JSON");
        assert!(json.contains("\"fused\""), "fused leg must be in JSON");
        assert!(
            json.contains("\"engine-dop\""),
            "engine-dop leg must be in JSON"
        );
        assert!(json.contains("\"fusion\""), "fusion stats must be in JSON");
        assert!(json.contains("\"dispatches_eliminated\""));
        assert!(json.contains("\"hot_opcode_pairs\""));
        assert!(json.contains("\"hot_opcode_triples\""));
        assert!(
            report.rows.iter().all(|r| !r.hot_pairs.is_empty()),
            "every workload has hot pairs"
        );
        assert!(
            report.rows.iter().all(|r| !r.hot_triples.is_empty()),
            "every workload has hot triples"
        );
        let table = report.render();
        for r in &report.rows {
            assert!(json.contains(&r.name));
            assert!(table.contains(&r.name));
        }
    }

    #[test]
    fn workload_filter_restricts_rows() {
        let report = run(Scale::Test, 1, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].name, "compress");
    }
}

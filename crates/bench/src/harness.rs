//! Dependency-free timing harness.
//!
//! The workspace builds fully offline, so the benches cannot depend on
//! an external harness crate. This module provides the tiny subset of
//! the familiar `Criterion` API the benches actually use — groups,
//! `bench_function`, `Bencher::iter` — backed by plain
//! [`std::time::Instant`]. Every `[[bench]]` target sets
//! `harness = false` and drives it through the [`criterion_group!`] /
//! [`criterion_main!`] macros re-exported from this crate, keeping the
//! bench sources byte-for-byte familiar.
//!
//! Methodology: each `iter` closure is run once as warm-up, then
//! `sample_size` timed runs; the reported number is the **minimum**
//! (the standard estimator for deterministic workloads — all noise is
//! positive) alongside the mean. `TRACE_BENCH_SAMPLES` overrides every
//! group's sample size, which CI uses to smoke the benches cheaply.

use std::time::{Duration, Instant};

/// Top-level harness handle, playing Criterion's role.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: env_samples().unwrap_or(10),
        }
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("TRACE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.max(1))
}

/// A named group of measurements sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed runs each measurement takes (min 1).
    /// `TRACE_BENCH_SAMPLES` in the environment wins over this.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples().unwrap_or(n.max(1));
        self
    }

    /// Accepted for source compatibility; warm-up is always exactly one
    /// untimed run of the closure.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; the measurement budget is
    /// `sample_size` runs, not a wall-clock target.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one closure and prints a `min / mean` line for it.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            min: Duration::MAX,
            total: Duration::ZERO,
            samples: 0,
        };
        f(&mut b);
        let (min, mean) = b.summary();
        println!(
            "{}/{:<44} min {:>10}   mean {:>10}   ({} samples)",
            self.name,
            id.as_ref(),
            fmt_duration(min),
            fmt_duration(mean),
            b.samples,
        );
        self
    }

    /// Ends the group (a blank separator line, for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Passed to each measurement closure; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    min: Duration,
    total: Duration,
    samples: u32,
}

impl Bencher {
    /// Runs `f` once untimed, then `sample_size` timed runs, folding the
    /// result through [`std::hint::black_box`] so it is not optimised
    /// away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            self.min = self.min.min(elapsed);
            self.total += elapsed;
            self.samples += 1;
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples == 0 {
            return (Duration::ZERO, Duration::ZERO);
        }
        (self.min, self.total / self.samples)
    }
}

/// Renders a duration with an adaptive unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a bench entry point running each listed function with a
/// fresh [`Criterion`]. Mirrors the external macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($group:ident) => {
        fn main() {
            $group();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_every_sample_and_a_min() {
        let mut b = Bencher {
            sample_size: 4,
            min: Duration::MAX,
            total: Duration::ZERO,
            samples: 0,
        };
        let mut runs = 0u32;
        b.iter(|| {
            runs += 1;
            std::hint::black_box(runs)
        });
        // 1 warm-up + 4 timed.
        assert_eq!(runs, 5);
        assert_eq!(b.samples, 4);
        let (min, mean) = b.summary();
        assert!(min <= mean);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(900)), "900 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

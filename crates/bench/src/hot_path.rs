//! Hot-path dispatch microbenchmark (before/after the overhaul).
//!
//! Measures nanoseconds per block dispatch for the two per-dispatch
//! code paths the overhaul rewrote, on every registry workload:
//!
//! * **profiled dispatch** — the BCG profiler observing every block:
//!   pre-overhaul [`ReferenceBcg`] (SipHash `HashMap` index, heap
//!   successor `Vec`s) vs the packed-key / open-addressed / inline-
//!   successor [`BranchCorrelationGraph`].
//! * **trace-mode dispatch** — profiler + trace monitor against a
//!   warmed cache: pre-overhaul (`ReferenceBcg` + a hash probe of the
//!   cache at every block boundary) vs the overhauled path (`observe`
//!   returning the context node, whose inline trace-link slot answers
//!   the entry check without hashing).
//! * **trace execution** — full warm [`TracingVm`] runs: decoded-DOp
//!   trace execution (`reg_ir` off) vs the register-lowered form
//!   (`reg_ir` on), the end-to-end payoff of folding stack traffic into
//!   three-address code.
//!
//! Methodology: the dynamic block stream of each workload is captured
//! once by running the interpreter, then replayed straight into the
//! profiler/monitor so timing covers *only* the dispatch hot path —
//! no interpretation mixed in. Both sides replay the identical stream;
//! each number is the minimum over `repeats` timed replays (all timing
//! noise is positive). The trace constructor is excluded from the timed
//! region on both sides: construction is orders of magnitude rarer
//! than dispatch (§5.4 of the paper), and the warmed cache is frozen so
//! both paths answer the same entry checks.

use std::time::Instant;

use jvm_bytecode::{BlockId, Program};
use jvm_vm::Vm;
use trace_bcg::{BranchCorrelationGraph, ReferenceBcg, Signal};
use trace_cache::{TraceCache, TraceConstructor, TraceRuntime};
use trace_exec::{EngineConfig, RegStats, TracingVm};
use trace_jit::TraceJitConfig;
use trace_workloads::registry::{self, Scale, Workload};

/// Before/after ns-per-dispatch for one code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathTiming {
    /// Pre-overhaul implementation, ns per dispatch.
    pub baseline_ns: f64,
    /// Overhauled implementation, ns per dispatch.
    pub new_ns: f64,
}

impl PathTiming {
    /// Percentage reduction of the new path relative to the baseline
    /// (positive = faster).
    pub fn improvement_pct(&self) -> f64 {
        if self.baseline_ns == 0.0 {
            return 0.0;
        }
        (1.0 - self.new_ns / self.baseline_ns) * 100.0
    }
}

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct HotPathRow {
    /// Workload name (registry name).
    pub name: &'static str,
    /// Captured dynamic block dispatches (stream length).
    pub dispatches: u64,
    /// Profiler-only dispatch.
    pub profiled: PathTiming,
    /// Profiler + trace monitor dispatch against a warmed cache.
    pub trace_mode: PathTiming,
    /// Warm trace-*executing* engine, full runs: decoded-DOp traces
    /// (baseline) vs register-lowered traces (new), normalised to ns per
    /// dynamic block dispatch of the workload's stream.
    pub exec: PathTiming,
    /// Lowering-shape counters from the register engine (cumulative
    /// over its compiled traces).
    pub reg: RegStats,
}

/// Full report, one row per workload.
#[derive(Debug, Clone)]
pub struct HotPathReport {
    /// Workload scale measured.
    pub scale: Scale,
    /// Timed replays per number (min is reported).
    pub repeats: usize,
    /// Per-workload rows.
    pub rows: Vec<HotPathRow>,
}

impl HotPathReport {
    /// Workloads whose profiled dispatch improved by at least `pct`.
    pub fn profiled_improved_at_least(&self, pct: f64) -> usize {
        self.rows
            .iter()
            .filter(|r| r.profiled.improvement_pct() >= pct)
            .count()
    }

    /// Workloads whose trace-mode dispatch regressed by more than the
    /// noise allowance `tolerance_pct`.
    pub fn trace_mode_regressions(&self, tolerance_pct: f64) -> usize {
        self.rows
            .iter()
            .filter(|r| r.trace_mode.improvement_pct() < -tolerance_pct)
            .count()
    }

    /// Serialises the report as JSON (hand-rolled: the workspace has no
    /// serde and the shape is fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"dispatches\": {},\n",
                    "     \"profiled_ns_per_dispatch\": ",
                    "{{\"baseline\": {:.3}, \"new\": {:.3}, \"improvement_pct\": {:.2}}},\n",
                    "     \"trace_ns_per_dispatch\": ",
                    "{{\"baseline\": {:.3}, \"new\": {:.3}, \"improvement_pct\": {:.2}}},\n",
                    "     \"exec_ns_per_dispatch\": ",
                    "{{\"decoded-dop\": {:.3}, \"lowered-reg\": {:.3}, \"improvement_pct\": {:.2}}},\n",
                    "     \"reg_lowering\": ",
                    "{{\"before\": {}, \"after\": {}, \"regs\": {}, ",
                    "\"eliminated\": {}, \"guards_fused\": {}}}}}{}\n",
                ),
                r.name,
                r.dispatches,
                r.profiled.baseline_ns,
                r.profiled.new_ns,
                r.profiled.improvement_pct(),
                r.trace_mode.baseline_ns,
                r.trace_mode.new_ns,
                r.trace_mode.improvement_pct(),
                r.exec.baseline_ns,
                r.exec.new_ns,
                r.exec.improvement_pct(),
                r.reg.before,
                r.reg.after,
                r.reg.regs,
                r.reg.eliminated,
                r.reg.guards_fused,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table for terminals and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Hot-path dispatch, ns/dispatch (scale {:?}, min of {} runs)\n",
            self.scale, self.repeats
        ));
        out.push_str(&format!(
            "{:<10} {:>12} {:>10} {:>8} {:>8} {:>10} {:>8} {:>8} {:>9} {:>9} {:>8}\n",
            "workload",
            "dispatches",
            "prof-ref",
            "prof",
            "gain%",
            "trace-ref",
            "trace",
            "gain%",
            "exec-dop",
            "exec-reg",
            "gain%"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>12} {:>10.2} {:>8.2} {:>8.1} {:>10.2} {:>8.2} {:>8.1} {:>9.2} {:>9.2} {:>8.1}\n",
                r.name,
                r.dispatches,
                r.profiled.baseline_ns,
                r.profiled.new_ns,
                r.profiled.improvement_pct(),
                r.trace_mode.baseline_ns,
                r.trace_mode.new_ns,
                r.trace_mode.improvement_pct(),
                r.exec.baseline_ns,
                r.exec.new_ns,
                r.exec.improvement_pct(),
            ));
        }
        out
    }
}

/// Captures the dynamic basic-block stream of one workload by running
/// the interpreter once with a recording observer.
fn capture_stream(w: &Workload) -> Vec<BlockId> {
    let mut stream = Vec::new();
    let mut vm = Vm::new(&w.program);
    vm.run(&w.args, &mut |block| {
        stream.push(block);
    })
    .expect("workload runs");
    stream
}

/// Minimum wall-clock nanoseconds per dispatch over `repeats` timed
/// calls of `replay` (which must process the whole stream).
fn min_ns_per_dispatch(dispatches: u64, repeats: usize, mut replay: impl FnMut()) -> f64 {
    // One untimed warm-up pass (page-in, branch predictors, allocator).
    replay();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        replay();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / dispatches.max(1) as f64
}

/// Profiler-only replay timings: fresh graph per pass, whole stream
/// observed. Includes node/table growth — that is part of the path.
fn profiled_timing(stream: &[BlockId], config: &TraceJitConfig, repeats: usize) -> PathTiming {
    let dispatches = stream.len() as u64;
    let baseline_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let mut bcg = ReferenceBcg::new(config.bcg_config());
        for &b in stream {
            bcg.observe(b);
        }
        std::hint::black_box(bcg.len());
    });
    let new_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let mut bcg = BranchCorrelationGraph::new(config.bcg_config());
        for &b in stream {
            bcg.observe(b);
        }
        std::hint::black_box(bcg.len());
    });
    PathTiming {
        baseline_ns,
        new_ns,
    }
}

/// Builds the warmed trace cache + BCG by running the full pipeline
/// (profiler, monitor, constructor) over the stream once.
fn build_warm_state(
    stream: &[BlockId],
    program: &Program,
    config: &TraceJitConfig,
) -> (BranchCorrelationGraph, TraceCache) {
    let mut bcg = BranchCorrelationGraph::new(config.bcg_config());
    let mut constructor = TraceConstructor::new(config.constructor_config());
    let mut cache = TraceCache::new();
    let mut runtime = TraceRuntime::new();
    let mut buf: Vec<Signal> = Vec::new();
    bcg.begin_stream();
    for &b in stream {
        let node = bcg.observe(b);
        runtime.on_block_at_node(b, node, &mut bcg, &cache, program);
        if bcg.has_signals() {
            bcg.drain_signals_into(&mut buf);
            constructor.handle_batch(&buf, &mut bcg, &mut cache);
        }
    }
    runtime.finish_stream();
    (bcg, cache)
}

/// Full-engine run timings: decoded-DOp trace execution (`reg_ir` off)
/// vs register-lowered trace execution (`reg_ir` on), both with a warm
/// private cache (one untimed run compiles the traces). Unlike the
/// replay timings these include out-of-trace interpretation — they are
/// the end-to-end cost of the run, normalised by the same dynamic
/// dispatch count so the two legs are directly comparable.
fn engine_timing(
    w: &Workload,
    dispatches: u64,
    config: &TraceJitConfig,
    repeats: usize,
) -> (PathTiming, RegStats) {
    let mk = |reg_ir: bool| {
        let mut jit = *config;
        jit.vm.capture_output = false;
        EngineConfig {
            jit,
            optimize: true,
            superinstructions: true,
            reg_ir,
            dop_fusion: true,
            health: true,
        }
    };
    let mut dop = TracingVm::new(&w.program, mk(false));
    let warm = dop.run(&w.args).expect("workload runs");
    assert_eq!(
        warm.checksum, w.expected_checksum,
        "{}: decoded leg",
        w.name
    );
    let baseline_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let r = dop.run(&w.args).expect("workload runs");
        std::hint::black_box(r.checksum);
    });

    let mut reg = TracingVm::new(&w.program, mk(true));
    let warm = reg.run(&w.args).expect("workload runs");
    assert_eq!(warm.checksum, w.expected_checksum, "{}: reg leg", w.name);
    let new_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let r = reg.run(&w.args).expect("workload runs");
        std::hint::black_box(r.checksum);
    });
    (
        PathTiming {
            baseline_ns,
            new_ns,
        },
        reg.reg_stats(),
    )
}

/// Trace-mode replay timings against the (frozen) warmed cache.
fn trace_mode_timing(
    stream: &[BlockId],
    program: &Program,
    config: &TraceJitConfig,
    repeats: usize,
) -> PathTiming {
    let dispatches = stream.len() as u64;
    let (mut bcg, cache) = build_warm_state(stream, program, config);

    // Pre-overhaul side: reference profiler + a `HashMap<Branch, _>`
    // probe (SipHash) at every block boundary, allocating signal drain —
    // exactly the old per-dispatch work.
    let links: std::collections::HashMap<trace_bcg::Branch, trace_cache::TraceId> = cache
        .iter_links()
        .map(|(branch, _)| (branch, cache.lookup_entry(branch).expect("linked")))
        .collect();
    let mut ref_bcg = ReferenceBcg::new(config.bcg_config());
    ref_bcg.begin_stream();
    for &b in stream {
        ref_bcg.observe(b); // warm the reference profiler state
    }
    let baseline_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let mut rt = TraceRuntime::new();
        ref_bcg.begin_stream();
        rt.begin_stream();
        for &b in stream {
            ref_bcg.observe(b);
            rt.on_block_with(b, &cache, program, |entry| links.get(&entry).copied());
            if ref_bcg.has_signals() {
                std::hint::black_box(ref_bcg.take_signals());
            }
        }
        rt.finish_stream();
        std::hint::black_box(rt.stats().entered);
    });

    // Overhauled side: observe yields the context node; the monitor
    // answers the entry check from the node's inline trace-link slot.
    let mut buf: Vec<Signal> = Vec::new();
    let new_ns = min_ns_per_dispatch(dispatches, repeats, || {
        let mut rt = TraceRuntime::new();
        bcg.begin_stream();
        rt.begin_stream();
        for &b in stream {
            let node = bcg.observe(b);
            rt.on_block_at_node(b, node, &mut bcg, &cache, program);
            if bcg.has_signals() {
                bcg.drain_signals_into(&mut buf);
                std::hint::black_box(buf.len());
            }
        }
        rt.finish_stream();
        std::hint::black_box(rt.stats().entered);
    });

    PathTiming {
        baseline_ns,
        new_ns,
    }
}

/// Measures every registry workload at `scale`; each reported number is
/// the minimum over `repeats` timed replays.
pub fn run(scale: Scale, repeats: usize) -> HotPathReport {
    run_filtered(scale, repeats, None)
}

/// Like [`run`], optionally restricted to a single workload name.
pub fn run_filtered(scale: Scale, repeats: usize, only: Option<&str>) -> HotPathReport {
    let config = TraceJitConfig::paper_default();
    let mut rows = Vec::new();
    for w in registry::all(scale) {
        if let Some(name) = only {
            if w.name != name {
                continue;
            }
        }
        let stream = capture_stream(&w);
        let profiled = profiled_timing(&stream, &config, repeats);
        let trace_mode = trace_mode_timing(&stream, &w.program, &config, repeats);
        let (exec, reg) = engine_timing(&w, stream.len() as u64, &config, repeats);
        rows.push(HotPathRow {
            name: w.name,
            dispatches: stream.len() as u64,
            profiled,
            trace_mode,
            exec,
            reg,
        });
    }
    HotPathReport {
        scale,
        repeats,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_percentage_is_signed() {
        let faster = PathTiming {
            baseline_ns: 10.0,
            new_ns: 5.0,
        };
        assert!((faster.improvement_pct() - 50.0).abs() < 1e-9);
        let slower = PathTiming {
            baseline_ns: 10.0,
            new_ns: 12.0,
        };
        assert!((slower.improvement_pct() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn workload_filter_restricts_rows() {
        let report = run_filtered(Scale::Test, 1, Some("compress"));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].name, "compress");
    }

    #[test]
    fn report_runs_and_serialises_at_test_scale() {
        let report = run(Scale::Test, 1);
        assert_eq!(report.rows.len(), registry::all(Scale::Test).len());
        assert!(report.rows.iter().all(|r| r.dispatches > 0));
        let json = report.to_json();
        assert!(json.contains("\"workloads\""));
        assert!(json.contains("\"profiled_ns_per_dispatch\""));
        assert!(json.contains("\"lowered-reg\""), "reg leg must be in JSON");
        assert!(json.contains("\"reg_lowering\""));
        // Every workload appears in both renderings.
        let table = report.render();
        for r in &report.rows {
            assert!(json.contains(r.name));
            assert!(table.contains(r.name));
        }
    }
}

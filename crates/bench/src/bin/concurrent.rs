//! Multi-VM throughput benchmark driver.
//!
//! Runs M worker VMs over every registry workload against private vs
//! shared trace caches (cold and pre-warmed), prints the scaling table,
//! and writes `BENCH_concurrent.json` into the current directory.
//!
//! ```text
//! concurrent [--scale test|small|paper] [--threads N] [--repeats N]
//!            [--workload NAME] [--smoke] [--faults SEED]
//!            [--load-snapshot] [--phase-shift] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: test scale, 2 threads, 1 repeat —
//! seconds, not minutes. Default is small scale, 8 threads, 3 repeats.
//! `TRACE_BENCH_SCALE` is honoured when `--scale` is absent, matching
//! the other benches.
//!
//! `--faults SEED` switches to the fault-injection mode: every workload
//! runs the supervised, payload-budgeted shared deployment under three
//! deterministic fault profiles (none / standard / constructor-killer)
//! and the report records eviction, quarantine, and restart counters
//! plus the throughput retained under faults and in permanently
//! degraded (interpreter-only) mode.
//!
//! `--load-snapshot` runs only the snapshot warm-boot leg (cold start vs
//! `TracingVm::load_snapshot` vs `TracingVm::aot_replay`, single VM) —
//! the default full run includes this leg alongside the thread ladder.
//!
//! `--phase-shift` runs only the self-healing A/B leg: each phase-shift
//! workload once with the trace-health ladder on (default) and once
//! with it off, reporting demotions, re-admissions, and the throughput
//! retained by self-healing. The default full run includes this leg.

use trace_bench::concurrent;
use trace_bench::parse_scale;
use trace_workloads::Scale;

fn main() {
    let mut scale: Option<Scale> = None;
    let mut threads: Option<usize> = None;
    let mut repeats: Option<usize> = None;
    let mut workload: Option<String> = None;
    let mut out = String::from("BENCH_concurrent.json");
    let mut smoke = false;
    let mut boot_only = false;
    let mut phase_shift_only = false;
    let mut faults: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Some(parse_scale(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use test|small|paper)");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let v = args.next().unwrap_or_default();
                threads = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--repeats" => {
                let v = args.next().unwrap_or_default();
                repeats = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--repeats needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--workload" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--workload needs a name");
                    std::process::exit(2);
                });
                if trace_workloads::registry::by_name(&v, Scale::Test).is_none() {
                    eprintln!("unknown workload '{v}'");
                    std::process::exit(2);
                }
                workload = Some(v);
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--smoke" => smoke = true,
            "--load-snapshot" => boot_only = true,
            "--phase-shift" => phase_shift_only = true,
            "--faults" => {
                let v = args.next().unwrap_or_default();
                let digits = v.trim_start_matches("0x").replace('_', "");
                let parsed = if v.starts_with("0x") {
                    u64::from_str_radix(&digits, 16).ok()
                } else {
                    digits.parse().ok()
                };
                faults = Some(parsed.unwrap_or_else(|| {
                    eprintln!("--faults needs a seed (decimal or 0x hex), got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "concurrent [--scale test|small|paper] [--threads N] [--repeats N] \
                     [--workload NAME] [--smoke] [--faults SEED] [--load-snapshot] \
                     [--phase-shift] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let env_scale = std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale);
    let (scale, threads, repeats) = if smoke {
        (
            scale.unwrap_or(Scale::Test),
            threads.unwrap_or(2),
            repeats.unwrap_or(1),
        )
    } else {
        (
            scale.or(env_scale).unwrap_or(Scale::Small),
            threads.unwrap_or(8),
            repeats.unwrap_or(3),
        )
    };

    if let Some(seed) = faults {
        // Injected constructor kills are routine here — the supervisor
        // absorbs them — so keep their backtraces out of the bench
        // output. Anything else (e.g. a checksum assert) still prints.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|m| m.contains("injected constructor kill"));
            if !injected {
                default_hook(info);
            }
        }));
        let report =
            concurrent::run_faults_filtered(scale, threads, repeats, seed, workload.as_deref());
        print!("{}", report.render());
        let degraded = report.rows.iter().filter(|r| r.degraded).count();
        println!(
            "constructor-killer ended permanently degraded on {}/{} workloads; \
             every run matched its expected checksum",
            degraded,
            report.rows.len(),
        );
        let json = report.to_json();
        match std::fs::write(&out, &json) {
            Ok(()) => println!("wrote {out}"),
            Err(e) => {
                eprintln!("failed to write {out}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let report = if boot_only {
        concurrent::run_boot_only(scale, repeats, workload.as_deref())
    } else if phase_shift_only {
        concurrent::run_phase_shift_only(scale, repeats, workload.as_deref())
    } else {
        concurrent::run_filtered(scale, threads, repeats, workload.as_deref())
    };
    print!("{}", report.render());
    if !boot_only && !phase_shift_only {
        let max_t = report.threads.iter().copied().max().unwrap_or(1);
        println!(
            "cross-VM dedup observed on {}/{} workloads at {} threads ({} host CPUs)",
            report.dedup_observed(max_t),
            report.rows.len(),
            max_t,
            report.host_cpus,
        );
    }

    let json = report.to_json();
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

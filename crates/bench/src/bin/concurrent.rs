//! Multi-VM throughput benchmark driver.
//!
//! Runs M worker VMs over every registry workload against private vs
//! shared trace caches (cold and pre-warmed), prints the scaling table,
//! and writes `BENCH_concurrent.json` into the current directory.
//!
//! ```text
//! concurrent [--scale test|small|paper] [--threads N] [--repeats N]
//!            [--workload NAME] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: test scale, 2 threads, 1 repeat —
//! seconds, not minutes. Default is small scale, 8 threads, 3 repeats.
//! `TRACE_BENCH_SCALE` is honoured when `--scale` is absent, matching
//! the other benches.

use trace_bench::concurrent;
use trace_bench::parse_scale;
use trace_workloads::Scale;

fn main() {
    let mut scale: Option<Scale> = None;
    let mut threads: Option<usize> = None;
    let mut repeats: Option<usize> = None;
    let mut workload: Option<String> = None;
    let mut out = String::from("BENCH_concurrent.json");
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Some(parse_scale(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use test|small|paper)");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let v = args.next().unwrap_or_default();
                threads = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--repeats" => {
                let v = args.next().unwrap_or_default();
                repeats = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--repeats needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--workload" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--workload needs a name");
                    std::process::exit(2);
                });
                if trace_workloads::registry::by_name(&v, Scale::Test).is_none() {
                    eprintln!("unknown workload '{v}'");
                    std::process::exit(2);
                }
                workload = Some(v);
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "concurrent [--scale test|small|paper] [--threads N] [--repeats N] \
                     [--workload NAME] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let env_scale = std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale);
    let (scale, threads, repeats) = if smoke {
        (
            scale.unwrap_or(Scale::Test),
            threads.unwrap_or(2),
            repeats.unwrap_or(1),
        )
    } else {
        (
            scale.or(env_scale).unwrap_or(Scale::Small),
            threads.unwrap_or(8),
            repeats.unwrap_or(3),
        )
    };

    let report = concurrent::run_filtered(scale, threads, repeats, workload.as_deref());
    print!("{}", report.render());
    let max_t = report.threads.iter().copied().max().unwrap_or(1);
    println!(
        "cross-VM dedup observed on {}/{} workloads at {} threads ({} host CPUs)",
        report.dedup_observed(max_t),
        report.rows.len(),
        max_t,
        report.host_cpus,
    );

    let json = report.to_json();
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

//! Interpreter speed driver: frozen reference vs pre-decoded engine.
//!
//! Times full workload runs of [`jvm_vm::ReferenceVm`] against the
//! pre-decoded threaded [`jvm_vm::Vm`], prints the comparison table
//! (ns/instruction, ns/dispatch, decoded footprint), and writes
//! `BENCH_interp.json` into the current directory.
//!
//! ```text
//! interp_speed [--scale test|small|paper] [--repeats N] [--workload NAME]
//!              [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: test scale, 2 repeats — seconds, not
//! minutes. Default is small scale, 5 repeats. `TRACE_BENCH_SCALE` is
//! honoured when `--scale` is absent, matching the other benches.

use trace_bench::interp_speed;
use trace_bench::parse_scale;
use trace_workloads::Scale;

fn main() {
    let mut scale: Option<Scale> = None;
    let mut repeats: Option<usize> = None;
    let mut workload: Option<String> = None;
    let mut out = String::from("BENCH_interp.json");
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Some(parse_scale(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use test|small|paper)");
                    std::process::exit(2);
                }));
            }
            "--repeats" => {
                let v = args.next().unwrap_or_default();
                repeats = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--repeats needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--workload" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--workload needs a name");
                    std::process::exit(2);
                });
                if trace_workloads::registry::by_name(&v, Scale::Test).is_none() {
                    eprintln!("unknown workload '{v}'");
                    std::process::exit(2);
                }
                workload = Some(v);
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "interp_speed [--scale test|small|paper] [--repeats N] \
                     [--workload NAME] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let env_scale = std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale);
    let (scale, repeats) = if smoke {
        (scale.unwrap_or(Scale::Test), repeats.unwrap_or(2))
    } else {
        (
            scale.or(env_scale).unwrap_or(Scale::Small),
            repeats.unwrap_or(5),
        )
    };

    let report = interp_speed::run(scale, repeats, workload.as_deref());
    print!("{}", report.render());

    let json = report.to_json();
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

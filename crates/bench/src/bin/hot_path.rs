//! Hot-path dispatch microbenchmark driver.
//!
//! Measures ns/dispatch of the pre-overhaul (reference) and overhauled
//! profiler + trace-monitor paths on every registry workload, prints
//! the comparison table, and writes `BENCH_hot_path.json` into the
//! current directory.
//!
//! ```text
//! hot_path [--scale test|small|paper] [--repeats N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: test scale, 2 repeats — seconds, not
//! minutes. Default is small scale, 5 repeats. `TRACE_BENCH_SCALE` is
//! honoured when `--scale` is absent, matching the other benches.

use trace_bench::hot_path;
use trace_bench::parse_scale;
use trace_workloads::Scale;

fn main() {
    let mut scale: Option<Scale> = None;
    let mut repeats: Option<usize> = None;
    let mut out = String::from("BENCH_hot_path.json");
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Some(parse_scale(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use test|small|paper)");
                    std::process::exit(2);
                }));
            }
            "--repeats" => {
                let v = args.next().unwrap_or_default();
                repeats = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--repeats needs an integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "hot_path [--scale test|small|paper] [--repeats N] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let env_scale = std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale);
    let (scale, repeats) = if smoke {
        (scale.unwrap_or(Scale::Test), repeats.unwrap_or(2))
    } else {
        (
            scale.or(env_scale).unwrap_or(Scale::Small),
            repeats.unwrap_or(5),
        )
    };

    let report = hot_path::run(scale, repeats);
    print!("{}", report.render());
    println!(
        "profiled >=20% faster on {}/{} workloads; trace-mode regressions (>2% slower): {}",
        report.profiled_improved_at_least(20.0),
        report.rows.len(),
        report.trace_mode_regressions(2.0),
    );

    let json = report.to_json();
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

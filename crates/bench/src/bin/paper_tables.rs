//! Regenerates the paper's Tables I–VII (and the Figures 1–2 dispatch
//! comparison) over the six workload analogues.
//!
//! ```text
//! paper_tables [--scale test|small|paper] [--table 1|2|3|4|5|6|7|fig|hotpath|all]
//!              [--format text|csv] [--workload NAME]
//! ```
//!
//! Defaults: `--scale small --table all`, all six workloads
//! (`--workload` restricts every regenerated table to one of them). Tables I–IV share one threshold
//! sweep (thresholds 100/99/98/97/95% at delay 64); Table V sweeps the
//! start-state delay (1/64/4096) at the 97% threshold; Tables VI–VII time
//! the profiler against the unmodified interpreter on this machine.

use std::process::ExitCode;

use trace_bench::{
    dispatch_rows_filtered, named_delay_sweeps_filtered, named_threshold_sweeps_filtered,
    overhead_rows_filtered, parse_scale,
};
use trace_jit::tables;
use trace_workloads::Scale;

fn usage() -> ExitCode {
    eprintln!(
        "usage: paper_tables [--scale test|small|paper] [--table 1..7|fig|hotpath|all] \
         [--format text|csv] [--workload NAME]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut table = "all".to_owned();
    let mut csv = false;
    let mut workload: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref().and_then(parse_scale) {
                Some(s) => scale = s,
                None => return usage(),
            },
            "--table" => match args.next() {
                Some(t) => table = t,
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => csv = false,
                Some("csv") => csv = true,
                _ => return usage(),
            },
            "--workload" => match args.next() {
                Some(w) if trace_workloads::registry::by_name(&w, Scale::Test).is_some() => {
                    workload = Some(w)
                }
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let emit = |t: &tables::TextTable| {
        if csv {
            println!("{}", t.render_csv());
        } else {
            println!("{}", t.render());
        }
    };

    let wants = |t: &str| table == "all" || table == t;
    let needs_threshold_sweep = ["1", "2", "3", "4"].iter().any(|t| wants(t));
    let needs_overhead = wants("6") || wants("7");

    if ![
        "all", "1", "2", "3", "4", "5", "6", "7", "fig", "hotpath", "summary",
    ]
    .contains(&table.as_str())
    {
        return usage();
    }

    eprintln!("# scale: {scale:?}");

    if wants("fig") {
        eprintln!("# running paper-default runs for the dispatch figure…");
        let rows = dispatch_rows_filtered(scale, workload.as_deref());
        emit(&tables::fig_dispatch_modes(&rows));
    }

    if needs_threshold_sweep {
        eprintln!("# running threshold sweeps (Tables I-IV)…");
        let sweeps = named_threshold_sweeps_filtered(scale, workload.as_deref());
        if wants("1") {
            emit(&tables::table1_trace_length(&sweeps));
        }
        if wants("2") {
            emit(&tables::table2_coverage(&sweeps));
        }
        if wants("3") {
            emit(&tables::table3_completion(&sweeps));
        }
        if wants("4") {
            emit(&tables::table4_signal_rate(&sweeps));
        }
    }

    if wants("5") {
        eprintln!("# running delay sweeps (Table V)…");
        let sweeps = named_delay_sweeps_filtered(scale, workload.as_deref());
        emit(&tables::table5_event_interval(&sweeps));
    }

    if needs_overhead {
        eprintln!("# timing profiler overhead (Tables VI-VII)…");
        let rows = overhead_rows_filtered(scale, 3, workload.as_deref());
        if wants("6") {
            emit(&tables::table6_profiler_overhead(&rows));
        }
        if wants("7") {
            emit(&tables::table7_trace_dispatch_overhead(&rows));
        }
    }

    if wants("hotpath") {
        eprintln!("# timing hot-path dispatch before/after (BENCH_hot_path.json)…");
        let report = trace_bench::hot_path::run_filtered(scale, 3, workload.as_deref());
        print!("{}", report.render());
        match std::fs::write("BENCH_hot_path.json", report.to_json()) {
            Ok(()) => eprintln!("# wrote BENCH_hot_path.json"),
            Err(e) => eprintln!("# could not write BENCH_hot_path.json: {e}"),
        }
    }

    if table == "summary" {
        eprintln!("# running paper-vs-measured summary…");
        let sweeps = named_threshold_sweeps_filtered(scale, workload.as_deref());
        let avg = |f: &dyn Fn(&trace_jit::RunReport) -> f64, row: usize| -> f64 {
            let vals: Vec<f64> = sweeps.iter().map(|(_, pts)| f(&pts[row].report)).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // Row 3 of the sweep grid is the 97% threshold.
        let overheads = overhead_rows_filtered(scale, 3, workload.as_deref());
        let oh_avg = overheads
            .iter()
            .map(|(_, m)| m.expected_trace_overhead_pct())
            .sum::<f64>()
            / overheads.len() as f64;
        let mut t = tables::TextTable::new(
            "Paper vs measured: headline aggregates at threshold 97%, delay 64",
            vec!["quantity".into(), "paper".into(), "measured".into()],
        );
        t.push_row(vec![
            "avg trace length (blocks)".into(),
            "7.5".into(),
            format!("{:.1}", avg(&|r| r.avg_trace_length(), 3)),
        ]);
        t.push_row(vec![
            "stream coverage, completed traces".into(),
            "87.1%".into(),
            format!("{:.1}%", 100.0 * avg(&|r| r.coverage_completed(), 3)),
        ]);
        t.push_row(vec![
            "stream coverage incl. partial".into(),
            "90.7%".into(),
            format!("{:.1}%", 100.0 * avg(&|r| r.coverage_incl_partial(), 3)),
        ]);
        t.push_row(vec![
            "trace completion rate (min over benchmarks)".into(),
            ">= 97.2%".into(),
            format!(
                "{:.1}%",
                100.0
                    * sweeps
                        .iter()
                        .map(|(_, pts)| pts[3].report.completion_rate())
                        .fold(f64::INFINITY, f64::min)
            ),
        ]);
        t.push_row(vec![
            "expected trace-dispatch overhead (avg)".into(),
            "4.5%".into(),
            format!("{oh_avg:.1}%"),
        ]);
        emit(&t);
    }

    ExitCode::SUCCESS
}

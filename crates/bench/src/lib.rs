//! # trace-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation (§5) over the six workload analogues:
//!
//! | artifact | regenerator |
//! |---|---|
//! | Figures 1–2 (dispatch models) | `benches/fig_dispatch_modes.rs`, `paper_tables --table fig` |
//! | Table I (trace length vs threshold) | `benches/tables_1_to_5.rs`, `paper_tables --table 1` |
//! | Table II (coverage vs threshold) | `paper_tables --table 2` |
//! | Table III (completion rate vs threshold) | `paper_tables --table 3` |
//! | Table IV (dispatches per signal) | `paper_tables --table 4` |
//! | Table V (dispatches per trace event vs delay) | `paper_tables --table 5` |
//! | Table VI (profiler overhead) | `benches/table6_profiler_overhead.rs`, `paper_tables --table 6` |
//! | Table VII (trace-dispatch overhead) | `benches/table7_trace_dispatch.rs`, `paper_tables --table 7` |
//!
//! Plus the ablations called out in `DESIGN.md`
//! (`benches/ablation_decay.rs`, `benches/ablation_inline_cache.rs`), the
//! Dynamo/rePLay comparison (`benches/baseline_comparison.rs`), and the
//! before/after hot-path dispatch microbenchmark
//! (`src/bin/hot_path.rs`, `paper_tables --table hotpath`).
//!
//! All benches run on the in-tree [`harness`] — the workspace builds
//! fully offline, with no external benchmarking dependency.

pub mod concurrent;
pub mod harness;
pub mod hot_path;
pub mod interp_speed;

use jvm_bytecode::{CmpOp, Program, ProgramBuilder};
use trace_jit::experiment::{
    delay_sweep, run_point, threshold_sweep, SweepPoint, PAPER_DELAYS, PAPER_THRESHOLDS,
};
use trace_jit::overhead::{measure_overhead, OverheadMeasurement};
use trace_jit::report::RunReport;
use trace_jit::TraceJitConfig;
use trace_workloads::{registry, Scale};

/// Parses a scale name (`test`, `small`, `paper`).
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Registry workloads at `scale`, optionally restricted to one name.
fn workloads(scale: Scale, only: Option<&str>) -> Vec<registry::Workload> {
    registry::all(scale)
        .into_iter()
        .filter(|w| only.is_none_or(|n| w.name == n))
        .collect()
}

/// Threshold sweeps (Tables I–IV) for all six workloads.
pub fn named_threshold_sweeps(scale: Scale) -> Vec<(String, Vec<SweepPoint>)> {
    named_threshold_sweeps_filtered(scale, None)
}

/// Like [`named_threshold_sweeps`], optionally restricted to one
/// workload name.
pub fn named_threshold_sweeps_filtered(
    scale: Scale,
    only: Option<&str>,
) -> Vec<(String, Vec<SweepPoint>)> {
    workloads(scale, only)
        .iter()
        .map(|w| {
            let pts = threshold_sweep(
                &w.program,
                &w.args,
                &PAPER_THRESHOLDS,
                64,
                TraceJitConfig::paper_default(),
            )
            .expect("workload runs");
            for p in &pts {
                assert_eq!(
                    p.report.checksum, w.expected_checksum,
                    "{} checksum mismatch at threshold {}",
                    w.name, p.threshold
                );
            }
            (w.name.to_owned(), pts)
        })
        .collect()
}

/// Delay sweeps (Table V) for all six workloads at the 97% threshold.
pub fn named_delay_sweeps(scale: Scale) -> Vec<(String, Vec<SweepPoint>)> {
    named_delay_sweeps_filtered(scale, None)
}

/// Like [`named_delay_sweeps`], optionally restricted to one workload
/// name.
pub fn named_delay_sweeps_filtered(
    scale: Scale,
    only: Option<&str>,
) -> Vec<(String, Vec<SweepPoint>)> {
    workloads(scale, only)
        .iter()
        .map(|w| {
            let pts = delay_sweep(
                &w.program,
                &w.args,
                &PAPER_DELAYS,
                0.97,
                TraceJitConfig::paper_default(),
            )
            .expect("workload runs");
            (w.name.to_owned(), pts)
        })
        .collect()
}

/// Overhead measurements (Tables VI–VII) for all six workloads.
pub fn overhead_rows(scale: Scale, repeats: usize) -> Vec<(String, OverheadMeasurement)> {
    overhead_rows_filtered(scale, repeats, None)
}

/// Like [`overhead_rows`], optionally restricted to one workload name.
pub fn overhead_rows_filtered(
    scale: Scale,
    repeats: usize,
    only: Option<&str>,
) -> Vec<(String, OverheadMeasurement)> {
    workloads(scale, only)
        .iter()
        .map(|w| {
            let m = measure_overhead(
                &w.program,
                &w.args,
                TraceJitConfig::paper_default(),
                repeats,
            )
            .expect("workload runs");
            (w.name.to_owned(), m)
        })
        .collect()
}

/// Single paper-default runs (Figures 1–2) for all six workloads.
pub fn dispatch_rows(scale: Scale) -> Vec<(String, RunReport)> {
    dispatch_rows_filtered(scale, None)
}

/// Like [`dispatch_rows`], optionally restricted to one workload name.
pub fn dispatch_rows_filtered(scale: Scale, only: Option<&str>) -> Vec<(String, RunReport)> {
    workloads(scale, only)
        .iter()
        .map(|w| {
            let r = run_point(&w.program, &w.args, TraceJitConfig::paper_default())
                .expect("workload runs");
            (w.name.to_owned(), r)
        })
        .collect()
}

/// A two-phase program for the cache-stability ablation: it alternates
/// between two loop bodies every `phase_len` outer iterations, so a
/// decaying profiler re-learns each phase while a cumulative one
/// stays polluted by the old phase.
pub fn phase_change_program(phases: i64, phase_len: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", 0, true);
    let b = pb.function_mut(f);
    let acc = b.alloc_local();
    let p = b.alloc_local();
    let i = b.alloc_local();
    b.iconst(0).store(acc).iconst(0).store(p);
    let p_head = b.bind_new_label();
    let p_exit = b.new_label();
    b.load(p).iconst(phases).if_icmp(CmpOp::Ge, p_exit);
    b.iconst(0).store(i);
    let i_head = b.bind_new_label();
    let i_exit = b.new_label();
    b.load(i).iconst(phase_len).if_icmp(CmpOp::Ge, i_exit);
    // Phase parity decides which body runs.
    let odd = b.new_label();
    let cont = b.new_label();
    b.load(p).iconst(1).iand().if_i(CmpOp::Ne, odd);
    // Even phase: acc = acc*3 + i.
    b.load(acc).iconst(3).imul().load(i).iadd().store(acc);
    b.goto(cont);
    // Odd phase: acc = (acc ^ i) + 7.
    b.bind(odd);
    b.load(acc).load(i).ixor().iconst(7).iadd().store(acc);
    b.bind(cont);
    b.iinc(i, 1).goto(i_head);
    b.bind(i_exit);
    b.iinc(p, 1).goto(p_head);
    b.bind(p_exit);
    b.load(acc).ret();
    pb.build(f).expect("phase program builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::{NullObserver, Vm};

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("test"), Some(Scale::Test));
        assert_eq!(parse_scale("paper"), Some(Scale::Paper));
        assert_eq!(parse_scale("huge"), None);
    }

    #[test]
    fn phase_program_runs() {
        let p = phase_change_program(4, 100);
        let mut vm = Vm::new(&p);
        let r = vm.run(&[], &mut NullObserver).unwrap();
        assert!(r.is_some());
    }

    #[test]
    fn sweeps_cover_all_workloads() {
        let sweeps = named_threshold_sweeps(Scale::Test);
        assert_eq!(sweeps.len(), 6);
        for (_, pts) in &sweeps {
            assert_eq!(pts.len(), PAPER_THRESHOLDS.len());
        }
    }
}

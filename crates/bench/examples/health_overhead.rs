//! Micro A/B of the trace-health ledger's bookkeeping cost on steady
//! workloads (no rot, so the delta is pure recording overhead: the
//! run-length-encoded outcome buffer plus the per-epoch ledger flush).
//!
//! ```text
//! cargo run --release -p trace-bench --example health_overhead
//! ```

use std::time::Instant;

use trace_exec::{EngineConfig, TracingVm};
use trace_workloads::registry;
use trace_workloads::Scale;

fn main() {
    println!("health-ledger bookkeeping overhead, small scale, best of 3");
    for name in ["compress", "scimark", "mpegaudio"] {
        let w = registry::by_name(name, Scale::Small).expect("registry workload");
        let mut walls = [0.0f64; 2];
        for (i, on) in [true, false].into_iter().enumerate() {
            let config = EngineConfig::paper_default().with_health(on);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mut vm = TracingVm::new(&w.program, config);
                let t = Instant::now();
                let r = vm.run(&w.args).expect("workload runs");
                let wall = t.elapsed().as_secs_f64();
                assert_eq!(r.checksum, w.expected_checksum, "{name} checksum");
                if wall < best {
                    best = wall;
                }
            }
            walls[i] = best;
            println!("{name:<10} health={on:<5} {best:.4}s");
        }
        println!(
            "{:<10} overhead: {:+.1}%",
            "",
            (walls[0] / walls[1] - 1.0) * 100.0
        );
    }
}

//! Table VII: expected profiling overhead under the trace-dispatch
//! model.
//!
//! Follows the paper's §5.4 derivation: the per-dispatch profiler cost
//! from the Table VI methodology is multiplied by the (much smaller)
//! trace-model dispatch count, giving the predicted percentage overhead.
//! The bench itself times the full trace VM so the prediction can be
//! compared against a measured end-to-end run.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use trace_bench::{overhead_rows, parse_scale};
use trace_jit::{tables, TraceJitConfig, TraceVm};
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_trace_dispatch(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("table7_trace_dispatch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/trace_vm", w.name), |b| {
            b.iter(|| {
                let mut tvm = TraceVm::new(&w.program, TraceJitConfig::paper_default());
                let r = tvm.run(black_box(&w.args)).unwrap();
                black_box(r.traces.trace_dispatches())
            })
        });
    }
    group.finish();

    let rows = overhead_rows(scale, 3);
    println!(
        "\n{}",
        tables::table7_trace_dispatch_overhead(&rows).render()
    );
}

criterion_group!(benches, bench_trace_dispatch);
criterion_main!(benches);

//! Figures 1–2: the three dispatch models.
//!
//! The paper's Figure 1 shows a plain interpreter dispatching one
//! *instruction* at a time, Figure 2 a direct-threaded-inlining
//! interpreter dispatching one *basic block* at a time; the trace cache
//! then dispatches one *trace* at a time. This bench times the actual
//! interpreter under (a) no observer, (b) the attached profiler, and
//! (c) the full trace system, and prints the dispatch-count table that
//! regenerates the figures' content.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use jvm_vm::{NullObserver, Vm};
use trace_bcg::BranchCorrelationGraph;
use trace_bench::parse_scale;
use trace_jit::{tables, TraceJitConfig, TraceVm};
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_dispatch_modes(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("fig_dispatch_modes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/interpreter", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                vm.run(black_box(&w.args), &mut NullObserver).unwrap();
                black_box(vm.checksum())
            })
        });
        group.bench_function(format!("{}/profiled", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                let mut bcg =
                    BranchCorrelationGraph::new(TraceJitConfig::paper_default().bcg_config());
                vm.run(black_box(&w.args), &mut |blk| {
                    bcg.observe(blk);
                })
                .unwrap();
                black_box(vm.checksum())
            })
        });
        group.bench_function(format!("{}/trace_vm", w.name), |b| {
            b.iter(|| {
                let mut tvm = TraceVm::new(&w.program, TraceJitConfig::paper_default());
                let r = tvm.run(black_box(&w.args)).unwrap();
                black_box(r.checksum)
            })
        });
    }
    group.finish();

    // Print the figure's dispatch-count table once.
    let rows = trace_bench::dispatch_rows(scale);
    println!("\n{}", tables::fig_dispatch_modes(&rows).render());
}

criterion_group!(benches, bench_dispatch_modes);
criterion_main!(benches);

//! Tables I–V: the trace-quality sweeps.
//!
//! Prints the five metric tables (trace length, coverage, completion
//! rate, signal rate, event interval) exactly as `paper_tables` does,
//! and times the underlying measurement — one full trace-VM run at the
//! paper's chosen parameters (97% threshold, delay 64) — per workload.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use trace_bench::{named_delay_sweeps, named_threshold_sweeps, parse_scale};
use trace_jit::experiment::run_point;
use trace_jit::{tables, TraceJitConfig};
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_tables(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("tables_1_to_5");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/run_point_97", w.name), |b| {
            b.iter(|| {
                let r = run_point(
                    &w.program,
                    black_box(&w.args),
                    TraceJitConfig::paper_default(),
                )
                .unwrap();
                black_box(r.coverage_completed())
            })
        });
    }
    group.finish();

    println!("\n# regenerating Tables I-V at {scale:?} scale…");
    let sweeps = named_threshold_sweeps(scale);
    println!("{}", tables::table1_trace_length(&sweeps).render());
    println!("{}", tables::table2_coverage(&sweeps).render());
    println!("{}", tables::table3_completion(&sweeps).render());
    println!("{}", tables::table4_signal_rate(&sweeps).render());
    let delays = named_delay_sweeps(scale);
    println!("{}", tables::table5_event_interval(&delays).render());
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

//! Future work (§6): measured speedup from actually *executing* traces.
//!
//! The paper predicts (Table VII) that trace dispatch cuts profiling
//! overhead from ≈28.6% of a block's cost to ≈5%, and names executing
//! the traces as its next step. This bench measures that end to end on
//! each workload:
//!
//! * `interpreter` — the unmodified block-dispatch interpreter (lower
//!   bound: no profiling at all);
//! * `profiled` — the interpreter with the BCG profiler on every block
//!   dispatch (the always-profiling upper bound);
//! * `engine` — the trace-executing VM: profiler on out-of-trace
//!   dispatches only, traces run from compiled guarded code;
//! * `engine_opt` — the same with the trace peephole optimizer.
//!
//! The paper's claim corresponds to `engine` landing close to
//! `interpreter` and well below `profiled`.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use jvm_vm::{NullObserver, Vm};
use trace_bcg::BranchCorrelationGraph;
use trace_bench::parse_scale;
use trace_exec::{EngineConfig, TracingVm};
use trace_jit::TraceJitConfig;
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_future_work(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("future_work_speedup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/interpreter", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                vm.run(black_box(&w.args), &mut NullObserver).unwrap();
                black_box(vm.checksum())
            })
        });
        group.bench_function(format!("{}/profiled", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                let mut bcg =
                    BranchCorrelationGraph::new(TraceJitConfig::paper_default().bcg_config());
                vm.run(black_box(&w.args), &mut |blk| {
                    bcg.observe(blk);
                })
                .unwrap();
                black_box(vm.checksum())
            })
        });
        group.bench_function(format!("{}/engine", w.name), |b| {
            // The engine keeps its trace cache across iterations,
            // modelling a warmed-up long-running VM.
            let mut engine = TracingVm::new(&w.program, EngineConfig::paper_default());
            b.iter(|| {
                let r = engine.run(black_box(&w.args)).unwrap();
                black_box(r.checksum)
            })
        });
        group.bench_function(format!("{}/engine_opt", w.name), |b| {
            let mut engine = TracingVm::new(
                &w.program,
                EngineConfig::paper_default().with_optimizer(true),
            );
            b.iter(|| {
                let r = engine.run(black_box(&w.args)).unwrap();
                black_box(r.checksum)
            })
        });
        group.bench_function(format!("{}/engine_nofuse", w.name), |b| {
            // Fusion ablation: trace execution without superinstructions.
            let mut engine = TracingVm::new(
                &w.program,
                EngineConfig::paper_default().with_superinstructions(false),
            );
            b.iter(|| {
                let r = engine.run(black_box(&w.args)).unwrap();
                black_box(r.checksum)
            })
        });
    }
    group.finish();

    // One-shot summary: dispatch reduction and optimizer savings.
    println!("\nfuture-work summary (warmed engine, one run each):");
    for w in &workloads {
        let mut plain = Vm::new(&w.program);
        plain.run(&w.args, &mut NullObserver).unwrap();
        let interpreter_dispatches = plain.stats().block_dispatches;

        let mut engine = TracingVm::new(
            &w.program,
            EngineConfig::paper_default().with_optimizer(true),
        );
        let _ = engine.run(&w.args).unwrap(); // warm the cache
        let r = engine.run(&w.args).unwrap();
        let s = engine.opt_stats();
        println!(
            "  {:10} dispatches {:>9} (interpreter {:>9}, {:>5.2}x fewer)  completion {:>6.2}%  opt-savings {:>5.1}%",
            w.name,
            r.exec.block_dispatches,
            interpreter_dispatches,
            interpreter_dispatches as f64 / r.exec.block_dispatches.max(1) as f64,
            100.0 * r.completion_rate(),
            100.0 * s.savings(),
        );
    }
}

criterion_group!(benches, bench_future_work);
criterion_main!(benches);

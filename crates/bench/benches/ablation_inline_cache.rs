//! Ablation: the profiler's predicted-successor inline cache (§4.1.2).
//!
//! The paper's per-dispatch cost argument assumes "most of the branches
//! are immediately predicted by the branch context's inline cache". This
//! ablation times the profiler with the inline cache enabled (fast path:
//! two comparisons) and disabled (always a successor-list scan), and
//! prints the measured hit ratios. The constructed graph is identical
//! either way — only the profiling cost changes.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use jvm_vm::Vm;
use trace_bcg::{BcgConfig, BranchCorrelationGraph};
use trace_bench::parse_scale;
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_inline_cache(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("ablation_inline_cache");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        for (label, enabled) in [("cache_on", true), ("cache_off", false)] {
            group.bench_function(format!("{}/{label}", w.name), |b| {
                b.iter(|| {
                    let mut vm = Vm::new(&w.program);
                    let mut bcg = BranchCorrelationGraph::new(BcgConfig {
                        inline_cache: enabled,
                        ..BcgConfig::paper_default()
                    });
                    vm.run(black_box(&w.args), &mut |blk| {
                        bcg.observe(blk);
                    })
                    .unwrap();
                    black_box(bcg.stats().cache_hits)
                })
            });
        }
    }
    group.finish();

    println!("\ninline-cache hit ratios (fraction of dispatches fast-pathed):");
    for w in &workloads {
        let mut vm = Vm::new(&w.program);
        let mut bcg = BranchCorrelationGraph::new(BcgConfig::paper_default());
        vm.run(&w.args, &mut |blk| {
            bcg.observe(blk);
        })
        .unwrap();
        println!(
            "  {:10} hit ratio {:.4}  ({} nodes, {} edges)",
            w.name,
            bcg.stats().cache_hit_ratio(),
            bcg.stats().nodes_created,
            bcg.stats().edges_created,
        );
    }
}

criterion_group!(benches, bench_inline_cache);
criterion_main!(benches);

//! Table VI: profiler overhead per basic-block dispatch.
//!
//! Times the interpreter with and without the profiler attached to every
//! block dispatch — the two columns of Table VI — and prints the derived
//! per-million-dispatch overhead table.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use jvm_vm::{NullObserver, Vm};
use trace_bcg::BranchCorrelationGraph;
use trace_bench::{overhead_rows, parse_scale};
use trace_jit::{tables, TraceJitConfig};
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_profiler_overhead(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("table6_profiler_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/no_profiler", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                vm.run(black_box(&w.args), &mut NullObserver).unwrap();
                black_box(vm.stats().block_dispatches)
            })
        });
        group.bench_function(format!("{}/profiler", w.name), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&w.program);
                let mut bcg =
                    BranchCorrelationGraph::new(TraceJitConfig::paper_default().bcg_config());
                vm.run(black_box(&w.args), &mut |blk| {
                    bcg.observe(blk);
                })
                .unwrap();
                black_box(bcg.stats().dispatches)
            })
        });
    }
    group.finish();

    let rows = overhead_rows(scale, 3);
    println!("\n{}", tables::table6_profiler_overhead(&rows).render());
}

criterion_group!(benches, bench_profiler_overhead);
criterion_main!(benches);

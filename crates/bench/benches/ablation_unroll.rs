//! Ablation: the loop unroll factor (§4.2's "unrolled once" rule).
//!
//! When the maximum-likelihood path ends in a loop, the paper unrolls it
//! once and cuts the result by the completion threshold. Because an
//! unrolled loop trace is bounded by `(1 + unroll) × body`, the rule
//! directly caps Table I's average trace lengths. This ablation sweeps
//! the unroll factor (0 = bare body, 1 = paper, 2, 4) and reports trace
//! length, completion rate, and coverage — quantifying the
//! length-vs-completion trade-off the paper's choice sits on.
//!
//! Scale defaults to `small`; set `TRACE_BENCH_SCALE=paper` for the full
//! runs.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use trace_bench::parse_scale;
use trace_jit::experiment::run_point;
use trace_jit::TraceJitConfig;
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

const UNROLLS: [usize; 4] = [0, 1, 2, 4];

fn bench_unroll(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("ablation_unroll");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        for unroll in UNROLLS {
            group.bench_function(format!("{}/unroll_{unroll}", w.name), |b| {
                b.iter(|| {
                    let r = run_point(
                        &w.program,
                        black_box(&w.args),
                        TraceJitConfig::paper_default().with_loop_unroll(unroll),
                    )
                    .unwrap();
                    black_box(r.avg_trace_length())
                })
            });
        }
    }
    group.finish();

    println!("\nunroll ablation (avg trace length / completion rate / coverage):");
    print!("{:>12}", "unroll");
    for w in &workloads {
        print!("{:>26}", w.name);
    }
    println!();
    for unroll in UNROLLS {
        print!("{:>12}", unroll);
        for w in &workloads {
            let r = run_point(
                &w.program,
                &w.args,
                TraceJitConfig::paper_default().with_loop_unroll(unroll),
            )
            .unwrap();
            print!(
                "{:>26}",
                format!(
                    "{:.1} / {:.1}% / {:.0}%",
                    r.avg_trace_length(),
                    100.0 * r.completion_rate(),
                    100.0 * r.coverage_completed()
                )
            );
        }
        println!();
    }
}

criterion_group!(benches, bench_unroll);
criterion_main!(benches);

//! Ablation: periodic decay vs. cumulative counters (§3.6 / §4.1.1).
//!
//! The paper's cache-stability argument rests on decay: weighting the
//! correlation statistics toward recent behaviour lets the profiler
//! notice phase changes and rebuild exactly the affected traces. This
//! ablation runs a two-phase program under (a) the paper's decay-every-
//! 256 configuration and (b) an effectively cumulative profiler (decay
//! interval too large to ever fire), and reports trace-execution quality
//! on the phase-changing stream.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use trace_bench::phase_change_program;
use trace_jit::{TraceJitConfig, TraceVm};

fn config_with_decay(interval: u32) -> TraceJitConfig {
    let mut c = TraceJitConfig::paper_default().with_start_delay(16);
    c.decay_interval = interval;
    c
}

fn bench_decay_ablation(c: &mut Criterion) {
    let program = phase_change_program(40, 4_000);

    let mut group = c.benchmark_group("ablation_decay");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("decay_256", |b| {
        b.iter(|| {
            let mut tvm = TraceVm::new(&program, config_with_decay(256));
            let r = tvm.run(black_box(&[])).unwrap();
            black_box(r.completion_rate())
        })
    });
    group.bench_function("decay_disabled", |b| {
        b.iter(|| {
            let mut tvm = TraceVm::new(&program, config_with_decay(u32::MAX));
            let r = tvm.run(black_box(&[])).unwrap();
            black_box(r.completion_rate())
        })
    });
    group.finish();

    // Report the quality difference once.
    println!("\nablation: periodic decay vs cumulative counters (two-phase workload)");
    for (name, interval) in [("decay=256 (paper)", 256u32), ("decay disabled", u32::MAX)] {
        let mut tvm = TraceVm::new(&program, config_with_decay(interval));
        let r = tvm.run(&[]).unwrap();
        println!(
            "  {name:20} completion={:.3} coverage={:.3} traces={} relinked={} signals={}",
            r.completion_rate(),
            r.coverage_incl_partial(),
            r.cache.traces_constructed,
            r.cache.links_replaced,
            r.profiler.state_signals + r.profiler.prediction_signals,
        );
    }
}

criterion_group!(benches, bench_decay_ablation);
criterion_main!(benches);

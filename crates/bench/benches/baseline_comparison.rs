//! Baseline comparison: BCG vs Dynamo-style NET vs rePLay-style
//! promotion (§2–§3 of the paper).
//!
//! The paper positions the branch correlation graph between Dynamo
//! (cheap, speculative, unverified tails) and rePLay (expensive,
//! hardware-assisted, fully asserted frames). This bench runs all three
//! selection policies over the six workloads with the *same* dispatch
//! monitor and prints the coverage / completion-rate trade-off the paper
//! argues qualitatively.

use std::hint::black_box;
use trace_bench::harness::Criterion;
use trace_bench::{criterion_group, criterion_main};

use trace_baselines::{run_with_selector, NetSelector, ReplaySelector};
use trace_bench::parse_scale;
use trace_jit::{experiment::run_point, TraceJitConfig};
use trace_workloads::{registry, Scale};

fn scale() -> Scale {
    std::env::var("TRACE_BENCH_SCALE")
        .ok()
        .as_deref()
        .and_then(parse_scale)
        .unwrap_or(Scale::Small)
}

fn bench_baselines(c: &mut Criterion) {
    let scale = scale();
    let workloads = registry::all(scale);

    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in &workloads {
        group.bench_function(format!("{}/bcg", w.name), |b| {
            b.iter(|| {
                let r = run_point(
                    &w.program,
                    black_box(&w.args),
                    TraceJitConfig::paper_default(),
                )
                .unwrap();
                black_box(r.completion_rate())
            })
        });
        group.bench_function(format!("{}/net", w.name), |b| {
            b.iter(|| {
                let mut sel = NetSelector::new();
                let r = run_with_selector(&w.program, black_box(&w.args), &mut sel).unwrap();
                black_box(r.completion_rate())
            })
        });
        group.bench_function(format!("{}/replay", w.name), |b| {
            b.iter(|| {
                let mut sel = ReplaySelector::new();
                let r = run_with_selector(&w.program, black_box(&w.args), &mut sel).unwrap();
                black_box(r.completion_rate())
            })
        });
    }
    group.finish();

    println!("\nselector comparison (coverage by completed traces / completion rate):");
    println!(
        "  {:10} {:>18} {:>18} {:>18}",
        "benchmark", "bcg", "net (dynamo)", "replay"
    );
    for w in &workloads {
        let bcg = run_point(&w.program, &w.args, TraceJitConfig::paper_default()).unwrap();
        let mut net = NetSelector::new();
        let net_r = run_with_selector(&w.program, &w.args, &mut net).unwrap();
        let mut rp = ReplaySelector::new();
        let rp_r = run_with_selector(&w.program, &w.args, &mut rp).unwrap();
        let fmt = |cov: f64, comp: f64| format!("{:.0}% / {:.1}%", cov * 100.0, comp * 100.0);
        println!(
            "  {:10} {:>18} {:>18} {:>18}",
            w.name,
            fmt(bcg.coverage_completed(), bcg.completion_rate()),
            fmt(net_r.coverage_completed(), net_r.completion_rate()),
            fmt(rp_r.coverage_completed(), rp_r.completion_rate()),
        );
    }
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);

//! Dynamo-style NET ("next executing tail") trace selection.
//!
//! Dynamo places counters on targets of backward-taken branches ("and
//! other potential hot points"); when a counter crosses the hot threshold
//! the instructions executed *immediately afterwards* are recorded as a
//! trace, ending at the next backward-taken branch or a length cap (§2 of
//! the paper). The intuition is speculative: "after a counter indicates
//! that a point has become hot the instructions executed immediately
//! afterwards often define a frequently executed sequence" — nothing
//! verifies the tail, which is exactly the weakness the BCG addresses.

use std::collections::HashMap;

use jvm_bytecode::{BlockId, Program};
use trace_bcg::Branch;
use trace_cache::TraceCache;

use crate::common::TraceSelector;

/// Dynamo's published hot threshold.
pub const DEFAULT_HOT_THRESHOLD: u32 = 50;
/// Maximum recorded trace length in blocks.
pub const DEFAULT_MAX_BLOCKS: usize = 64;

#[derive(Debug)]
enum Mode {
    Profiling,
    Recording { entry: Branch, blocks: Vec<BlockId> },
}

/// The NET selector.
#[derive(Debug)]
pub struct NetSelector {
    hot_threshold: u32,
    max_blocks: usize,
    counters: HashMap<BlockId, u32>,
    prev: Option<BlockId>,
    mode: Mode,
    /// Traces recorded (for stats/tests).
    recorded: u64,
}

impl NetSelector {
    /// Creates a selector with Dynamo's default parameters.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_HOT_THRESHOLD, DEFAULT_MAX_BLOCKS)
    }

    /// Creates a selector with explicit threshold and length cap.
    pub fn with_params(hot_threshold: u32, max_blocks: usize) -> Self {
        NetSelector {
            hot_threshold: hot_threshold.max(1),
            max_blocks: max_blocks.max(2),
            counters: HashMap::new(),
            prev: None,
            mode: Mode::Profiling,
            recorded: 0,
        }
    }

    /// Number of traces recorded so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether the transition `prev → block` is a backward-taken branch
    /// (same function, non-increasing block index) — NET's trace-head and
    /// trace-end signal.
    fn is_backward(prev: BlockId, block: BlockId) -> bool {
        prev.func == block.func && block.block <= prev.block
    }
}

impl Default for NetSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSelector for NetSelector {
    fn name(&self) -> &'static str {
        "net"
    }

    fn on_block(&mut self, block: BlockId, cache: &mut TraceCache, _program: &Program) {
        let prev = self.prev.replace(block);
        let Some(prev) = prev else { return };

        match &mut self.mode {
            Mode::Recording { entry, blocks } => {
                let end = blocks.len() >= self.max_blocks
                    || (blocks.len() > 1 && Self::is_backward(prev, block));
                if end {
                    if blocks.len() >= 2 {
                        // NET does not estimate completion probability;
                        // record 0.0 as "unknown".
                        cache.insert_and_link(*entry, std::mem::take(blocks), 0.0);
                        self.recorded += 1;
                    }
                    self.mode = Mode::Profiling;
                    // The block that ended recording may itself be a hot
                    // head next time; fall through to profiling below.
                } else {
                    blocks.push(block);
                    return;
                }
            }
            Mode::Profiling => {}
        }

        // Profiling: count backward-branch targets.
        if Self::is_backward(prev, block) {
            let c = self.counters.entry(block).or_insert(0);
            *c += 1;
            if *c >= self.hot_threshold {
                *c = 0;
                self.mode = Mode::Recording {
                    entry: (prev, block),
                    blocks: vec![block],
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_with_selector;
    use jvm_bytecode::{CmpOp, ProgramBuilder};
    use jvm_vm::Value;

    fn loop_program() -> jvm_bytecode::Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn hot_loop_gets_recorded_and_covered() {
        let program = loop_program();
        let mut net = NetSelector::new();
        let report = run_with_selector(&program, &[Value::Int(10_000)], &mut net).unwrap();
        assert!(net.recorded() > 0, "hot loop must be recorded");
        assert!(report.traces.entered > 0);
        assert!(
            report.coverage_completed() > 0.5,
            "coverage {}",
            report.coverage_completed()
        );
    }

    #[test]
    fn cold_code_is_not_recorded() {
        let program = loop_program();
        let mut net = NetSelector::new();
        // Only 10 iterations: under the hot threshold of 50.
        let report = run_with_selector(&program, &[Value::Int(10)], &mut net).unwrap();
        assert_eq!(net.recorded(), 0);
        assert_eq!(report.traces.entered, 0);
    }

    #[test]
    fn backward_detection() {
        use jvm_bytecode::FuncId;
        let a = BlockId::new(FuncId(0), 3);
        let b = BlockId::new(FuncId(0), 1);
        assert!(NetSelector::is_backward(a, b));
        assert!(!NetSelector::is_backward(b, a));
        let c = BlockId::new(FuncId(1), 0);
        assert!(!NetSelector::is_backward(a, c));
    }
}

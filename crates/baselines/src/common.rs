//! Shared harness: run any trace-selection policy over a program and
//! measure it with the standard trace-dispatch monitor.

use jvm_bytecode::{BlockId, Program};
use jvm_vm::{ExecStats, Value, Vm, VmError};
use trace_cache::{CacheStats, TraceCache, TraceExecStats, TraceRuntime};

/// A trace-selection policy driven by the dynamic block stream.
///
/// Implementations observe every dispatch and may install traces into the
/// shared cache at any point; the harness measures the resulting cache
/// with the same monitor used for the BCG system, making coverage and
/// completion numbers directly comparable.
pub trait TraceSelector {
    /// Short display name ("net", "replay", "bcg").
    fn name(&self) -> &'static str;

    /// Observes one dispatched block; may mutate the cache.
    fn on_block(&mut self, block: BlockId, cache: &mut TraceCache, program: &Program);
}

/// Measurements from one [`run_with_selector`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorReport {
    /// Interpreter counters.
    pub exec: ExecStats,
    /// Trace execution counters.
    pub traces: TraceExecStats,
    /// Cache counters.
    pub cache: CacheStats,
    /// Checksum produced by the program (for validation).
    pub checksum: u64,
}

impl SelectorReport {
    /// Instruction-stream coverage by completed traces.
    pub fn coverage_completed(&self) -> f64 {
        self.traces.coverage_completed(self.exec.instructions)
    }

    /// Dynamic trace completion rate.
    pub fn completion_rate(&self) -> f64 {
        self.traces.completion_rate()
    }
}

/// Runs `program` once with `selector` building traces and the standard
/// monitor measuring them.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_with_selector<S: TraceSelector>(
    program: &Program,
    args: &[Value],
    selector: &mut S,
) -> Result<SelectorReport, VmError> {
    let mut vm = Vm::new(program);
    let mut cache = TraceCache::new();
    let mut runtime = TraceRuntime::new();
    {
        let mut observer = |block: BlockId| {
            runtime.on_block(block, &cache, program);
            selector.on_block(block, &mut cache, program);
        };
        vm.run(args, &mut observer)?;
    }
    runtime.finish_stream();
    Ok(SelectorReport {
        exec: vm.stats(),
        traces: runtime.stats(),
        cache: cache.stats(),
        checksum: vm.checksum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    struct NullSelector;
    impl TraceSelector for NullSelector {
        fn name(&self) -> &'static str {
            "null"
        }
        fn on_block(&mut self, _: BlockId, _: &mut TraceCache, _: &Program) {}
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let program = pb.build(f).unwrap();
        let report = run_with_selector(&program, &[Value::Int(100)], &mut NullSelector).unwrap();
        assert!(report.exec.instructions > 0);
        assert_eq!(report.traces.entered, 0);
        assert_eq!(report.coverage_completed(), 0.0);
    }
}

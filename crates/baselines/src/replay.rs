//! rePLay-style branch promotion and frame construction.
//!
//! rePLay promotes a branch to an *assertion* once it takes the same
//! direction 32 consecutive times (with respect to a short branch
//! history); frames are maximal runs of promoted branches and are
//! expected to execute to completion (§2 of the paper). This software
//! model keeps the essential mechanism — per-branch consecutive-outcome
//! counters with a promotion threshold, frames built from chains of
//! promoted branches — while dropping the hardware-only parts (rollback
//! buffers, deep history correlation).

use std::collections::HashMap;

use jvm_bytecode::{BlockId, Program};
use trace_cache::TraceCache;

use crate::common::TraceSelector;

/// rePLay's published promotion threshold: 32 consecutive same-direction
/// executions.
pub const DEFAULT_PROMOTION_THRESHOLD: u32 = 32;
/// Frame length cap in blocks.
pub const DEFAULT_MAX_BLOCKS: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Bias {
    last: BlockId,
    streak: u32,
    promoted: bool,
}

/// The rePLay-style selector.
#[derive(Debug)]
pub struct ReplaySelector {
    threshold: u32,
    max_blocks: usize,
    bias: HashMap<BlockId, Bias>,
    prev: Option<BlockId>,
    promotions: u64,
    demotions: u64,
}

impl ReplaySelector {
    /// Creates a selector with rePLay's default 32-streak threshold.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_PROMOTION_THRESHOLD, DEFAULT_MAX_BLOCKS)
    }

    /// Creates a selector with explicit parameters.
    pub fn with_params(threshold: u32, max_blocks: usize) -> Self {
        ReplaySelector {
            threshold: threshold.max(1),
            max_blocks: max_blocks.max(2),
            bias: HashMap::new(),
            prev: None,
            promotions: 0,
            demotions: 0,
        }
    }

    /// Branches promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Promotions lost to a direction change.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Builds the frame starting at `head` by chaining promoted branches,
    /// and installs it linked at `(prev, head)`.
    fn build_frame(&mut self, entry_prev: BlockId, head: BlockId, cache: &mut TraceCache) {
        let mut blocks = vec![head];
        let mut cur = head;
        while blocks.len() < self.max_blocks {
            match self.bias.get(&cur) {
                Some(b) if b.promoted => {
                    let next = b.last;
                    // Stop when the chain closes a loop, after recording
                    // one full unrolled iteration (mirrors the paper's
                    // unroll-once handling).
                    let first_occurrence = blocks.iter().filter(|&&x| x == next).count();
                    if first_occurrence >= 2 {
                        break;
                    }
                    blocks.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        if blocks.len() >= 2 {
            cache.insert_and_link((entry_prev, head), blocks, 1.0);
        }
    }
}

impl Default for ReplaySelector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSelector for ReplaySelector {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn on_block(&mut self, block: BlockId, cache: &mut TraceCache, _program: &Program) {
        let prev = self.prev.replace(block);
        let Some(prev) = prev else { return };

        let mut newly_promoted = false;
        let entry = self.bias.entry(prev).or_insert(Bias {
            last: block,
            streak: 0,
            promoted: false,
        });
        if entry.last == block {
            entry.streak += 1;
            if !entry.promoted && entry.streak >= self.threshold {
                entry.promoted = true;
                newly_promoted = true;
                self.promotions += 1;
            }
        } else {
            if entry.promoted {
                self.demotions += 1;
                // The old frame through this branch is now wrong; unlink
                // any trace entered here.
                cache.unlink((prev, entry.last));
            }
            entry.last = block;
            entry.streak = 1;
            entry.promoted = false;
        }

        if newly_promoted {
            // A new assertion may extend frames: rebuild from this branch.
            self.build_frame(prev, block, cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_with_selector;
    use jvm_bytecode::{CmpOp, ProgramBuilder};
    use jvm_vm::Value;

    fn loop_program() -> jvm_bytecode::Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    /// Alternating-successor program: (head -> a -> head -> b -> head…).
    fn alternating_program() -> jvm_bytecode::Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let x = b.alloc_local();
        b.iconst(0).store(x);
        let head = b.bind_new_label();
        let exit = b.new_label();
        let odd = b.new_label();
        let cont = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(x).iconst(1).iand().if_i(CmpOp::Ne, odd);
        b.iinc(x, 1).goto(cont);
        b.bind(odd);
        b.iinc(x, 1);
        b.bind(cont);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(x).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn biased_loop_promotes_and_frames_complete() {
        let program = loop_program();
        let mut sel = ReplaySelector::new();
        let report = run_with_selector(&program, &[Value::Int(10_000)], &mut sel).unwrap();
        assert!(sel.promotions() > 0);
        assert!(report.traces.entered > 0);
        assert!(
            report.completion_rate() > 0.95,
            "frames must complete: {}",
            report.completion_rate()
        );
    }

    #[test]
    fn alternating_branch_is_never_promoted() {
        let program = alternating_program();
        let mut sel = ReplaySelector::new();
        let report = run_with_selector(&program, &[Value::Int(10_000)], &mut sel).unwrap();
        // The alternating branch itself can never reach a 32-streak; only
        // the unconditional parts may be framed. Coverage is therefore
        // limited compared to the loop case.
        let loop_report = {
            let mut sel2 = ReplaySelector::new();
            run_with_selector(&loop_program(), &[Value::Int(10_000)], &mut sel2).unwrap()
        };
        assert!(report.coverage_completed() <= loop_report.coverage_completed());
    }

    #[test]
    fn direction_change_demotes() {
        // The loop-head branch is "continue" 1000 times (promoted), then
        // "exit" once: that direction change must demote it.
        let program = loop_program();
        let mut sel = ReplaySelector::with_params(4, 64);
        let _ = run_with_selector(&program, &[Value::Int(1_000)], &mut sel).unwrap();
        assert!(sel.promotions() > 0);
        assert!(
            sel.demotions() > 0,
            "loop exit must demote the promoted head branch"
        );
    }
}

//! # trace-baselines
//!
//! The two trace-selection baselines the paper positions itself against
//! (§2–§3), implemented over the same block-dispatch stream and measured
//! with the same [`trace_cache::TraceRuntime`] monitor as the BCG system:
//!
//! * [`net`] — **Dynamo-style NET** ("next executing tail"): hot-point
//!   counters at targets of backward branches; once a counter crosses the
//!   hot threshold, the blocks executed immediately afterwards are
//!   recorded as a trace. Cheap, good coverage, but nothing verifies that
//!   the recorded tail will re-occur, so completion rates are
//!   unconstrained.
//! * [`replay`] — **rePLay-style bias promotion**: a branch is *promoted*
//!   (asserted) after taking the same successor 32 consecutive times;
//!   frames are maximal chains of promoted branches. High completion,
//!   but the 32-consecutive requirement reacts slowly and in software
//!   costs per-branch history bookkeeping.
//!
//! The paper's own mechanism sits between the two: the branch correlation
//! graph "uses less resources than rePLay but provides more assurance of
//! the regularity of the trace than Dynamo" (§3.5). The
//! `baseline_comparison` bench quantifies exactly that trade-off.

pub mod common;
pub mod net;
pub mod replay;

pub use common::{run_with_selector, SelectorReport, TraceSelector};
pub use net::NetSelector;
pub use replay::ReplaySelector;

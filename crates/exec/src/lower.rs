//! Lowering compiled traces to the decoded threaded form.
//!
//! [`crate::compile`], [`crate::opt`] and [`crate::fuse`] all work on
//! [`TInstr`] over source [`jvm_bytecode::Instr`]s — the right level for
//! flattening and peephole rewriting. The engine, however, executes the
//! *decoded* form everywhere ([`jvm_vm::DecodedProgram`]): out-of-trace
//! code runs from the flat marker-threaded streams, so the in-trace form
//! must speak the same language. This pass translates a finished
//! [`CompiledTrace`] into an [`XInstr`] sequence:
//!
//! * plain instructions become fixed-width [`DOp`]s, interning any
//!   constants the optimizer invented into the program pools;
//! * every control instruction's pc anchors are rebased into decoded
//!   indices — branch targets point at the destination block's entry
//!   marker, side-exit resume points ([`Exit::dpc`]) at the guarded
//!   instruction itself (just *past* its block marker, so the resumed
//!   interpreter re-executes the instruction without re-firing a
//!   dispatch — the eager side-exit bookkeeping in the engine has already
//!   accounted for it);
//! * the final [`TInstr::Finish`] terminator is not re-encoded: the
//!   original decoded stream already holds its exact [`DOp`] (with branch
//!   targets resolved) at `pc_map[pc]`, and neither the optimizer nor
//!   fusion ever rewrites control instructions.
//!
//! Lowering is infallible: it runs on traces [`crate::compile`] already
//! verified against the program's control flow.

use jvm_bytecode::{BlockId, FuncId, Program};
use jvm_vm::{DOp, DecodedProgram};
use trace_cache::TraceId;

use crate::compile::{CompiledTrace, CondKind, TInstr};
use crate::fuse::Fused;

/// A side-exit anchor: where the interpreter resumes when a guard fails,
/// in decoded coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exit {
    /// Function owning the guarded instruction.
    pub func: FuncId,
    /// Decoded index of the guarded instruction (the resume point).
    pub dpc: u32,
    /// Block index containing it — the dispatch the engine must account
    /// for eagerly, since the resumed pc sits past the block's marker.
    pub block: u32,
}

/// One instruction of a lowered (decoded-form) trace.
#[derive(Debug, Clone, PartialEq)]
pub enum XInstr {
    /// A plain decoded instruction, executed exactly as the out-of-trace
    /// loop would.
    Op(DOp),
    /// A fused superinstruction (unchanged by lowering; it reads locals
    /// directly and never needs pc anchors).
    Fused(Fused),
    /// Block boundary with fall-through (no control transfer).
    FallThrough,
    /// Unconditional jump: sets the frame pc to a decoded block marker.
    Jump {
        /// Decoded index of the destination block's entry marker.
        target: u32,
    },
    /// Guarded conditional branch.
    GuardCond {
        /// Branch shape.
        kind: CondKind,
        /// Direction the trace recorded.
        expected_taken: bool,
        /// Decoded marker index taken branches jump to.
        target: u32,
        /// Side-exit anchor.
        exit: Exit,
    },
    /// Guarded `tableswitch` with a decoded jump table.
    GuardSwitch {
        /// Selector value mapped to `targets[0]`.
        low: i64,
        /// Decoded jump table (marker indices).
        targets: Box<[u32]>,
        /// Decoded out-of-range target.
        default: u32,
        /// Decoded marker the trace expects the switch to select.
        /// Marker indices are injective over blocks, so comparing decoded
        /// targets is equivalent to comparing source pcs.
        expected: u32,
        /// Side-exit anchor.
        exit: Exit,
    },
    /// Static call whose callee body continues the trace.
    EnterStatic {
        /// The callee.
        callee: FuncId,
        /// Decoded continuation pc in the caller (the slot after the call
        /// — the next block's marker, since calls end blocks).
        ret: u32,
    },
    /// Virtual call with a receiver guard.
    GuardVirtual {
        /// Vtable slot.
        slot: u16,
        /// Argument count including the receiver.
        argc: u16,
        /// Callee the trace recorded.
        expected: FuncId,
        /// Decoded continuation pc in the caller.
        ret: u32,
        /// Side-exit anchor.
        exit: Exit,
    },
    /// Return with a continuation guard.
    GuardReturn {
        /// The continuation block the trace recorded.
        expected: BlockId,
        /// Whether a value is returned.
        has_value: bool,
        /// Side-exit anchor.
        exit: Exit,
    },
    /// The final block's terminator, executed with full interpreter
    /// semantics from its original decoded form.
    Finish {
        /// The decoded terminator (targets already rebased by the
        /// program-wide decode pass).
        op: DOp,
        /// Anchor carrying the decoded pc to re-anchor the frame at
        /// before execution.
        exit: Exit,
    },
}

/// A trace in decoded threaded form, ready for the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredTrace {
    /// The cache id this was lowered from.
    pub trace_id: TraceId,
    /// The lowered instruction sequence.
    pub code: Vec<XInstr>,
    /// The source block sequence (owned copy for side-exit context
    /// reconstruction and completion accounting).
    pub src_blocks: Vec<BlockId>,
    /// Source instruction count (pre-optimisation baseline).
    pub src_instrs: usize,
}

impl LoweredTrace {
    /// Number of source basic blocks.
    pub fn blocks(&self) -> usize {
        self.src_blocks.len()
    }

    /// Real byte footprint of the lowered code (capacities).
    pub fn memory_estimate(&self) -> usize {
        let mut bytes = self.code.capacity() * std::mem::size_of::<XInstr>()
            + self.src_blocks.capacity() * std::mem::size_of::<BlockId>();
        for x in &self.code {
            if let XInstr::GuardSwitch { targets, .. } = x {
                bytes += targets.len() * 4;
            }
        }
        bytes
    }
}

/// Lowers a compiled trace into decoded form, interning optimizer-made
/// constants into the program pools.
pub fn lower_trace(
    program: &Program,
    decoded: &mut DecodedProgram,
    ct: &CompiledTrace,
) -> LoweredTrace {
    // Pre-encode the plain ops first: interning is the only step that
    // mutates the decoded program, so everything after it can read it
    // immutably (shared with the frozen path below).
    let ops: Vec<DOp> = ct
        .code
        .iter()
        .filter_map(|t| match t {
            TInstr::Op(ins) => Some(
                decoded
                    .encode_straightline(program, ins)
                    .expect("trace Op instructions are straight-line"),
            ),
            _ => None,
        })
        .collect();
    lower_body(decoded, ct, ops)
}

/// Lowers a compiled trace against a *frozen* decoded program: no
/// interning, so the decoded streams can be shared read-only across
/// threads. Returns `None` if any plain op needs a constant that is not
/// already in the pools (only the optimizer invents those; unoptimized
/// traces always lower).
pub fn lower_trace_frozen(
    program: &Program,
    decoded: &DecodedProgram,
    ct: &CompiledTrace,
) -> Option<LoweredTrace> {
    let mut ops = Vec::new();
    for t in &ct.code {
        if let TInstr::Op(ins) = t {
            ops.push(decoded.encode_straightline_frozen(program, ins)?);
        }
    }
    Some(lower_body(decoded, ct, ops))
}

/// The read-only remainder of lowering: rebases pc anchors and stitches
/// the pre-encoded plain ops back into the stream in order.
fn lower_body(decoded: &DecodedProgram, ct: &CompiledTrace, ops: Vec<DOp>) -> LoweredTrace {
    let exit_of = |decoded: &DecodedProgram, func: FuncId, pc: u32| -> Exit {
        let df = decoded.func(func);
        let dpc = df.pc_map[pc as usize];
        Exit {
            func,
            dpc,
            block: df.block_of[dpc as usize],
        }
    };
    let marker = |decoded: &DecodedProgram, func: FuncId, target: u32| -> u32 {
        decoded.func(func).block_entry(target)
    };

    let mut ops = ops.into_iter();
    let code = ct
        .code
        .iter()
        .map(|t| match t {
            TInstr::Op(_) => XInstr::Op(ops.next().expect("one pre-encoded DOp per plain op")),
            TInstr::Fused(f) => XInstr::Fused(*f),
            TInstr::FallThrough => XInstr::FallThrough,
            TInstr::Jump { target, func, pc } => {
                let _ = pc;
                XInstr::Jump {
                    target: marker(decoded, *func, *target),
                }
            }
            TInstr::GuardCond {
                kind,
                expected_taken,
                target,
                func,
                pc,
            } => XInstr::GuardCond {
                kind: *kind,
                expected_taken: *expected_taken,
                target: marker(decoded, *func, *target),
                exit: exit_of(decoded, *func, *pc),
            },
            TInstr::GuardSwitch {
                low,
                targets,
                default,
                expected_pc,
                func,
                pc,
            } => XInstr::GuardSwitch {
                low: *low,
                targets: targets.iter().map(|&t| marker(decoded, *func, t)).collect(),
                default: marker(decoded, *func, *default),
                expected: marker(decoded, *func, *expected_pc),
                exit: exit_of(decoded, *func, *pc),
            },
            TInstr::EnterStatic { callee, func, pc } => XInstr::EnterStatic {
                callee: *callee,
                ret: exit_of(decoded, *func, *pc).dpc + 1,
            },
            TInstr::GuardVirtual {
                slot,
                argc,
                expected,
                func,
                pc,
            } => XInstr::GuardVirtual {
                slot: *slot,
                argc: *argc,
                expected: *expected,
                ret: exit_of(decoded, *func, *pc).dpc + 1,
                exit: exit_of(decoded, *func, *pc),
            },
            TInstr::GuardReturn {
                expected,
                has_value,
                func,
                pc,
            } => XInstr::GuardReturn {
                expected: *expected,
                has_value: *has_value,
                exit: exit_of(decoded, *func, *pc),
            },
            TInstr::Finish { instr, func, pc } => {
                let _ = instr;
                let exit = exit_of(decoded, *func, *pc);
                XInstr::Finish {
                    op: decoded.func(*func).code[exit.dpc as usize],
                    exit,
                }
            }
        })
        .collect();

    LoweredTrace {
        trace_id: ct.trace_id,
        code,
        src_blocks: ct.src_blocks.clone(),
        src_instrs: ct.src_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, Instr, ProgramBuilder};
    use jvm_vm::decode::op;
    use trace_cache::TraceCache;

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    fn lowered_loop() -> (Program, DecodedProgram, LoweredTrace) {
        let p = loop_program();
        let mut d = DecodedProgram::decode(&p);
        let blk = |b: u32| BlockId::new(p.entry(), b);
        let mut cache = TraceCache::new();
        let (id, _) = cache.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2), blk(1)], 0.99);
        let ct = crate::compile::compile(&p, cache.trace(id)).unwrap();
        let lt = lower_trace(&p, &mut d, &ct);
        (p, d, lt)
    }

    #[test]
    fn branch_targets_land_on_markers() {
        let (p, d, lt) = lowered_loop();
        let df = d.func(p.entry());
        for x in &lt.code {
            let t = match x {
                XInstr::Jump { target } => Some(*target),
                XInstr::GuardCond { target, .. } => Some(*target),
                _ => None,
            };
            if let Some(t) = t {
                assert_eq!(df.code[t as usize].op, op::ENTER_BLOCK);
            }
        }
    }

    #[test]
    fn exits_resume_past_their_block_marker() {
        let (p, d, lt) = lowered_loop();
        let df = d.func(p.entry());
        for x in &lt.code {
            if let XInstr::GuardCond { exit, .. } = x {
                assert_ne!(df.code[exit.dpc as usize].op, op::ENTER_BLOCK);
                assert_eq!(df.block_of[exit.dpc as usize], exit.block);
            }
        }
    }

    #[test]
    fn finish_reuses_the_original_decoded_terminator() {
        let (p, d, lt) = lowered_loop();
        let df = d.func(p.entry());
        let last = lt.code.last().expect("nonempty");
        match last {
            XInstr::Finish { op: dop, exit } => {
                assert_eq!(*dop, df.code[exit.dpc as usize]);
            }
            other => panic!("expected Finish, got {other:?}"),
        }
    }

    #[test]
    fn optimizer_constants_are_interned_on_demand() {
        let p = loop_program();
        let mut d = DecodedProgram::decode(&p);
        assert!(!d.iconsts.contains(&42));
        let dop = d
            .encode_straightline(&p, &Instr::IConst(42))
            .expect("iconst is straight-line");
        assert_eq!(dop.op, op::ICONST);
        assert_eq!(d.iconsts[dop.b as usize], 42);
        // Interning is idempotent.
        let again = d.encode_straightline(&p, &Instr::IConst(42)).unwrap();
        assert_eq!(again.b, dop.b);
    }

    #[test]
    fn frozen_lowering_matches_interning_lowering() {
        let (p, d, lt) = lowered_loop();
        // Rebuild the compiled trace the same way lowered_loop did.
        let blk = |b: u32| BlockId::new(p.entry(), b);
        let mut cache = TraceCache::new();
        let (id, _) = cache.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2), blk(1)], 0.99);
        let ct = crate::compile::compile(&p, cache.trace(id)).unwrap();
        let frozen = lower_trace_frozen(&p, &d, &ct).expect("paper-default traces lower frozen");
        assert_eq!(frozen, lt);
    }

    #[test]
    fn frozen_lowering_refuses_missing_constants() {
        let p = loop_program();
        let d = DecodedProgram::decode(&p);
        assert!(!d.iconsts.contains(&42));
        assert!(d
            .encode_straightline_frozen(&p, &Instr::IConst(42))
            .is_none());
    }

    #[test]
    fn control_instructions_refuse_straightline_encoding() {
        let p = loop_program();
        let mut d = DecodedProgram::decode(&p);
        assert!(d.encode_straightline(&p, &Instr::Goto(0)).is_none());
        assert!(d.encode_straightline(&p, &Instr::Return).is_none());
    }
}

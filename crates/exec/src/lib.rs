//! # trace-exec
//!
//! The paper's stated next step (§6): *"enabling the VM to execute the
//! traces we can find … and then we will measure what further improvement
//! can be achieved by applying optimizations to the traces."*
//!
//! This crate implements that future work on top of the reproduction:
//!
//! * [`compile`](mod@compile) — flattens a cached trace (a sequence of basic blocks)
//!   into straight-line guarded code: conditional branches whose
//!   direction the trace predicts become **guards** that side-exit back
//!   to the interpreter when the prediction fails; virtual calls get
//!   receiver guards; returns get continuation guards; everything else
//!   runs unchanged.
//! * [`opt`] — a peephole optimizer over the flattened code (constant
//!   folding, algebraic identities, dead stack traffic, strength
//!   reduction), exploiting the paper's fourth design criterion: traces
//!   have a single entry and a known path, so path-specialised
//!   optimisation is sound as long as side exits restore interpreter
//!   state — which the guards guarantee by construction (they resume at
//!   the guarded instruction with the operand stack untouched).
//! * [`lower`] — lowers compiled traces onto the VM's pre-decoded form:
//!   a [`LoweredTrace`] is a flat [`XInstr`] stream whose ordinary ops
//!   are 8-byte decoded `DOp`s and whose guards carry pre-resolved
//!   side-[`Exit`]s (decoded pc + block), so leaving a trace lands the
//!   decoded interpreter directly on the right instruction.
//! * [`reg`] — the final lowering stage: an abstract-stack pass renames
//!   operand-stack slots and locals to **virtual registers**, folding
//!   stack traffic into three-address [`RInstr`]s, fusing
//!   compare-and-branch into single guard ops, and pre-resolving
//!   constants into a per-trace constant table. Every guard carries a
//!   [`FrameImage`] mapping live registers back to the stack/locals
//!   frame, so a side exit reconstructs the interpreter frame exactly
//!   at the guarded instruction.
//! * [`engine`] — [`TracingVm`], a complete execution engine that
//!   interprets out-of-trace code block-by-block over the decoded
//!   streams (with the profiler attached, as in the base system) and
//!   executes cached traces from their lowered form, eliminating the
//!   per-block dispatch and profiling points inside traces.
//!   Differential tests pin its semantics against the baseline
//!   interpreter on all six workloads.

pub mod compile;
pub mod engine;
pub mod fuse;
pub mod lower;
pub mod opt;
pub mod reg;
pub mod shared;

pub use compile::{compile, compile_blocks, CompileError, CompiledTrace, CondKind, TInstr};
pub use engine::{EngineConfig, TracingVm, WarmBootReport};
pub use fuse::{fuse_trace, FuseStats, Fused, FusedBin};
pub use lower::{lower_trace, lower_trace_frozen, Exit, LoweredTrace, XInstr};
pub use opt::{optimize, OptStats};
pub use reg::{
    disassemble, lower_reg, FrameImage, RBin, RExit, RInstr, RUn, Reg, RegStats, RegTrace,
    TraceArtifact,
};
pub use shared::{
    artifact_builder, run_shared_constructor, run_supervised_shared_constructor, shared_session,
    SharedCache, SharedSession,
};

//! Peephole optimization of compiled traces.
//!
//! Traces are the paper's preferred unit of optimization (§3.7): one
//! entry point, a single known path, and guards that side-exit with the
//! operand stack untouched. Within those constraints a peephole pass over
//! the flattened code is sound as long as it never crosses a control
//! `TInstr` (guards re-anchor `pc`, so deletions between guards cannot
//! desynchronise side exits).
//!
//! Implemented rewrites, iterated to a fixed point:
//!
//! * constant folding — `[iconst a, iconst b, iadd] → [iconst a+b]` and
//!   friends (wrapping, division only for non-zero constants), unary
//!   folds, int↔float conversion folds;
//! * dead stack traffic — `[dup, pop]`, `[<const>, pop]`, `[load, pop]`,
//!   `[swap, swap]`;
//! * algebraic identities — `x+0`, `x-0`, `x*1`, `x|0`, `x^0`, `x&-1`,
//!   shifts by 0 (integer only; float identities are not IEEE-safe);
//! * strength reduction — `x * 2^k → x << k`.
//!
//! The pass never changes observable behaviour on traces recorded from
//! real executions: the rewritten windows are branch-free and their
//! operands' runtime types are pinned by the verifier's discipline.

use jvm_bytecode::Instr;

use crate::compile::{CompiledTrace, TInstr};

/// Optimization statistics for one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Compiled instructions before optimization.
    pub before: usize,
    /// Compiled instructions after optimization.
    pub after: usize,
    /// Constant-folding rewrites applied.
    pub folds: u64,
    /// Dead-stack-traffic eliminations applied.
    pub eliminations: u64,
    /// Algebraic-identity removals applied.
    pub identities: u64,
    /// Strength reductions applied.
    pub reductions: u64,
}

impl OptStats {
    /// Fraction of compiled instructions removed, in `[0, 1)`.
    pub fn savings(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Optimizes a compiled trace in place, returning the statistics.
pub fn optimize(trace: &mut CompiledTrace, stats_out: &mut OptStats) {
    stats_out.before = trace.code.len();
    loop {
        let changed = pass(&mut trace.code, stats_out);
        if !changed {
            break;
        }
    }
    stats_out.after = trace.code.len();
}

/// Convenience wrapper returning the stats.
pub fn optimize_trace(trace: &mut CompiledTrace) -> OptStats {
    let mut s = OptStats::default();
    optimize(trace, &mut s);
    s
}

fn as_op(t: &TInstr) -> Option<&Instr> {
    match t {
        TInstr::Op(i) => Some(i),
        _ => None,
    }
}

/// One left-to-right rewrite pass; returns whether anything changed.
fn pass(code: &mut Vec<TInstr>, stats: &mut OptStats) -> bool {
    let mut out: Vec<TInstr> = Vec::with_capacity(code.len());
    let mut changed = false;
    let mut i = 0;
    while i < code.len() {
        // Try 2-wide window against the already-emitted tail + current.
        if let Some(prev) = out.last().and_then(as_op) {
            if let Some(cur) = as_op(&code[i]) {
                if let Some(rewrite) = rewrite2(prev, cur, stats) {
                    out.pop();
                    out.extend(rewrite);
                    i += 1;
                    changed = true;
                    continue;
                }
                // 3-wide window (two consts + binop).
                if out.len() >= 2 {
                    if let (Some(a), Some(b)) = (
                        as_op(&out[out.len() - 2]).cloned(),
                        as_op(&out[out.len() - 1]).cloned(),
                    ) {
                        if let Some(folded) = fold3(&a, &b, cur) {
                            out.pop();
                            out.pop();
                            out.push(TInstr::Op(folded));
                            stats.folds += 1;
                            i += 1;
                            changed = true;
                            continue;
                        }
                    }
                }
            }
        }
        out.push(code[i].clone());
        i += 1;
    }
    *code = out;
    changed
}

/// Folds `[a, b, op]` where `a` and `b` are constants.
fn fold3(a: &Instr, b: &Instr, op: &Instr) -> Option<Instr> {
    if let (Instr::IConst(x), Instr::IConst(y)) = (a, b) {
        let (x, y) = (*x, *y);
        let v = match op {
            Instr::IAdd => x.wrapping_add(y),
            Instr::ISub => x.wrapping_sub(y),
            Instr::IMul => x.wrapping_mul(y),
            Instr::IDiv if y != 0 => x.wrapping_div(y),
            Instr::IRem if y != 0 => x.wrapping_rem(y),
            Instr::IAnd => x & y,
            Instr::IOr => x | y,
            Instr::IXor => x ^ y,
            Instr::IShl => x.wrapping_shl(y as u32 & 63),
            Instr::IShr => x.wrapping_shr(y as u32 & 63),
            Instr::IUShr => ((x as u64) >> (y as u32 & 63)) as i64,
            _ => return None,
        };
        return Some(Instr::IConst(v));
    }
    if let (Instr::FConst(x), Instr::FConst(y)) = (a, b) {
        let (x, y) = (*x, *y);
        let v = match op {
            Instr::FAdd => x + y,
            Instr::FSub => x - y,
            Instr::FMul => x * y,
            Instr::FDiv => x / y,
            _ => return None,
        };
        return Some(Instr::FConst(v));
    }
    None
}

/// Rewrites `[prev, cur]` to a shorter sequence, or `None`.
fn rewrite2(prev: &Instr, cur: &Instr, stats: &mut OptStats) -> Option<Vec<TInstr>> {
    use Instr::*;
    // Unary constant folds.
    match (prev, cur) {
        (IConst(a), INeg) => {
            stats.folds += 1;
            return Some(vec![TInstr::Op(IConst(a.wrapping_neg()))]);
        }
        (FConst(a), FNeg) => {
            stats.folds += 1;
            return Some(vec![TInstr::Op(FConst(-a))]);
        }
        (IConst(a), I2F) => {
            stats.folds += 1;
            return Some(vec![TInstr::Op(FConst(*a as f64))]);
        }
        (FConst(a), F2I) => {
            stats.folds += 1;
            return Some(vec![TInstr::Op(IConst(*a as i64))]);
        }
        _ => {}
    }
    // Dead stack traffic.
    match (prev, cur) {
        (Dup, Pop) | (Swap, Swap) => {
            stats.eliminations += 1;
            return Some(vec![]);
        }
        (IConst(_), Pop) | (FConst(_), Pop) | (ConstNull, Pop) | (Load(_), Pop) => {
            stats.eliminations += 1;
            return Some(vec![]);
        }
        _ => {}
    }
    // Integer algebraic identities (safe: verifier pins operands to int).
    let identity = matches!(
        (prev, cur),
        (IConst(0), IAdd)
            | (IConst(0), ISub)
            | (IConst(1), IMul)
            | (IConst(0), IOr)
            | (IConst(0), IXor)
            | (IConst(-1), IAnd)
            | (IConst(0), IShl)
            | (IConst(0), IShr)
            | (IConst(0), IUShr)
    );
    if identity {
        stats.identities += 1;
        return Some(vec![]);
    }
    // Strength reduction: multiply by a power of two.
    if let (IConst(c), IMul) = (prev, cur) {
        if *c > 1 && (*c & (*c - 1)) == 0 {
            stats.reductions += 1;
            let k = c.trailing_zeros() as i64;
            return Some(vec![TInstr::Op(IConst(k)), TInstr::Op(IShl)]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledTrace;
    use trace_cache::TraceId;

    fn trace_of(ops: Vec<Instr>) -> CompiledTrace {
        CompiledTrace {
            trace_id: TraceId::from_raw(0),
            code: ops.into_iter().map(TInstr::Op).collect(),
            src_blocks: Vec::new(),
            src_instrs: 0,
        }
    }

    fn ops(t: &CompiledTrace) -> Vec<Instr> {
        t.code
            .iter()
            .map(|i| match i {
                TInstr::Op(op) => op.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn folds_binary_constants() {
        let mut t = trace_of(vec![Instr::IConst(6), Instr::IConst(7), Instr::IMul]);
        let s = optimize_trace(&mut t);
        assert_eq!(ops(&t), vec![Instr::IConst(42)]);
        assert_eq!(s.folds, 1);
        assert!(s.savings() > 0.5);
    }

    #[test]
    fn folds_cascade_to_fixed_point() {
        // ((2+3)*4) fully folds.
        let mut t = trace_of(vec![
            Instr::IConst(2),
            Instr::IConst(3),
            Instr::IAdd,
            Instr::IConst(4),
            Instr::IMul,
        ]);
        optimize_trace(&mut t);
        assert_eq!(ops(&t), vec![Instr::IConst(20)]);
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut t = trace_of(vec![Instr::IConst(1), Instr::IConst(0), Instr::IDiv]);
        optimize_trace(&mut t);
        assert_eq!(t.code.len(), 3, "must preserve the trap");
    }

    #[test]
    fn eliminates_dead_stack_traffic() {
        let mut t = trace_of(vec![
            Instr::Load(0),
            Instr::Dup,
            Instr::Pop,
            Instr::Swap,
            Instr::Swap,
        ]);
        let s = optimize_trace(&mut t);
        assert_eq!(ops(&t), vec![Instr::Load(0)]);
        assert_eq!(s.eliminations, 2);
    }

    #[test]
    fn removes_integer_identities() {
        let mut t = trace_of(vec![
            Instr::Load(0),
            Instr::IConst(0),
            Instr::IAdd,
            Instr::IConst(1),
            Instr::IMul,
        ]);
        let s = optimize_trace(&mut t);
        assert_eq!(ops(&t), vec![Instr::Load(0)]);
        assert_eq!(s.identities, 2);
    }

    #[test]
    fn strength_reduces_power_of_two_multiply() {
        let mut t = trace_of(vec![Instr::Load(0), Instr::IConst(256), Instr::IMul]);
        let s = optimize_trace(&mut t);
        assert_eq!(ops(&t), vec![Instr::Load(0), Instr::IConst(8), Instr::IShl]);
        assert_eq!(s.reductions, 1);
    }

    #[test]
    fn float_identities_are_left_alone() {
        // x + 0.0 is not IEEE-safe to remove (-0.0 + 0.0 == +0.0).
        let mut t = trace_of(vec![Instr::Load(0), Instr::FConst(0.0), Instr::FAdd]);
        optimize_trace(&mut t);
        assert_eq!(t.code.len(), 3);
    }

    #[test]
    fn guards_are_barriers() {
        use jvm_bytecode::FuncId;
        let mut t = trace_of(vec![]);
        t.code = vec![
            TInstr::Op(Instr::IConst(1)),
            TInstr::Jump {
                target: 0,
                func: FuncId(0),
                pc: 0,
            },
            TInstr::Op(Instr::Pop),
        ];
        optimize_trace(&mut t);
        // [iconst, pop] across the jump must NOT cancel.
        assert_eq!(t.code.len(), 3);
    }
}

//! Shared-cache sessions: many VMs, one trace cache, one constructor.
//!
//! In the single-VM engine every piece of the pipeline lives on the
//! dispatch thread. A *shared session* splits it:
//!
//! * the [`SharedCache`] (a [`trace_cache::SharedTraceCache`] whose
//!   artifacts are [`LoweredTrace`]s) is probed lock-free by every
//!   dispatching VM;
//! * construction runs on a background thread: dispatchers drain their
//!   profiler signals into a bounded [`ConstructionQueue`] as
//!   [`BcgSnapshot`]s, and [`run_shared_constructor`] plans, hash-conses
//!   and lowers on the other side;
//! * lowering uses the **frozen** path ([`crate::lower_trace_frozen`])
//!   against a private decoded copy — decoding is deterministic, so the
//!   builder's pools agree with every VM's pools and the published
//!   artifact's constant indices resolve identically everywhere.
//!
//! Degradation contract: when the queue is full the dispatcher defers
//! the drained signals back into its profiler
//! ([`trace_bcg::BranchCorrelationGraph::defer_signals`]); the next decay
//! cycle re-raises them, so a momentary burst delays construction but
//! never loses it.
//!
//! A session is **per program**: [`jvm_bytecode::BlockId`]s carry no
//! program identity, so VMs running different programs must not share a
//! cache. Each VM must also route *all* of its lookups through the one
//! session cache — the BCG trace-link stamps it writes are only
//! meaningful to the cache that stamped them.

use std::sync::Arc;

use jvm_bytecode::{BlockId, Program};
use jvm_vm::DecodedProgram;
use trace_cache::{
    construction_channel, run_constructor_service, run_supervised_constructor_service,
    BuilderStats, ConstructionQueue, ConstructionReceiver, FaultPlan, ServiceHealth,
    SharedTraceCache, SupervisorConfig, TraceId,
};

use crate::compile::compile_blocks;
use crate::engine::EngineConfig;
use crate::fuse::fuse_trace;
use crate::lower::lower_trace_frozen;
use crate::opt::optimize_trace;
use crate::reg::{lower_reg, TraceArtifact};

/// The shared cache type every concurrent VM dispatches against.
pub type SharedCache = SharedTraceCache<TraceArtifact>;

/// Default bound on the construction queue (snapshot batches in flight).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default per-snapshot node cap (see
/// [`trace_cache::BcgSnapshot::capture_bounded`]).
pub const DEFAULT_SNAPSHOT_LIMIT: usize = 4096;

/// One VM's handle onto a shared session: the cache plus the sending
/// side of the construction queue. Cloned once per worker VM.
#[derive(Clone)]
pub struct SharedSession {
    /// The shared trace cache.
    pub cache: Arc<SharedCache>,
    /// Sending side of the construction queue.
    pub queue: ConstructionQueue,
    /// Node cap applied when capturing signal snapshots.
    pub snapshot_limit: usize,
    /// Health gauges of the (supervised) construction service.
    /// Dispatchers check [`ServiceHealth::is_degraded`] *before*
    /// capturing a snapshot, so a dead constructor stops costing capture
    /// work immediately rather than on the next failed send.
    pub health: Arc<ServiceHealth>,
}

impl SharedSession {
    /// Estimated bytes held by the whole session: shard slot tables,
    /// hash-cons state, `Arc`'d lowered artifacts, and the snapshots
    /// currently in flight on the construction channel.
    pub fn memory_estimate(&self) -> usize {
        self.cache.memory_estimate(|a| a.memory_estimate()) + self.queue.stats().bytes
    }

    /// Bounds the cache's payload bytes (block sequences + lowered
    /// artifacts); inserts beyond the budget evict cold entry links via
    /// the cache's second-chance sweep. `None` removes the bound.
    pub fn set_cache_budget(&self, budget: Option<usize>) {
        self.cache.set_budget(budget, |a| a.memory_estimate());
    }
}

impl std::fmt::Debug for SharedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSession")
            .field("traces", &self.cache.trace_count())
            .field("links", &self.cache.link_count())
            .field("queue", &self.queue.stats())
            .field("snapshot_limit", &self.snapshot_limit)
            .finish()
    }
}

/// Everything a shared deployment needs: the cache, the per-VM session
/// template, and the receiving side to hand the constructor thread.
pub fn shared_session(
    queue_capacity: usize,
) -> (Arc<SharedCache>, SharedSession, ConstructionReceiver) {
    let cache = Arc::new(SharedCache::new());
    let (queue, rx) = construction_channel(queue_capacity);
    let session = SharedSession {
        cache: Arc::clone(&cache),
        queue,
        snapshot_limit: DEFAULT_SNAPSHOT_LIMIT,
        health: Arc::new(ServiceHealth::new()),
    };
    (cache, session, rx)
}

/// The artifact build hook for a shared cache: compile → (optionally)
/// optimize → register-lower (when `reg_ir` is on) → fall back to
/// (optionally) fuse + frozen-lower against a private decoded copy of
/// the program. Returns `None` — an artifact-less trace, which VMs
/// simply keep interpreting — when the block chain no longer matches
/// the program's control flow or when the optimizer invented a constant
/// the frozen pools don't hold.
///
/// Register lowering needs no pool interning at all (constants ride in
/// the per-trace constant table), so it publishes against the read-only
/// decoded copy without any frozen-path caveats.
///
/// The placeholder id stamped into the artifact is never read by the
/// engine (dispatch keys artifacts by the *cache's* id); the cache's
/// hash-consing makes one artifact serve every VM that links the same
/// block chain.
pub fn artifact_builder(
    program: &Program,
    config: EngineConfig,
) -> impl FnMut(&[BlockId]) -> Option<TraceArtifact> + '_ {
    let decoded = DecodedProgram::decode(program);
    move |blocks: &[BlockId]| {
        let mut ct = compile_blocks(program, TraceId::from_raw(u32::MAX), blocks).ok()?;
        if config.optimize {
            optimize_trace(&mut ct);
        }
        if config.reg_ir {
            if let Some(rt) = lower_reg(program, &decoded, &ct) {
                return Some(TraceArtifact::Reg(rt));
            }
        }
        if config.superinstructions {
            fuse_trace(&mut ct);
        }
        lower_trace_frozen(program, &decoded, &ct).map(TraceArtifact::Decoded)
    }
}

/// Runs the construction service for a shared session until every queue
/// handle is dropped; returns the builder's counters. Spawn on a
/// background thread (e.g. inside [`std::thread::scope`]).
pub fn run_shared_constructor(
    rx: ConstructionReceiver,
    cache: &SharedCache,
    program: &Program,
    config: EngineConfig,
) -> BuilderStats {
    run_constructor_service(
        rx,
        cache,
        config.jit.constructor_config(),
        artifact_builder(program, config),
    )
}

/// [`run_shared_constructor`] under supervision: worker panics (real or
/// injected via `faults`) are absorbed and the worker restarted with
/// exponential backoff until `supervisor.max_restarts` is exhausted, at
/// which point `health` flips to permanently degraded, the receiver
/// drops, and every dispatcher falls back to interpreter-only execution
/// — slower, never wrong.
pub fn run_supervised_shared_constructor(
    rx: ConstructionReceiver,
    cache: &SharedCache,
    program: &Program,
    config: EngineConfig,
    supervisor: SupervisorConfig,
    health: &ServiceHealth,
    faults: Option<Arc<FaultPlan>>,
) -> BuilderStats {
    run_supervised_constructor_service(
        rx,
        cache,
        config.jit.constructor_config(),
        supervisor,
        health,
        faults,
        artifact_builder(program, config),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TracingVm;
    use jvm_bytecode::{CmpOp, ProgramBuilder};
    use jvm_vm::{NullObserver, Value, Vm};

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn artifact_builder_lowers_connected_chains_and_rejects_broken_ones() {
        let program = loop_program();
        let blk = |b: u32| BlockId::new(program.entry(), b);
        let mut build = artifact_builder(&program, EngineConfig::paper_default());
        let art = build(&[blk(1), blk(2), blk(1)]).expect("connected chain lowers");
        assert_eq!(art.src_blocks(), vec![blk(1), blk(2), blk(1)]);
        assert!(build(&[blk(0), blk(2)]).is_none(), "disconnected chain");
    }

    #[test]
    fn shared_session_matches_interpreter_semantics() {
        // One VM dispatching against a shared cache, constructor on a
        // background thread: result + checksum must match the plain
        // interpreter bit-for-bit, and traces must actually run.
        let program = loop_program();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(40_000)], &mut NullObserver).unwrap();

        // Cold pass: profile and enqueue while the service drains;
        // dropping the session disconnects the queue and the service
        // exits. Whether this VM itself enters traces is a scheduling
        // race, so only semantics are asserted here.
        let config = EngineConfig::paper_default();
        let (cache, session, rx) = shared_session(DEFAULT_QUEUE_CAPACITY);
        let cold = std::thread::scope(|s| {
            let svc = s.spawn(|| run_shared_constructor(rx, &cache, &program, config));
            let report = {
                let mut vm = TracingVm::new_shared(&program, config, session);
                vm.run(&[Value::Int(40_000)]).unwrap()
            }; // session (queue handle) dropped here → service exits
            let stats = svc.join().expect("constructor thread");
            assert!(stats.traces_created > 0, "constructor must build traces");
            report
        });
        assert_eq!(cold.result, want);
        assert_eq!(cold.exec.instructions, plain.stats().instructions);
        assert!(cache.trace_count() > 0);

        // Warm pass: joining the service is a happens-before for every
        // published trace, so a fresh VM against the populated cache must
        // dispatch them. Its queue is disconnected — submits fail and
        // defer into the profiler, which is the degradation contract.
        let (queue, dead_rx) = construction_channel(1);
        drop(dead_rx);
        let warm_session = SharedSession {
            cache: Arc::clone(&cache),
            queue,
            snapshot_limit: DEFAULT_SNAPSHOT_LIMIT,
            health: Arc::new(ServiceHealth::new()),
        };
        let warm = {
            let mut vm = TracingVm::new_shared(&program, config, warm_session);
            vm.run(&[Value::Int(40_000)]).unwrap()
        };
        assert_eq!(warm.result, want);
        assert!(warm.traces.entered > 0, "shared traces must dispatch");
    }

    #[test]
    fn two_vms_dedup_against_one_cache() {
        // Two VMs running the same workload raise identical construction
        // requests. Keeping the constructor parked until both finish
        // forces the cold case — both VMs profile and submit — and the
        // service must then hash-cons the second VM's chains into the
        // first's traces.
        let program = loop_program();
        let config = EngineConfig::paper_default();
        let (cache, session, rx) = shared_session(DEFAULT_QUEUE_CAPACITY);
        let mut results = Vec::new();
        for _ in 0..2 {
            let mut vm = TracingVm::new_shared(&program, config, session.clone());
            results.push(vm.run(&[Value::Int(40_000)]).unwrap().result);
        }
        assert_eq!(results[0], results[1]);
        drop(session);
        let built = run_shared_constructor(rx, &cache, &program, config);
        assert!(built.traces_created > 0, "first VM's chains must build");
        let stats = cache.stats();
        assert!(
            stats.traces_deduped > 0,
            "second VM's identical chains must hash-cons: {stats:?}"
        );
    }

    /// Satellite regression: once the service is degraded, dispatch must
    /// stop queueing *immediately* — not on the next failed send. The
    /// queue sees zero traffic and the discards are gauged.
    #[test]
    fn degraded_service_stops_snapshot_capture_immediately() {
        let program = loop_program();
        let config = EngineConfig::paper_default();
        let (_cache, session, rx) = shared_session(DEFAULT_QUEUE_CAPACITY);
        drop(rx); // no constructor ever ran
        session.health.mark_degraded();
        let health = Arc::clone(&session.health);
        let queue = session.queue.clone();

        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(40_000)], &mut NullObserver).unwrap();
        let report = {
            let mut vm = TracingVm::new_shared(&program, config, session);
            vm.run(&[Value::Int(40_000)]).unwrap()
        };
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        let qs = queue.stats();
        assert_eq!(
            (qs.submitted, qs.dropped),
            (0, 0),
            "degraded dispatch must never touch the queue: {qs:?}"
        );
        let hs = health.snapshot();
        assert!(hs.degraded_discards > 0, "discards must be gauged: {hs:?}");
    }

    /// Acceptance: killing the constructor mid-run degrades throughput
    /// (no traces are ever built) but never changes results or
    /// deadlocks.
    #[test]
    fn constructor_killed_mid_run_degrades_but_results_match() {
        use trace_cache::{FaultConfig, FaultPlan, SupervisorConfig};
        let program = loop_program();
        let config = EngineConfig::paper_default();
        let (cache, session, rx) = shared_session(DEFAULT_QUEUE_CAPACITY);
        let health = Arc::clone(&session.health);
        let plan = Arc::new(FaultPlan::new(11, FaultConfig::constructor_killer()));
        let supervisor = SupervisorConfig {
            max_restarts: 0,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
        };

        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(40_000)], &mut NullObserver).unwrap();
        let report = std::thread::scope(|s| {
            let h = Arc::clone(&health);
            let c = Arc::clone(&cache);
            let p = &program;
            let svc = s.spawn(move || {
                run_supervised_shared_constructor(rx, &c, p, config, supervisor, &h, Some(plan))
            });
            let report = {
                let mut vm = TracingVm::new_shared(&program, config, session);
                vm.run(&[Value::Int(40_000)]).unwrap()
            }; // dropping the session also ends the service if it never saw a batch
            let stats = svc.join().expect("supervisor must not panic");
            assert_eq!(stats.traces_created, 0, "every batch died mid-build");
            report
        });
        assert_eq!(report.result, want);
        assert_eq!(report.checksum, plain.checksum());
        assert_eq!(cache.trace_count(), 0);
        let hs = health.snapshot();
        assert!(hs.panics >= 1, "the kill fault must have fired: {hs:?}");
        assert!(hs.degraded, "restarts=0 degrades on first panic: {hs:?}");
    }

    /// A trace that side-exits at entry on every dispatch — its path no
    /// longer matches the program flow — is quarantined after a streak,
    /// so dispatch stops paying for it.
    #[test]
    fn repeated_immediate_entry_exits_quarantine_the_trace() {
        let program = loop_program();
        let config = EngineConfig::paper_default();
        let blk = |b: u32| BlockId::new(program.entry(), b);
        let (cache, session, _rx) = shared_session(DEFAULT_QUEUE_CAPACITY);
        // Plant the loop trace by hand. With argument 0 the loop guard
        // fails at entry (0 <= 0 exits immediately), so every dispatch
        // of this trace is an immediate side exit.
        let mut build = artifact_builder(&program, config);
        cache.insert_and_link_with((blk(0), blk(1)), vec![blk(1), blk(2), blk(1)], 0.99, |b| {
            build(b)
        });
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(0)], &mut NullObserver).unwrap();

        let mut vm = TracingVm::new_shared(&program, config, session);
        for run in 0..12 {
            let report = vm.run(&[Value::Int(0)]).unwrap();
            assert_eq!(report.result, want, "run {run}");
        }
        let stats = cache.stats();
        assert_eq!(stats.traces_quarantined, 1, "streak must quarantine");
        assert_eq!(cache.lookup_entry((blk(0), blk(1))), None);
        assert!(!cache.quarantine_snapshot().is_empty());
        // Trace-entry counters are cumulative across the VM's lifetime:
        // once quarantined, further runs must not enter any trace.
        let entered_at_quarantine = vm.run(&[Value::Int(0)]).unwrap().traces.entered;
        let report = vm.run(&[Value::Int(0)]).unwrap();
        assert_eq!(report.traces.entered, entered_at_quarantine);
    }
}

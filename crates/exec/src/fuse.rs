//! Superinstruction fusion for compiled traces.
//!
//! Straight-line trace code is dominated by stack shuffling: `load a;
//! load b; iadd; store d` pushes two values only to pop them again. This
//! pass fuses frequent instruction groups into *superinstructions* that
//! read locals directly and skip the operand stack — the classic
//! threaded-code optimization (Piumarta & Riccardi's selective inlining
//! applies the same idea at the native level), and the reason trace
//! execution can beat per-instruction interpretation.
//!
//! Fusion runs after the peephole [`crate::opt`] pass, never crosses
//! control `TInstr`s, and is **accounting-transparent**: each fused group
//! still counts as its original number of source instructions, and
//! runtime type errors are raised in the same operand order the unfused
//! sequence would raise them.

use jvm_bytecode::Instr;

use crate::compile::{CompiledTrace, TInstr};

/// Binary integer operations a fused group may perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedBin {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl FusedBin {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            FusedBin::Add => a.wrapping_add(b),
            FusedBin::Sub => a.wrapping_sub(b),
            FusedBin::Mul => a.wrapping_mul(b),
            FusedBin::And => a & b,
            FusedBin::Or => a | b,
            FusedBin::Xor => a ^ b,
        }
    }

    fn of(ins: &Instr) -> Option<FusedBin> {
        Some(match ins {
            Instr::IAdd => FusedBin::Add,
            Instr::ISub => FusedBin::Sub,
            Instr::IMul => FusedBin::Mul,
            Instr::IAnd => FusedBin::And,
            Instr::IOr => FusedBin::Or,
            Instr::IXor => FusedBin::Xor,
            _ => return None,
        })
    }
}

/// A fused superinstruction. `width` source instructions each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fused {
    /// `load a; load b; <bin>` → push `bin(l[a], l[b])` (width 3).
    LLBin {
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
        /// Operation.
        op: FusedBin,
    },
    /// `load a; iconst c; <bin>` → push `bin(l[a], c)` (width 3).
    LCBin {
        /// Left operand slot.
        a: u16,
        /// Constant right operand.
        c: i64,
        /// Operation.
        op: FusedBin,
    },
    /// `<bin>; store d` → pop two, store result (width 2).
    BinStore {
        /// Operation.
        op: FusedBin,
        /// Destination slot.
        d: u16,
    },
    /// `load a; store d` → register move (width 2).
    Move {
        /// Source slot.
        a: u16,
        /// Destination slot.
        d: u16,
    },
    /// `iconst c; store d` → load immediate (width 2).
    ConstStore {
        /// Constant.
        c: i64,
        /// Destination slot.
        d: u16,
    },
    /// `load a; load b` → two pushes (width 2; the fallback pair).
    LoadLoad {
        /// First slot.
        a: u16,
        /// Second slot.
        b: u16,
    },
    /// `load arr; load idx; aload` → push `arr[idx]` (width 3).
    ArrayGet {
        /// Array-reference slot.
        arr: u16,
        /// Index slot.
        idx: u16,
    },
    /// `load arr; load idx; load val; astore` → `arr[idx] = l[val]`
    /// (width 4).
    ArraySet {
        /// Array-reference slot.
        arr: u16,
        /// Index slot.
        idx: u16,
        /// Value slot.
        val: u16,
    },
}

impl Fused {
    /// Number of source instructions this group stands for (used for
    /// instruction accounting).
    pub fn width(self) -> u64 {
        match self {
            Fused::ArraySet { .. } => 4,
            Fused::LLBin { .. } | Fused::LCBin { .. } | Fused::ArrayGet { .. } => 3,
            Fused::BinStore { .. }
            | Fused::Move { .. }
            | Fused::ConstStore { .. }
            | Fused::LoadLoad { .. } => 2,
        }
    }
}

/// Fusion statistics for one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Compiled instructions before fusion.
    pub before: usize,
    /// Compiled instructions after fusion.
    pub after: usize,
    /// Superinstructions created.
    pub fused_groups: u64,
}

fn as_op(t: &TInstr) -> Option<&Instr> {
    match t {
        TInstr::Op(i) => Some(i),
        _ => None,
    }
}

/// Fuses instruction groups in place; returns the statistics.
///
/// Widest-match-first over each straight-line window: triples
/// (`LLBin`/`LCBin`), then pairs.
pub fn fuse_trace(trace: &mut CompiledTrace) -> FuseStats {
    let code = &mut trace.code;
    let mut stats = FuseStats {
        before: code.len(),
        ..FuseStats::default()
    };
    let mut out: Vec<TInstr> = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        // Quads: the array-store idiom `arr[idx] = l[val]`.
        if i + 3 < code.len() {
            if let (Some(w), Some(x), Some(y), Some(z)) = (
                as_op(&code[i]),
                as_op(&code[i + 1]),
                as_op(&code[i + 2]),
                as_op(&code[i + 3]),
            ) {
                if let (Instr::Load(arr), Instr::Load(idx), Instr::Load(val), Instr::AStore) =
                    (w, x, y, z)
                {
                    out.push(TInstr::Fused(Fused::ArraySet {
                        arr: *arr,
                        idx: *idx,
                        val: *val,
                    }));
                    stats.fused_groups += 1;
                    i += 4;
                    continue;
                }
            }
        }
        // Triples.
        if i + 2 < code.len() {
            if let (Some(x), Some(y), Some(z)) =
                (as_op(&code[i]), as_op(&code[i + 1]), as_op(&code[i + 2]))
            {
                let fused = match (x, y, FusedBin::of(z)) {
                    (Instr::Load(a), Instr::Load(b), Some(op)) => {
                        Some(Fused::LLBin { a: *a, b: *b, op })
                    }
                    (Instr::Load(a), Instr::IConst(c), Some(op)) => {
                        Some(Fused::LCBin { a: *a, c: *c, op })
                    }
                    (Instr::Load(arr), Instr::Load(idx), None) if *z == Instr::ALoad => {
                        Some(Fused::ArrayGet {
                            arr: *arr,
                            idx: *idx,
                        })
                    }
                    _ => None,
                };
                if let Some(f) = fused {
                    out.push(TInstr::Fused(f));
                    stats.fused_groups += 1;
                    i += 3;
                    continue;
                }
            }
        }
        // Pairs.
        if i + 1 < code.len() {
            if let (Some(x), Some(y)) = (as_op(&code[i]), as_op(&code[i + 1])) {
                let fused = match (x, y) {
                    (Instr::Load(a), Instr::Store(d)) => Some(Fused::Move { a: *a, d: *d }),
                    (Instr::IConst(c), Instr::Store(d)) => Some(Fused::ConstStore { c: *c, d: *d }),
                    (bin, Instr::Store(d)) => {
                        FusedBin::of(bin).map(|op| Fused::BinStore { op, d: *d })
                    }
                    (Instr::Load(a), Instr::Load(b)) => {
                        // Defer when a wider pattern could start at i+1
                        // (e.g. `load; load; aload` one position later):
                        // greedily pairing here would break it.
                        let defer = matches!(
                            code.get(i + 2).and_then(as_op),
                            Some(Instr::ALoad) | Some(Instr::Load(_))
                        );
                        if defer {
                            None
                        } else {
                            Some(Fused::LoadLoad { a: *a, b: *b })
                        }
                    }
                    _ => None,
                };
                if let Some(f) = fused {
                    out.push(TInstr::Fused(f));
                    stats.fused_groups += 1;
                    i += 2;
                    continue;
                }
            }
        }
        out.push(code[i].clone());
        i += 1;
    }
    *code = out;
    stats.after = code.len();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_cache::TraceId;

    fn trace_of(code: Vec<TInstr>) -> CompiledTrace {
        CompiledTrace {
            trace_id: TraceId::from_raw(0),
            code,
            src_blocks: Vec::new(),
            src_instrs: 0,
        }
    }

    fn op(i: Instr) -> TInstr {
        TInstr::Op(i)
    }

    #[test]
    fn fuses_load_load_bin_triple() {
        let mut t = trace_of(vec![
            op(Instr::Load(0)),
            op(Instr::Load(1)),
            op(Instr::IAdd),
        ]);
        let s = fuse_trace(&mut t);
        assert_eq!(
            t.code,
            vec![TInstr::Fused(Fused::LLBin {
                a: 0,
                b: 1,
                op: FusedBin::Add
            })]
        );
        assert_eq!(s.fused_groups, 1);
        assert_eq!(s.before, 3);
        assert_eq!(s.after, 1);
    }

    #[test]
    fn fuses_load_const_bin_and_leaves_tail_store() {
        let mut t = trace_of(vec![
            op(Instr::Load(2)),
            op(Instr::IConst(256)),
            op(Instr::IMul),
            op(Instr::Load(3)),
            op(Instr::Load(4)),
            op(Instr::IXor),
            op(Instr::Store(5)),
        ]);
        fuse_trace(&mut t);
        assert_eq!(
            t.code,
            vec![
                TInstr::Fused(Fused::LCBin {
                    a: 2,
                    c: 256,
                    op: FusedBin::Mul
                }),
                // The triple consumed the xor; the trailing store stays.
                TInstr::Fused(Fused::LLBin {
                    a: 3,
                    b: 4,
                    op: FusedBin::Xor
                }),
                op(Instr::Store(5)),
            ]
        );
    }

    #[test]
    fn bin_store_pair_fuses_when_no_triple_applies() {
        let mut t = trace_of(vec![op(Instr::Dup), op(Instr::IAdd), op(Instr::Store(1))]);
        fuse_trace(&mut t);
        assert_eq!(
            t.code,
            vec![
                op(Instr::Dup),
                TInstr::Fused(Fused::BinStore {
                    op: FusedBin::Add,
                    d: 1
                }),
            ]
        );
    }

    #[test]
    fn fuses_moves_and_const_stores() {
        let mut t = trace_of(vec![
            op(Instr::Load(0)),
            op(Instr::Store(1)),
            op(Instr::IConst(7)),
            op(Instr::Store(2)),
        ]);
        let s = fuse_trace(&mut t);
        assert_eq!(
            t.code,
            vec![
                TInstr::Fused(Fused::Move { a: 0, d: 1 }),
                TInstr::Fused(Fused::ConstStore { c: 7, d: 2 }),
            ]
        );
        assert_eq!(s.fused_groups, 2);
    }

    #[test]
    fn control_instructions_are_barriers() {
        let mut t = trace_of(vec![
            op(Instr::Load(0)),
            TInstr::FallThrough,
            op(Instr::Load(1)),
            op(Instr::IAdd),
        ]);
        fuse_trace(&mut t);
        // Load(1)+IAdd is only a pair when a third op precedes; across the
        // barrier nothing fuses into a triple, and (IAdd) alone can't pair
        // with Load(1) under any rule — expect barrier-preserving output.
        assert!(matches!(t.code[1], TInstr::FallThrough));
        assert_eq!(t.code.len(), 4);
    }

    #[test]
    fn fuses_array_get_and_set() {
        let mut t = trace_of(vec![
            op(Instr::Load(0)),
            op(Instr::Load(1)),
            op(Instr::ALoad),
            op(Instr::Load(0)),
            op(Instr::Load(1)),
            op(Instr::Load(2)),
            op(Instr::AStore),
        ]);
        let s = fuse_trace(&mut t);
        assert_eq!(
            t.code,
            vec![
                TInstr::Fused(Fused::ArrayGet { arr: 0, idx: 1 }),
                TInstr::Fused(Fused::ArraySet {
                    arr: 0,
                    idx: 1,
                    val: 2
                }),
            ]
        );
        assert_eq!(s.fused_groups, 2);
    }

    #[test]
    fn widths_cover_accounting() {
        assert_eq!(
            Fused::LLBin {
                a: 0,
                b: 0,
                op: FusedBin::Add
            }
            .width(),
            3
        );
        assert_eq!(Fused::Move { a: 0, d: 0 }.width(), 2);
        assert_eq!(Fused::LoadLoad { a: 0, b: 0 }.width(), 2);
    }

    #[test]
    fn bin_semantics_match_instructions() {
        assert_eq!(FusedBin::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(FusedBin::Sub.apply(3, 5), -2);
        assert_eq!(FusedBin::Mul.apply(1 << 62, 4), 0);
        assert_eq!(FusedBin::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(FusedBin::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(FusedBin::Xor.apply(0b1100, 0b1010), 0b0110);
    }
}

//! Trace flattening: from a block sequence to guarded straight-line code.
//!
//! A compiled trace mirrors the exact instruction sequence the program
//! executes along the trace's path. Control instructions are rewritten:
//!
//! | source terminator | compiled form |
//! |---|---|
//! | conditional branch | [`TInstr::GuardCond`] — side-exits if the outcome differs from the recorded direction |
//! | `goto` | [`TInstr::Jump`] — keeps `pc` in sync, no guard needed |
//! | implicit fall-through | [`TInstr::FallThrough`] — block-boundary marker |
//! | `tableswitch` | [`TInstr::GuardSwitch`] — side-exits unless the selector lands on the recorded target |
//! | `invokestatic` | [`TInstr::EnterStatic`] — pushes the callee frame (its entry block is the next trace block by construction) |
//! | `invokevirtual` | [`TInstr::GuardVirtual`] — side-exits unless the receiver resolves to the recorded callee |
//! | `return` | [`TInstr::GuardReturn`] — side-exits unless the caller's continuation is the recorded next block |
//! | last block's terminator | [`TInstr::Finish`] — executed with full interpreter semantics; the trace then completes |
//!
//! After compilation the [`crate::fuse`] pass may additionally collapse
//! straight-line instruction groups into [`TInstr::Fused`]
//! superinstructions.
//!
//! Every control `TInstr` carries its source location and re-anchors the
//! frame's `pc` before evaluating, so side exits resume the interpreter
//! at exactly the guarded instruction with the operand stack untouched —
//! this is also what makes the [`crate::opt`] peephole passes safe.

use std::error::Error;
use std::fmt;

use jvm_bytecode::{BlockId, CmpOp, FuncId, Instr, Program};
use trace_cache::{Trace, TraceId};

/// The shape of a guarded conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// Two-int comparison (`if_icmp`).
    ICmp(CmpOp),
    /// Int-vs-zero comparison (`if`).
    IZero(CmpOp),
    /// Two-float comparison (`if_fcmp`).
    FCmp(CmpOp),
    /// `if_null`.
    Null,
    /// `if_nonnull`.
    NonNull,
}

impl CondKind {
    /// Number of operands the branch pops.
    pub fn arity(self) -> usize {
        match self {
            CondKind::ICmp(_) | CondKind::FCmp(_) => 2,
            CondKind::IZero(_) | CondKind::Null | CondKind::NonNull => 1,
        }
    }
}

/// One instruction of a compiled trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TInstr {
    /// A plain (branch-free) instruction, executed exactly as the
    /// interpreter would.
    Op(Instr),
    /// Guarded conditional branch: continue in-trace if the outcome
    /// equals `expected_taken`, otherwise side-exit at (`func`, `pc`).
    GuardCond {
        /// Branch shape.
        kind: CondKind,
        /// Direction the trace recorded.
        expected_taken: bool,
        /// Target pc when taken (applied on a taken pass).
        target: u32,
        /// Owning function.
        func: FuncId,
        /// Source pc (side-exit resume point).
        pc: u32,
    },
    /// Unconditional jump (a `goto` inside the trace): sets `pc`.
    Jump {
        /// Jump target pc.
        target: u32,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// Block boundary with fall-through (no control transfer).
    FallThrough,
    /// Guarded `tableswitch`: side-exit unless the selector maps to
    /// `expected_pc`.
    GuardSwitch {
        /// Lowest selector mapped to `targets[0]`.
        low: i64,
        /// Jump table.
        targets: Box<[u32]>,
        /// Out-of-range target.
        default: u32,
        /// The pc the trace expects the switch to select.
        expected_pc: u32,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// Static call whose callee body continues the trace.
    EnterStatic {
        /// The callee.
        callee: FuncId,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// Virtual call with a receiver guard: side-exit unless dispatch
    /// resolves to `expected`.
    GuardVirtual {
        /// Vtable slot.
        slot: u16,
        /// Argument count including the receiver.
        argc: u16,
        /// Callee the trace recorded.
        expected: FuncId,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// Return with a continuation guard: side-exit unless the caller
    /// resumes in `expected`.
    GuardReturn {
        /// The continuation block the trace recorded.
        expected: BlockId,
        /// Whether a value is returned.
        has_value: bool,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// The final block's terminator, executed with full interpreter
    /// semantics; afterwards the trace has completed.
    Finish {
        /// The terminator instruction.
        instr: Instr,
        /// Owning function.
        func: FuncId,
        /// Source pc.
        pc: u32,
    },
    /// A fused superinstruction standing for several source instructions
    /// (see [`crate::fuse`]).
    Fused(crate::fuse::Fused),
}

impl TInstr {
    /// Whether this compiled instruction ends a source basic block (used
    /// for per-block accounting during trace execution).
    pub fn ends_block(&self) -> bool {
        !matches!(self, TInstr::Op(_) | TInstr::Fused(_))
    }
}

/// A trace flattened to guarded straight-line code.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    /// The cache id this was compiled from.
    pub trace_id: TraceId,
    /// The guarded instruction sequence.
    pub code: Vec<TInstr>,
    /// The source block sequence (owned copy so the execution engine
    /// needs no cache access on the hot path).
    pub src_blocks: Vec<BlockId>,
    /// Source instruction count across all blocks (pre-optimisation
    /// baseline for the optimizer's statistics).
    pub src_instrs: usize,
}

impl CompiledTrace {
    /// Number of source basic blocks.
    pub fn blocks(&self) -> usize {
        self.src_blocks.len()
    }
}

/// Error compiling a trace whose block sequence is inconsistent with the
/// program's control flow (cannot arise from traces built over observed
/// dispatch streams, but the compiler verifies rather than trusts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What was inconsistent.
    pub reason: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace is inconsistent with program flow: {}",
            self.reason
        )
    }
}

impl Error for CompileError {}

fn err<T>(reason: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        reason: reason.into(),
    })
}

/// Compiles a cached trace against its program.
///
/// # Errors
///
/// Returns [`CompileError`] if consecutive trace blocks are not connected
/// by the program's control flow.
pub fn compile(program: &Program, trace: &Trace) -> Result<CompiledTrace, CompileError> {
    compile_blocks(program, trace.id(), trace.blocks())
}

/// Compiles a raw block sequence — the same pass as [`compile`], for
/// callers holding only the blocks (e.g. the off-thread artifact builder,
/// which lowers against a shared cache that hands its build hook a block
/// slice rather than a [`Trace`]).
///
/// # Errors
///
/// Returns [`CompileError`] if consecutive blocks are not connected by
/// the program's control flow.
pub fn compile_blocks(
    program: &Program,
    trace_id: TraceId,
    blocks: &[BlockId],
) -> Result<CompiledTrace, CompileError> {
    let mut code: Vec<TInstr> = Vec::new();
    let mut src_instrs = 0usize;

    for (i, &blk) in blocks.iter().enumerate() {
        let func = program.function(blk.func);
        let block = func.block(blk.block);
        src_instrs += block.len() as usize;
        let last_block = i + 1 == blocks.len();
        let next = blocks.get(i + 1).copied();

        for pc in block.start..block.end {
            let ins = &func.code()[pc as usize];
            let is_term = pc == block.end - 1;
            if !is_term {
                code.push(TInstr::Op(ins.clone()));
                continue;
            }
            if last_block {
                code.push(TInstr::Finish {
                    instr: ins.clone(),
                    func: blk.func,
                    pc,
                });
                break;
            }
            let next = next.expect("non-last block has a successor");
            let cond = |kind: CondKind, target: u32| -> Result<TInstr, CompileError> {
                let taken = BlockId::new(blk.func, func.block_index_of(target));
                let fall = BlockId::new(blk.func, func.block_index_of(pc + 1));
                if taken == fall {
                    // Degenerate branch to the very next instruction: both
                    // outcomes stay on the trace. Guarding on "taken" is
                    // still *correct* (a false outcome side-exits and the
                    // interpreter resumes at the branch), merely
                    // conservative for this rare shape.
                    if next != taken {
                        return err(format!("branch at {}:{pc} cannot reach {next}", blk.func));
                    }
                    return Ok(TInstr::GuardCond {
                        kind,
                        expected_taken: true,
                        target,
                        func: blk.func,
                        pc,
                    });
                }
                let expected_taken = if next == taken {
                    true
                } else if next == fall {
                    false
                } else {
                    return err(format!("branch at {}:{pc} cannot reach {next}", blk.func));
                };
                Ok(TInstr::GuardCond {
                    kind,
                    expected_taken,
                    target,
                    func: blk.func,
                    pc,
                })
            };
            match ins {
                Instr::IfICmp(op, t) => code.push(cond(CondKind::ICmp(*op), *t)?),
                Instr::IfI(op, t) => code.push(cond(CondKind::IZero(*op), *t)?),
                Instr::IfFCmp(op, t) => code.push(cond(CondKind::FCmp(*op), *t)?),
                Instr::IfNull(t) => code.push(cond(CondKind::Null, *t)?),
                Instr::IfNonNull(t) => code.push(cond(CondKind::NonNull, *t)?),
                Instr::Goto(t) => {
                    let target_block = BlockId::new(blk.func, func.block_index_of(*t));
                    if next != target_block {
                        return err(format!(
                            "goto at {}:{pc} targets {target_block}, trace expects {next}",
                            blk.func
                        ));
                    }
                    code.push(TInstr::Jump {
                        target: *t,
                        func: blk.func,
                        pc,
                    });
                }
                Instr::TableSwitch {
                    low,
                    targets,
                    default,
                } => {
                    if next.func != blk.func {
                        return err("switch successor must stay in the function");
                    }
                    let expected_pc = func.block(next.block).start;
                    let reachable = targets
                        .iter()
                        .chain(std::iter::once(default))
                        .any(|&t| func.block_index_of(t) == next.block);
                    if !reachable {
                        return err(format!("switch at {}:{pc} cannot reach {next}", blk.func));
                    }
                    code.push(TInstr::GuardSwitch {
                        low: *low,
                        targets: targets.clone(),
                        default: *default,
                        expected_pc,
                        func: blk.func,
                        pc,
                    });
                }
                Instr::InvokeStatic(callee) => {
                    if next != BlockId::new(*callee, 0) {
                        return err(format!(
                            "static call at {}:{pc} enters {callee}, trace expects {next}",
                            blk.func
                        ));
                    }
                    code.push(TInstr::EnterStatic {
                        callee: *callee,
                        func: blk.func,
                        pc,
                    });
                }
                Instr::InvokeVirtual { slot, argc } => {
                    if next.block != 0 {
                        return err(format!("virtual call at {}:{pc} must enter a function entry, trace expects {next}", blk.func));
                    }
                    code.push(TInstr::GuardVirtual {
                        slot: *slot,
                        argc: *argc,
                        expected: next.func,
                        func: blk.func,
                        pc,
                    });
                }
                Instr::Return | Instr::ReturnVoid => {
                    code.push(TInstr::GuardReturn {
                        expected: next,
                        has_value: matches!(ins, Instr::Return),
                        func: blk.func,
                        pc,
                    });
                }
                other => {
                    // Implicit fall-through into a leader.
                    let fall = BlockId::new(blk.func, func.block_index_of(pc + 1));
                    if next != fall {
                        return err(format!(
                            "fall-through at {}:{pc} reaches {fall}, trace expects {next}",
                            blk.func
                        ));
                    }
                    code.push(TInstr::Op(other.clone()));
                    code.push(TInstr::FallThrough);
                }
            }
        }
    }

    Ok(CompiledTrace {
        trace_id,
        code,
        src_blocks: blocks.to_vec(),
        src_instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::ProgramBuilder;
    use trace_cache::TraceCache;

    /// Loop program whose hot path we can trace by hand.
    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit); // b1: cond
        b.load(acc).load(0).iadd().store(acc); // b2 …
        b.iinc(0, -1).goto(head); // … goto
        b.bind(exit);
        b.load(acc).ret(); // b3
        pb.build(f).unwrap()
    }

    fn blk(p: &Program, b: u32) -> BlockId {
        BlockId::new(p.entry(), b)
    }

    fn make_trace(p: &Program, blocks: Vec<BlockId>) -> (TraceCache, TraceId) {
        let mut cache = TraceCache::new();
        let entry = (blocks[0], blocks[0]); // entry branch unused by compile
        let _ = entry;
        let (id, _) = cache.insert_and_link((blk(p, 0), blocks[0]), blocks, 0.99);
        (cache, id)
    }

    #[test]
    fn loop_body_compiles_with_guard_and_jump() {
        let p = loop_program();
        // Trace: b1 (cond, not taken) -> b2 (goto) -> b1.
        let (cache, id) = make_trace(&p, vec![blk(&p, 1), blk(&p, 2), blk(&p, 1)]);
        let ct = compile(&p, cache.trace(id)).unwrap();
        assert_eq!(ct.blocks(), 3);
        // b1: load + guard(not taken); b2: 5 ops + jump; b1 again: load + finish.
        let guards = ct
            .code
            .iter()
            .filter(|t| matches!(t, TInstr::GuardCond { .. }))
            .count();
        assert_eq!(guards, 1);
        assert!(matches!(
            ct.code
                .iter()
                .find(|t| matches!(t, TInstr::GuardCond { .. })),
            Some(TInstr::GuardCond {
                expected_taken: false,
                ..
            })
        ));
        assert_eq!(
            ct.code
                .iter()
                .filter(|t| matches!(t, TInstr::Jump { .. }))
                .count(),
            1
        );
        assert!(matches!(ct.code.last(), Some(TInstr::Finish { .. })));
        assert_eq!(ct.src_instrs, 2 + 6 + 2);
    }

    #[test]
    fn taken_branch_direction_is_recorded() {
        let p = loop_program();
        // Trace: b1 -> b3 (exit taken).
        let (cache, id) = make_trace(&p, vec![blk(&p, 1), blk(&p, 3)]);
        let ct = compile(&p, cache.trace(id)).unwrap();
        assert!(ct.code.iter().any(|t| matches!(
            t,
            TInstr::GuardCond {
                expected_taken: true,
                ..
            }
        )));
    }

    #[test]
    fn inconsistent_successor_is_rejected() {
        let p = loop_program();
        // b2 ends with goto b1; pretending it flows to b3 must fail.
        let (cache, id) = make_trace(&p, vec![blk(&p, 2), blk(&p, 3)]);
        assert!(compile(&p, cache.trace(id)).is_err());
    }

    #[test]
    fn call_and_return_compile_to_guards() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare_function("leaf", 0, true);
        pb.function_mut(leaf).iconst(5).ret();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f).invoke_static(leaf).ret();
        let p = pb.build(f).unwrap();
        let mut cache = TraceCache::new();
        let (id, _) = cache.insert_and_link(
            (BlockId::new(f, 0), BlockId::new(f, 0)),
            vec![
                BlockId::new(f, 0),
                BlockId::new(leaf, 0),
                BlockId::new(f, 1),
            ],
            0.99,
        );
        let ct = compile(&p, cache.trace(id)).unwrap();
        assert!(ct
            .code
            .iter()
            .any(|t| matches!(t, TInstr::EnterStatic { .. })));
        assert!(ct
            .code
            .iter()
            .any(|t| matches!(t, TInstr::GuardReturn { .. })));
        assert!(matches!(ct.code.last(), Some(TInstr::Finish { .. })));
    }

    #[test]
    fn cond_kind_arity() {
        assert_eq!(CondKind::ICmp(CmpOp::Eq).arity(), 2);
        assert_eq!(CondKind::FCmp(CmpOp::Lt).arity(), 2);
        assert_eq!(CondKind::IZero(CmpOp::Gt).arity(), 1);
        assert_eq!(CondKind::Null.arity(), 1);
    }

    #[test]
    fn ends_block_classification() {
        assert!(!TInstr::Op(Instr::Nop).ends_block());
        assert!(TInstr::FallThrough.ends_block());
        assert!(TInstr::Jump {
            target: 0,
            func: FuncId(0),
            pc: 0
        }
        .ends_block());
    }
}

//! Register-machine lowering: from guarded stack code to a virtual-
//! register linear IR.
//!
//! [`crate::compile`] produces straight-line stack code ([`TInstr`] over
//! source instructions), and the decoded lowering ([`crate::lower`])
//! executes it one stack push/pop at a time. A real tracing JIT resolves
//! that operand traffic *at compile time*: inside a trace every value's
//! producer and consumer are known, so stack slots can be renamed to
//! virtual registers and the pushes and pops deleted (the coldbrew and
//! b3-rs pipelines in SNIPPETS.md §1/§3 are the exemplars). This pass
//! runs an abstract interpretation of the operand stack over the
//! compiled trace:
//!
//! * each stack slot is renamed to a fresh virtual register (SSA-style:
//!   every [`RInstr`] writes a new register), so `load a; load b; iadd;
//!   store d` becomes one three-address [`RInstr::Bin`];
//! * locals are renamed too — a `load` of a slot the trace already holds
//!   in a register is deleted outright, and `store`s merely rebind the
//!   rename table (marking the slot *dirty*);
//! * constants are pre-resolved out of the pools into a per-trace
//!   constant table, loaded into the register file once at entry;
//! * compare-and-branch pairs collapse into single guard ops on
//!   registers ([`RInstr::GuardCond`]/[`RInstr::GuardSwitch`]);
//! * every guard carries a side-exit record ([`RExit`]) with a
//!   [`FrameImage`]: the dirty local slots to write back and the
//!   register list to push, reconstructing the operand-stack frame the
//!   interpreter expects at exactly the guarded instruction. Deopt is
//!   therefore transparent: the resumed interpreter re-executes the
//!   guarded instruction with identical semantics.
//!
//! **Accounting transparency.** Deleted instructions still cost fuel:
//! every eliminated op adds one to the *weight* of the next emitted
//! instruction (`w`), and guards carry the accumulated weight of the
//! eliminated ops before them (`pre`), charged before the guard
//! evaluates. Batching is observationally identical to per-op ticking —
//! only the last tick of a batch can fail, and both schemes leave the
//! instruction counter saturated at the fuel limit — so the unoptimized
//! register path executes *exactly* the interpreter's instruction count,
//! a property the differential tests pin down.
//!
//! **Trace entry mid-function.** A trace may start at a block whose
//! entry stack depth is nonzero. The lowering seeds its model from the
//! verifier's per-pc depth map ([`jvm_bytecode::stack_depths`]) and
//! pulls real entry-stack values into registers lazily
//! ([`RInstr::PullStack`]) only when an instruction actually consumes
//! one.
//!
//! **Calls.** Static calls and guarded virtual calls materialize the
//! caller frame (arguments must cross the real stack into the callee
//! frame), then continue lowering in a fresh callee context. In-trace
//! returns whose continuation is statically known ([`RInstr::RetStatic`])
//! pop the frame with the return value staying in a register; returns
//! from the trace's entry depth keep a runtime continuation guard.
//!
//! **Allocation safety.** `new`/`newarray` may trigger a collection, and
//! the collector roots only real frames — so both materialize the full
//! frame image first, collect, then truncate the stack back. Lowering is
//! sequential, so any register a later instruction reads is still
//! referenced by the abstract state at every allocation point and thus
//! rooted through the materialized frame.
//!
//! Lowering is *total* on the traces the engine compiles, with a few
//! `None` fallbacks (the engine then runs the decoded form instead): an
//! in-trace return whose recorded continuation contradicts the static
//! call site, a continuation block whose entry depth is unreachable in
//! the depth map, and register-file overflow.

use std::collections::HashMap;

use jvm_bytecode::{stack_depths, BlockId, ClassId, CmpOp, FuncId, Instr, Intrinsic, Program};
use jvm_vm::{DOp, DecodedProgram, Value};
use trace_cache::TraceId;

use crate::compile::{CompiledTrace, CondKind, TInstr};
use crate::lower::LoweredTrace;

/// A virtual register index into the trace's flat register file.
pub type Reg = u16;

/// Binary operations a [`RInstr::Bin`] may perform (three-address form
/// of the stack binops; division and remainder trap on zero exactly as
/// the interpreter does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RBin {
    /// Wrapping integer add.
    IAdd,
    /// Wrapping integer subtract.
    ISub,
    /// Wrapping integer multiply.
    IMul,
    /// Integer divide; traps on zero.
    IDiv,
    /// Integer remainder; traps on zero.
    IRem,
    /// Shift left (count masked to 63 bits).
    IShl,
    /// Arithmetic shift right (count masked).
    IShr,
    /// Logical shift right (count masked).
    IUShr,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide (IEEE; never traps).
    FDiv,
}

impl RBin {
    fn of(ins: &Instr) -> Option<RBin> {
        Some(match ins {
            Instr::IAdd => RBin::IAdd,
            Instr::ISub => RBin::ISub,
            Instr::IMul => RBin::IMul,
            Instr::IDiv => RBin::IDiv,
            Instr::IRem => RBin::IRem,
            Instr::IShl => RBin::IShl,
            Instr::IShr => RBin::IShr,
            Instr::IUShr => RBin::IUShr,
            Instr::IAnd => RBin::IAnd,
            Instr::IOr => RBin::IOr,
            Instr::IXor => RBin::IXor,
            Instr::FAdd => RBin::FAdd,
            Instr::FSub => RBin::FSub,
            Instr::FMul => RBin::FMul,
            Instr::FDiv => RBin::FDiv,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            RBin::IAdd => "iadd",
            RBin::ISub => "isub",
            RBin::IMul => "imul",
            RBin::IDiv => "idiv",
            RBin::IRem => "irem",
            RBin::IShl => "ishl",
            RBin::IShr => "ishr",
            RBin::IUShr => "iushr",
            RBin::IAnd => "iand",
            RBin::IOr => "ior",
            RBin::IXor => "ixor",
            RBin::FAdd => "fadd",
            RBin::FSub => "fsub",
            RBin::FMul => "fmul",
            RBin::FDiv => "fdiv",
        }
    }
}

/// Unary operations a [`RInstr::Un`] may perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RUn {
    /// Wrapping integer negate.
    INeg,
    /// Float negate.
    FNeg,
    /// Int to float.
    I2F,
    /// Float to int (truncating `as i64` cast, saturating).
    F2I,
}

impl RUn {
    fn name(self) -> &'static str {
        match self {
            RUn::INeg => "ineg",
            RUn::FNeg => "fneg",
            RUn::I2F => "i2f",
            RUn::F2I => "f2i",
        }
    }
}

/// How to rebuild the interpreter's frame from the register file: the
/// local slots the trace holds newer values for, and the register list
/// to push onto the (partially real) operand stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameImage {
    /// Number of *real* (never pulled) values already on the frame's
    /// operand stack at this point; the registers in `stack` sit above
    /// them.
    pub base: u32,
    /// Registers to push, bottom to top.
    pub stack: Box<[Reg]>,
    /// `(local slot, register)` pairs to write back, ascending by slot.
    pub dirty: Box<[(u16, Reg)]>,
}

/// A side-exit record: where the interpreter resumes when a guard fails,
/// plus the frame image and the per-block accounting at that point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RExit {
    /// Function owning the guarded instruction.
    pub func: FuncId,
    /// Decoded index of the guarded instruction (the resume point, past
    /// its block's entry marker).
    pub dpc: u32,
    /// Block index containing it (the dispatch accounted eagerly at the
    /// exit).
    pub block: u32,
    /// Source blocks fully executed before the guard (static — guards
    /// sit at known positions in the trace).
    pub blocks_done: u32,
    /// Index into [`RegTrace::images`].
    pub image: u32,
}

/// One instruction of a register-lowered trace. Operands are virtual
/// registers; `w` is the fuel weight (this instruction plus the
/// eliminated stack ops folded into it), `pre` a guard's pre-evaluation
/// weight, `exit` an index into [`RegTrace::exits`], `image` an index
/// into [`RegTrace::images`].
#[derive(Debug, Clone, PartialEq)]
pub enum RInstr {
    /// Pop one *real* entry-stack value into `dst`. Pure data movement —
    /// never costs fuel.
    PullStack {
        /// Destination register.
        dst: Reg,
    },
    /// `dst = locals[slot]` — first read of a local the trace has not
    /// renamed yet.
    LoadLocal {
        /// Local slot.
        slot: u16,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = locals[slot] + imm` — an `iinc` of an unrenamed local.
    IncLocal {
        /// Local slot.
        slot: u16,
        /// Destination register.
        dst: Reg,
        /// Increment.
        imm: i32,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = src + imm` — an `iinc` of a renamed local.
    IncReg {
        /// Current register of the local.
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Increment.
        imm: i32,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = a <op> b` — three-address binary op.
    Bin {
        /// Operation.
        op: RBin,
        /// Left operand.
        a: Reg,
        /// Right operand (type-checked first, matching interpreter pop
        /// order).
        b: Reg,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = <op> a` — unary op.
    Un {
        /// Operation.
        op: RUn,
        /// Operand.
        a: Reg,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// An intrinsic over registers; `dst` is written only when the
    /// intrinsic returns a value.
    Intrinsic {
        /// The intrinsic.
        i: Intrinsic,
        /// First operand.
        a: Reg,
        /// Second operand for two-argument intrinsics (type-checked
        /// first, matching pop order).
        b: Reg,
        /// Destination register (unused unless the intrinsic returns).
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = obj.field`.
    GetField {
        /// Object reference register.
        obj: Reg,
        /// Field index.
        field: u16,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `obj.field = val`.
    PutField {
        /// Object reference register.
        obj: Reg,
        /// Value register.
        val: Reg,
        /// Field index.
        field: u16,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = arr[idx]`.
    ALoad {
        /// Array reference register.
        arr: Reg,
        /// Index register.
        idx: Reg,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `arr[idx] = val`.
    AStore {
        /// Array reference register.
        arr: Reg,
        /// Index register.
        idx: Reg,
        /// Value register.
        val: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// `dst = arr.length`.
    ArrayLen {
        /// Array reference register.
        arr: Reg,
        /// Destination register.
        dst: Reg,
        /// Fuel weight.
        w: u32,
    },
    /// Allocate an object. Materializes `image` first (collection
    /// roots), collects if due, then truncates the stack back.
    NewObj {
        /// Class to instantiate.
        class: ClassId,
        /// Field count (resolved at lowering).
        nfields: u16,
        /// Destination register.
        dst: Reg,
        /// Frame image for collection rooting.
        image: u32,
        /// Fuel weight.
        w: u32,
    },
    /// Allocate an array of length `regs[len]`; same rooting protocol.
    NewArray {
        /// Length register.
        len: Reg,
        /// Destination register.
        dst: Reg,
        /// Frame image for collection rooting.
        image: u32,
        /// Fuel weight.
        w: u32,
    },
    /// Fused compare-and-branch guard: side-exit unless the comparison
    /// outcome equals `expected_taken`.
    GuardCond {
        /// Branch shape.
        kind: CondKind,
        /// Left operand (unary kinds use only `a`).
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Direction the trace recorded.
        expected_taken: bool,
        /// Side-exit record.
        exit: u32,
        /// Pre-evaluation fuel weight.
        pre: u32,
    },
    /// Guarded `tableswitch` on a register selector; targets are decoded
    /// marker indices (injective over blocks, so comparing them is
    /// comparing successor blocks).
    GuardSwitch {
        /// Selector value mapped to `targets[0]`.
        low: i64,
        /// Decoded jump table.
        targets: Box<[u32]>,
        /// Decoded out-of-range target.
        default: u32,
        /// Decoded marker the trace expects.
        expected: u32,
        /// Selector register.
        selector: Reg,
        /// Side-exit record.
        exit: u32,
        /// Pre-evaluation fuel weight.
        pre: u32,
    },
    /// Static call: materialize `image` (arguments cross the real
    /// stack), set the caller's continuation pc, push the callee frame.
    EnterStatic {
        /// The callee.
        callee: FuncId,
        /// Decoded continuation pc in the caller.
        ret: u32,
        /// Frame image (all live values).
        image: u32,
        /// Fuel weight.
        w: u32,
    },
    /// Virtual call with a receiver guard; on pass, materializes the
    /// exit's image and pushes the callee frame.
    GuardVirtual {
        /// Vtable slot.
        slot: u16,
        /// Argument count including the receiver.
        argc: u16,
        /// Receiver register.
        recv: Reg,
        /// Callee the trace recorded.
        expected: FuncId,
        /// Decoded continuation pc in the caller.
        ret: u32,
        /// Side-exit record (its image doubles as the call
        /// materialization).
        exit: u32,
        /// Pre-evaluation fuel weight.
        pre: u32,
    },
    /// In-trace return whose continuation was proven statically: pop the
    /// callee frame; the return value (if any) stays in a register.
    RetStatic {
        /// Fuel weight.
        w: u32,
    },
    /// Return at the trace's entry depth: runtime continuation guard,
    /// then pop the frame and push the value onto the *real* caller
    /// stack.
    GuardReturn {
        /// Whether a value is returned.
        has_value: bool,
        /// Return-value register (unused when `has_value` is false).
        retval: Reg,
        /// The continuation block the trace recorded.
        expected: BlockId,
        /// Side-exit record.
        exit: u32,
        /// Pre-evaluation fuel weight.
        pre: u32,
    },
    /// The final block's terminator: materialize the exit's image,
    /// re-anchor the pc, and execute the original decoded op with full
    /// interpreter semantics; the trace then completes.
    Finish {
        /// The decoded terminator.
        op: DOp,
        /// Exit record carrying the resume pc and frame image.
        exit: u32,
        /// Pre-execution fuel weight.
        pre: u32,
    },
}

/// Per-trace lowering statistics, aggregated by the engine like
/// [`crate::fuse::FuseStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegStats {
    /// Compiled (stack) instructions before lowering.
    pub before: usize,
    /// Register instructions after lowering.
    pub after: usize,
    /// Virtual registers allocated (register-file size).
    pub regs: u64,
    /// Stack ops eliminated outright (loads of renamed locals, stores,
    /// constants, stack shuffles, jumps).
    pub eliminated: u64,
    /// Compare-and-branch pairs fused into single guard ops.
    pub guards_fused: u64,
}

/// A trace lowered to register form, ready for the engine's register
/// loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RegTrace {
    /// The cache id this was lowered from.
    pub trace_id: TraceId,
    /// The register instruction sequence.
    pub code: Vec<RInstr>,
    /// `(register, value)` pairs loaded into the register file at entry.
    pub consts: Vec<(Reg, Value)>,
    /// Side-exit records, indexed by guards.
    pub exits: Vec<RExit>,
    /// Frame images, indexed by exits and allocation/call instructions.
    pub images: Vec<FrameImage>,
    /// The source block sequence (side-exit context reconstruction and
    /// completion accounting).
    pub src_blocks: Vec<BlockId>,
    /// Source instruction count (pre-optimisation baseline).
    pub src_instrs: usize,
    /// Register-file size.
    pub num_regs: u16,
    /// Lowering statistics for this trace.
    pub stats: RegStats,
}

impl RegTrace {
    /// Number of source basic blocks.
    pub fn blocks(&self) -> usize {
        self.src_blocks.len()
    }

    /// Real byte footprint of the register code (capacities).
    pub fn memory_estimate(&self) -> usize {
        let mut bytes = self.code.capacity() * std::mem::size_of::<RInstr>()
            + self.consts.capacity() * std::mem::size_of::<(Reg, Value)>()
            + self.exits.capacity() * std::mem::size_of::<RExit>()
            + self.images.capacity() * std::mem::size_of::<FrameImage>()
            + self.src_blocks.capacity() * std::mem::size_of::<BlockId>();
        for img in &self.images {
            bytes += img.stack.len() * std::mem::size_of::<Reg>()
                + img.dirty.len() * std::mem::size_of::<(u16, Reg)>();
        }
        for r in &self.code {
            if let RInstr::GuardSwitch { targets, .. } = r {
                bytes += targets.len() * 4;
            }
        }
        bytes
    }
}

/// A published trace artifact: the register form when lowering
/// succeeded, the decoded stack form otherwise. Both the private cache
/// and the shared cache store this type, so the register form flows
/// through frozen publication unchanged (its constants are inline — no
/// pool interning).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceArtifact {
    /// Register-lowered form (the fast path).
    Reg(RegTrace),
    /// Decoded stack form (fallback).
    Decoded(LoweredTrace),
}

impl TraceArtifact {
    /// The source block sequence.
    pub fn src_blocks(&self) -> &[BlockId] {
        match self {
            TraceArtifact::Reg(rt) => &rt.src_blocks,
            TraceArtifact::Decoded(lt) => &lt.src_blocks,
        }
    }

    /// Real byte footprint of the artifact.
    pub fn memory_estimate(&self) -> usize {
        match self {
            TraceArtifact::Reg(rt) => rt.memory_estimate(),
            TraceArtifact::Decoded(lt) => lt.memory_estimate(),
        }
    }
}

/// One lowering context: the function a stretch of trace code executes
/// in, with its local rename table and abstract stack.
struct Ctx {
    func: FuncId,
    /// `slot -> (register, dirty)`; `dirty` means the register holds a
    /// newer value than `frame.locals[slot]`.
    rename: Vec<Option<(Reg, bool)>>,
    /// Abstract operand stack, bottom to top, as registers.
    stack: Vec<Reg>,
    /// Real entry-stack values below the abstract stack, not yet pulled.
    pending: u32,
    /// For saved caller contexts: the continuation block the paired
    /// return must target.
    cont_block: BlockId,
}

impl Ctx {
    fn new(program: &Program, func: FuncId) -> Ctx {
        Ctx {
            func,
            rename: vec![None; program.function(func).num_locals() as usize],
            stack: Vec::new(),
            pending: 0,
            cont_block: BlockId::new(func, 0),
        }
    }
}

struct Lowering<'a> {
    program: &'a Program,
    decoded: &'a DecodedProgram,
    code: Vec<RInstr>,
    consts: Vec<(Reg, Value)>,
    exits: Vec<RExit>,
    images: Vec<FrameImage>,
    ctx: Ctx,
    callers: Vec<Ctx>,
    depths: HashMap<FuncId, Vec<Option<u32>>>,
    next_reg: u32,
    /// Accumulated fuel weight of eliminated ops since the last emitted
    /// weighted instruction.
    pending_w: u32,
    /// Source blocks fully processed so far (block-ending `TInstr`s).
    block_idx: u32,
    eliminated: u64,
    guards_fused: u64,
}

impl<'a> Lowering<'a> {
    fn fresh(&mut self) -> Option<Reg> {
        if self.next_reg >= u16::MAX as u32 {
            return None;
        }
        let r = self.next_reg as Reg;
        self.next_reg += 1;
        Some(r)
    }

    /// Register holding `v`, deduplicated bit-exactly.
    fn const_reg(&mut self, v: Value) -> Option<Reg> {
        let same = |a: &Value| match (a, &v) {
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Null, Value::Null) => true,
            _ => false,
        };
        if let Some(&(r, _)) = self.consts.iter().find(|(_, a)| same(a)) {
            return Some(r);
        }
        let r = self.fresh()?;
        self.consts.push((r, v));
        Some(r)
    }

    /// Accounts one eliminated source instruction: its fuel folds into
    /// the next emitted instruction's weight.
    fn elim(&mut self) {
        self.pending_w += 1;
        self.eliminated += 1;
    }

    fn take_w(&mut self) -> u32 {
        let w = self.pending_w + 1;
        self.pending_w = 0;
        w
    }

    fn take_pre(&mut self) -> u32 {
        std::mem::take(&mut self.pending_w)
    }

    /// Pops one real entry-stack value into a fresh register; it becomes
    /// the new *bottom* of the abstract stack.
    fn pull(&mut self) -> Option<()> {
        if self.ctx.pending == 0 {
            // Verified code cannot underflow its entry depth.
            return None;
        }
        let dst = self.fresh()?;
        self.code.push(RInstr::PullStack { dst });
        self.ctx.pending -= 1;
        self.ctx.stack.insert(0, dst);
        Some(())
    }

    fn ensure(&mut self, n: usize) -> Option<()> {
        while self.ctx.stack.len() < n {
            self.pull()?;
        }
        Some(())
    }

    fn pop1(&mut self) -> Option<Reg> {
        self.ensure(1)?;
        self.ctx.stack.pop()
    }

    /// Snapshots the current frame image.
    fn image(&mut self) -> u32 {
        let dirty: Vec<(u16, Reg)> = self
            .ctx
            .rename
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| match e {
                Some((r, true)) => Some((slot as u16, *r)),
                _ => None,
            })
            .collect();
        self.images.push(FrameImage {
            base: self.ctx.pending,
            stack: self.ctx.stack.clone().into_boxed_slice(),
            dirty: dirty.into_boxed_slice(),
        });
        (self.images.len() - 1) as u32
    }

    /// Builds a side-exit record anchored at source `(func, pc)` with
    /// the current frame image and block accounting.
    fn exit_for(&mut self, func: FuncId, pc: u32) -> u32 {
        let image = self.image();
        let df = self.decoded.func(func);
        let dpc = df.pc_map[pc as usize];
        self.exits.push(RExit {
            func,
            dpc,
            block: df.block_of[dpc as usize],
            blocks_done: self.block_idx,
            image,
        });
        (self.exits.len() - 1) as u32
    }

    /// Marks every renamed local clean — called after an emitted
    /// instruction materializes the frame at runtime.
    fn mark_clean(&mut self) {
        for e in self.ctx.rename.iter_mut().flatten() {
            e.1 = false;
        }
    }

    /// Entry stack depth of `block`'s first instruction, from the
    /// verifier's depth map.
    fn entry_depth(&mut self, block: BlockId) -> Option<u32> {
        let program = self.program;
        let depths = self
            .depths
            .entry(block.func)
            .or_insert_with(|| stack_depths(program, block.func));
        let start = program.function(block.func).block(block.block).start;
        depths[start as usize]
    }

    /// Switches into a callee context after a call returning to decoded
    /// pc `ret`, saving the caller. `argc` is the callee's total
    /// argument count. At runtime the call instruction materializes the
    /// caller's image (abstract values land on the real stack) and the
    /// frame push pops `argc` of them into the callee's locals — so the
    /// callee starts with its shallow argument slots renamed *clean* to
    /// the registers that fed them, and the caller resumes with
    /// everything real.
    fn enter_callee(&mut self, callee: FuncId, argc: u16, ret: u32) {
        let abs_len = self.ctx.stack.len();
        let k = (argc as usize).min(abs_len);
        let mut callee_ctx = Ctx::new(self.program, callee);
        for j in 0..k {
            // Arguments deeper than the abstract stack were already real;
            // they reach the callee's low slots through the real stack.
            let slot = argc as usize - k + j;
            let r = self.ctx.stack[abs_len - k + j];
            callee_ctx.rename[slot] = Some((r, false));
        }
        let caller_func = self.ctx.func;
        debug_assert!(self.ctx.pending as usize + abs_len >= argc as usize);
        self.ctx.pending = self.ctx.pending + abs_len as u32 - argc as u32;
        self.ctx.stack.clear();
        self.mark_clean();
        self.ctx.cont_block = BlockId::new(
            caller_func,
            self.decoded.func(caller_func).block_of[ret as usize],
        );
        let saved = std::mem::replace(&mut self.ctx, callee_ctx);
        self.callers.push(saved);
    }
}

/// Lowers a compiled trace to register form. `decoded` is read-only —
/// the register form pre-resolves constants inline, so this pass never
/// interns into the pools and the same lowering serves both private and
/// frozen (shared) publication.
///
/// Returns `None` when the trace cannot be expressed in register form
/// (see the module docs); the caller falls back to the decoded lowering.
pub fn lower_reg(
    program: &Program,
    decoded: &DecodedProgram,
    ct: &CompiledTrace,
) -> Option<RegTrace> {
    let first = *ct.src_blocks.first()?;
    let mut lo = Lowering {
        program,
        decoded,
        code: Vec::new(),
        consts: Vec::new(),
        exits: Vec::new(),
        images: Vec::new(),
        ctx: Ctx::new(program, first.func),
        callers: Vec::new(),
        depths: HashMap::new(),
        next_reg: 0,
        pending_w: 0,
        block_idx: 0,
        eliminated: 0,
        guards_fused: 0,
    };
    lo.ctx.pending = lo.entry_depth(first)?;

    for t in &ct.code {
        match t {
            TInstr::Op(ins) => lo.lower_op(ins)?,
            TInstr::Jump { .. } => {
                // A goto costs one instruction but transfers no data; its
                // fuel folds into the next weight.
                lo.elim();
                lo.block_idx += 1;
            }
            TInstr::FallThrough => {
                // Not an instruction — a block-boundary marker.
                lo.block_idx += 1;
            }
            TInstr::GuardCond {
                kind,
                expected_taken,
                target: _,
                func,
                pc,
            } => {
                lo.ensure(kind.arity())?;
                let n = lo.ctx.stack.len();
                let (a, b) = if kind.arity() == 2 {
                    (lo.ctx.stack[n - 2], lo.ctx.stack[n - 1])
                } else {
                    (lo.ctx.stack[n - 1], lo.ctx.stack[n - 1])
                };
                // The exit image keeps the operands on the abstract
                // stack: a failed guard resumes at the branch, which
                // re-pops them.
                let exit = lo.exit_for(*func, *pc);
                for _ in 0..kind.arity() {
                    lo.ctx.stack.pop();
                }
                let pre = lo.take_pre();
                lo.code.push(RInstr::GuardCond {
                    kind: *kind,
                    a,
                    b,
                    expected_taken: *expected_taken,
                    exit,
                    pre,
                });
                lo.guards_fused += 1;
                lo.block_idx += 1;
            }
            TInstr::GuardSwitch {
                low,
                targets,
                default,
                expected_pc,
                func,
                pc,
            } => {
                lo.ensure(1)?;
                let selector = *lo.ctx.stack.last().expect("ensured");
                let exit = lo.exit_for(*func, *pc);
                lo.ctx.stack.pop();
                let pre = lo.take_pre();
                let df = lo.decoded.func(*func);
                lo.code.push(RInstr::GuardSwitch {
                    low: *low,
                    targets: targets.iter().map(|&t| df.block_entry(t)).collect(),
                    default: df.block_entry(*default),
                    expected: df.block_entry(*expected_pc),
                    selector,
                    exit,
                    pre,
                });
                lo.guards_fused += 1;
                lo.block_idx += 1;
            }
            TInstr::EnterStatic { callee, func, pc } => {
                let argc = program.function(*callee).num_params();
                let image = lo.image();
                let ret = lo.decoded.func(*func).pc_map[*pc as usize] + 1;
                let w = lo.take_w();
                lo.code.push(RInstr::EnterStatic {
                    callee: *callee,
                    ret,
                    image,
                    w,
                });
                lo.enter_callee(*callee, argc, ret);
                lo.block_idx += 1;
            }
            TInstr::GuardVirtual {
                slot,
                argc,
                expected,
                func,
                pc,
            } => {
                lo.ensure(*argc as usize)?;
                let n = lo.ctx.stack.len();
                let recv = lo.ctx.stack[n - *argc as usize];
                let exit = lo.exit_for(*func, *pc);
                let ret = lo.decoded.func(*func).pc_map[*pc as usize] + 1;
                let pre = lo.take_pre();
                lo.code.push(RInstr::GuardVirtual {
                    slot: *slot,
                    argc: *argc,
                    recv,
                    expected: *expected,
                    ret,
                    exit,
                    pre,
                });
                lo.enter_callee(*expected, *argc, ret);
                lo.block_idx += 1;
            }
            TInstr::GuardReturn {
                expected,
                has_value,
                func,
                pc,
            } => {
                if lo.callers.is_empty() {
                    // Return at the trace's entry depth: the caller frame
                    // is real, so the continuation stays a runtime guard.
                    if *has_value {
                        lo.ensure(1)?;
                    }
                    let exit = lo.exit_for(*func, *pc);
                    let retval = if *has_value {
                        lo.ctx.stack.pop().expect("ensured")
                    } else {
                        0
                    };
                    let pre = lo.take_pre();
                    lo.code.push(RInstr::GuardReturn {
                        has_value: *has_value,
                        retval,
                        expected: *expected,
                        exit,
                        pre,
                    });
                    // Continue in the (real) caller frame: nothing
                    // renamed, the full continuation depth is real.
                    let pending = lo.entry_depth(*expected)?;
                    lo.ctx = Ctx::new(program, expected.func);
                    lo.ctx.pending = pending;
                    lo.block_idx += 1;
                } else {
                    // The caller is on the lowering stack: the
                    // continuation is statically known. A recorded
                    // continuation that contradicts the call site cannot
                    // execute — refuse and let the decoded form handle it.
                    if lo.callers.last().expect("nonempty").cont_block != *expected {
                        return None;
                    }
                    let retval = if *has_value { Some(lo.pop1()?) } else { None };
                    let w = lo.take_w();
                    lo.code.push(RInstr::RetStatic { w });
                    lo.ctx = lo.callers.pop().expect("nonempty");
                    if let Some(r) = retval {
                        lo.ctx.stack.push(r);
                    }
                    lo.block_idx += 1;
                }
            }
            TInstr::Finish { instr: _, func, pc } => {
                let exit = lo.exit_for(*func, *pc);
                let pre = lo.take_pre();
                let dpc = lo.exits[exit as usize].dpc;
                lo.code.push(RInstr::Finish {
                    op: lo.decoded.func(*func).code[dpc as usize],
                    exit,
                    pre,
                });
                lo.block_idx += 1;
            }
            // Lowering runs on pre-fusion code; a fused group cannot
            // appear. Refuse rather than trust.
            TInstr::Fused(_) => return None,
        }
    }
    debug_assert_eq!(lo.pending_w, 0, "Finish consumes all pending weight");
    debug_assert_eq!(lo.block_idx as usize, ct.src_blocks.len());

    let stats = RegStats {
        before: ct.code.len(),
        after: lo.code.len(),
        regs: lo.next_reg as u64,
        eliminated: lo.eliminated,
        guards_fused: lo.guards_fused,
    };
    Some(RegTrace {
        trace_id: ct.trace_id,
        code: lo.code,
        consts: lo.consts,
        exits: lo.exits,
        images: lo.images,
        src_blocks: ct.src_blocks.clone(),
        src_instrs: ct.src_instrs,
        num_regs: lo.next_reg as u16,
        stats,
    })
}

impl<'a> Lowering<'a> {
    /// Lowers one straight-line source instruction.
    fn lower_op(&mut self, ins: &Instr) -> Option<()> {
        if let Some(op) = RBin::of(ins) {
            self.ensure(2)?;
            let b = self.ctx.stack.pop().expect("ensured");
            let a = self.ctx.stack.pop().expect("ensured");
            let dst = self.fresh()?;
            let w = self.take_w();
            self.code.push(RInstr::Bin { op, a, b, dst, w });
            self.ctx.stack.push(dst);
            return Some(());
        }
        match ins {
            Instr::IConst(v) => {
                let r = self.const_reg(Value::Int(*v))?;
                self.ctx.stack.push(r);
                self.elim();
            }
            Instr::FConst(v) => {
                let r = self.const_reg(Value::Float(*v))?;
                self.ctx.stack.push(r);
                self.elim();
            }
            Instr::ConstNull => {
                let r = self.const_reg(Value::Null)?;
                self.ctx.stack.push(r);
                self.elim();
            }
            Instr::Load(slot) => match self.ctx.rename[*slot as usize] {
                Some((r, _)) => {
                    self.ctx.stack.push(r);
                    self.elim();
                }
                None => {
                    let dst = self.fresh()?;
                    let w = self.take_w();
                    self.code.push(RInstr::LoadLocal {
                        slot: *slot,
                        dst,
                        w,
                    });
                    self.ctx.rename[*slot as usize] = Some((dst, false));
                    self.ctx.stack.push(dst);
                }
            },
            Instr::Store(slot) => {
                let r = self.pop1()?;
                self.ctx.rename[*slot as usize] = Some((r, true));
                self.elim();
            }
            Instr::IInc(slot, imm) => {
                let dst = self.fresh()?;
                let w = self.take_w();
                match self.ctx.rename[*slot as usize] {
                    Some((src, _)) => self.code.push(RInstr::IncReg {
                        src,
                        dst,
                        imm: *imm,
                        w,
                    }),
                    None => self.code.push(RInstr::IncLocal {
                        slot: *slot,
                        dst,
                        imm: *imm,
                        w,
                    }),
                }
                self.ctx.rename[*slot as usize] = Some((dst, true));
            }
            Instr::Dup => {
                self.ensure(1)?;
                let r = *self.ctx.stack.last().expect("ensured");
                self.ctx.stack.push(r);
                self.elim();
            }
            Instr::Dup2 => {
                self.ensure(2)?;
                let n = self.ctx.stack.len();
                let a = self.ctx.stack[n - 2];
                let b = self.ctx.stack[n - 1];
                self.ctx.stack.push(a);
                self.ctx.stack.push(b);
                self.elim();
            }
            Instr::Pop => {
                self.pop1()?;
                self.elim();
            }
            Instr::Swap => {
                self.ensure(2)?;
                let n = self.ctx.stack.len();
                self.ctx.stack.swap(n - 1, n - 2);
                self.elim();
            }
            Instr::INeg | Instr::FNeg | Instr::I2F | Instr::F2I => {
                let op = match ins {
                    Instr::INeg => RUn::INeg,
                    Instr::FNeg => RUn::FNeg,
                    Instr::I2F => RUn::I2F,
                    _ => RUn::F2I,
                };
                let a = self.pop1()?;
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::Un { op, a, dst, w });
                self.ctx.stack.push(dst);
            }
            Instr::Intrinsic(i) => {
                let argc = i.arg_count();
                self.ensure(argc)?;
                let (a, b) = if argc == 2 {
                    let b = self.ctx.stack.pop().expect("ensured");
                    let a = self.ctx.stack.pop().expect("ensured");
                    (a, b)
                } else {
                    let a = self.ctx.stack.pop().expect("ensured");
                    (a, a)
                };
                let dst = if i.returns_value() { self.fresh()? } else { 0 };
                let w = self.take_w();
                self.code.push(RInstr::Intrinsic {
                    i: *i,
                    a,
                    b,
                    dst,
                    w,
                });
                if i.returns_value() {
                    self.ctx.stack.push(dst);
                }
            }
            Instr::GetField(field) => {
                let obj = self.pop1()?;
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::GetField {
                    obj,
                    field: *field,
                    dst,
                    w,
                });
                self.ctx.stack.push(dst);
            }
            Instr::PutField(field) => {
                self.ensure(2)?;
                let val = self.ctx.stack.pop().expect("ensured");
                let obj = self.ctx.stack.pop().expect("ensured");
                let w = self.take_w();
                self.code.push(RInstr::PutField {
                    obj,
                    val,
                    field: *field,
                    w,
                });
            }
            Instr::ALoad => {
                self.ensure(2)?;
                let idx = self.ctx.stack.pop().expect("ensured");
                let arr = self.ctx.stack.pop().expect("ensured");
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::ALoad { arr, idx, dst, w });
                self.ctx.stack.push(dst);
            }
            Instr::AStore => {
                self.ensure(3)?;
                let val = self.ctx.stack.pop().expect("ensured");
                let idx = self.ctx.stack.pop().expect("ensured");
                let arr = self.ctx.stack.pop().expect("ensured");
                let w = self.take_w();
                self.code.push(RInstr::AStore { arr, idx, val, w });
            }
            Instr::ArrayLen => {
                let arr = self.pop1()?;
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::ArrayLen { arr, dst, w });
                self.ctx.stack.push(dst);
            }
            Instr::New(class) => {
                // Collection happens before the push: image the live
                // frame as-is.
                let image = self.image();
                let nfields = self.program.class(*class).num_fields();
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::NewObj {
                    class: *class,
                    nfields,
                    dst,
                    image,
                    w,
                });
                self.ctx.stack.push(dst);
                self.mark_clean();
            }
            Instr::NewArray => {
                // The interpreter pops the length before collecting.
                let len = self.pop1()?;
                let image = self.image();
                let dst = self.fresh()?;
                let w = self.take_w();
                self.code.push(RInstr::NewArray { len, dst, image, w });
                self.ctx.stack.push(dst);
                self.mark_clean();
            }
            Instr::Nop => self.elim(),
            // Control instructions never appear as TInstr::Op.
            Instr::IfICmp(..)
            | Instr::IfI(..)
            | Instr::IfFCmp(..)
            | Instr::IfNull(_)
            | Instr::IfNonNull(_)
            | Instr::Goto(_)
            | Instr::TableSwitch { .. }
            | Instr::InvokeStatic(_)
            | Instr::InvokeVirtual { .. }
            | Instr::Return
            | Instr::ReturnVoid => return None,
            // Binops were handled above.
            _ => unreachable!("binop handled by RBin::of"),
        }
        Some(())
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

/// Human-readable listing of a register trace, for golden pinning and
/// review: code, constant table, and exit records with their frame
/// images.
pub fn disassemble(rt: &RegTrace) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "reg trace: {} rinstrs, {} regs, {} consts, {} exits",
        rt.code.len(),
        rt.num_regs,
        rt.consts.len(),
        rt.exits.len()
    );
    for &(r, v) in &rt.consts {
        let c = match v {
            Value::Int(i) => format!("int {i}"),
            Value::Float(f) => format!("float {f}"),
            Value::Null => "null".into(),
            Value::Ref(_) => unreachable!("no reference constants"),
        };
        let _ = writeln!(s, "  const r{r} = {c}");
    }
    for (i, r) in rt.code.iter().enumerate() {
        let line = match r {
            RInstr::PullStack { dst } => format!("r{dst} = pull"),
            RInstr::LoadLocal { slot, dst, w } => format!("r{dst} = local {slot} [w={w}]"),
            RInstr::IncLocal { slot, dst, imm, w } => {
                format!("r{dst} = local {slot} + {imm} [w={w}]")
            }
            RInstr::IncReg { src, dst, imm, w } => format!("r{dst} = r{src} + {imm} [w={w}]"),
            RInstr::Bin { op, a, b, dst, w } => {
                format!("r{dst} = {} r{a}, r{b} [w={w}]", op.name())
            }
            RInstr::Un { op, a, dst, w } => format!("r{dst} = {} r{a} [w={w}]", op.name()),
            RInstr::Intrinsic { i, a, b, dst, w } => {
                let name = format!("{i:?}").to_lowercase();
                if i.returns_value() {
                    if i.arg_count() == 2 {
                        format!("r{dst} = {name} r{a}, r{b} [w={w}]")
                    } else {
                        format!("r{dst} = {name} r{a} [w={w}]")
                    }
                } else {
                    format!("{name} r{a} [w={w}]")
                }
            }
            RInstr::GetField { obj, field, dst, w } => {
                format!("r{dst} = field {field} of r{obj} [w={w}]")
            }
            RInstr::PutField { obj, val, field, w } => {
                format!("field {field} of r{obj} = r{val} [w={w}]")
            }
            RInstr::ALoad { arr, idx, dst, w } => format!("r{dst} = r{arr}[r{idx}] [w={w}]"),
            RInstr::AStore { arr, idx, val, w } => format!("r{arr}[r{idx}] = r{val} [w={w}]"),
            RInstr::ArrayLen { arr, dst, w } => format!("r{dst} = len r{arr} [w={w}]"),
            RInstr::NewObj {
                class,
                nfields,
                dst,
                image,
                w,
            } => format!("r{dst} = new class#{} fields={nfields} img={image} [w={w}]", class.0),
            RInstr::NewArray { len, dst, image, w } => {
                format!("r{dst} = newarray r{len} img={image} [w={w}]")
            }
            RInstr::GuardCond {
                kind,
                a,
                b,
                expected_taken,
                exit,
                pre,
            } => {
                let k = match kind {
                    CondKind::ICmp(op) => format!("icmp.{} r{a}, r{b}", cmp_name(*op)),
                    CondKind::IZero(op) => format!("izero.{} r{a}", cmp_name(*op)),
                    CondKind::FCmp(op) => format!("fcmp.{} r{a}, r{b}", cmp_name(*op)),
                    CondKind::Null => format!("null r{a}"),
                    CondKind::NonNull => format!("nonnull r{a}"),
                };
                format!(
                    "guard {k} == {expected_taken} else exit {exit} [pre={pre}]"
                )
            }
            RInstr::GuardSwitch {
                selector,
                expected,
                exit,
                pre,
                ..
            } => format!(
                "guard switch r{selector} -> marker {expected} else exit {exit} [pre={pre}]"
            ),
            RInstr::EnterStatic {
                callee,
                ret,
                image,
                w,
            } => format!("call fn#{} ret={ret} img={image} [w={w}]", callee.0),
            RInstr::GuardVirtual {
                slot,
                argc,
                recv,
                expected,
                ret,
                exit,
                pre,
            } => format!(
                "guard vcall slot {slot} argc {argc} recv r{recv} == fn#{} ret={ret} else exit {exit} [pre={pre}]",
                expected.0
            ),
            RInstr::RetStatic { w } => format!("ret.static [w={w}]"),
            RInstr::GuardReturn {
                has_value,
                retval,
                expected,
                exit,
                pre,
            } => {
                let v = if *has_value {
                    format!(" r{retval}")
                } else {
                    String::new()
                };
                format!("guard ret{v} -> {expected} else exit {exit} [pre={pre}]")
            }
            RInstr::Finish { exit, pre, .. } => format!("finish exit {exit} [pre={pre}]"),
        };
        let _ = writeln!(s, "{i:4}: {line}");
    }
    for (i, e) in rt.exits.iter().enumerate() {
        let img = &rt.images[e.image as usize];
        let stack: Vec<String> = img.stack.iter().map(|r| format!("r{r}")).collect();
        let dirty: Vec<String> = img
            .dirty
            .iter()
            .map(|(s, r)| format!("{s}<-r{r}"))
            .collect();
        let _ = writeln!(
            s,
            "exit {i}: fn#{} dpc={} block={} done={} base={} stack=[{}] dirty=[{}]",
            e.func.0,
            e.dpc,
            e.block,
            e.blocks_done,
            img.base,
            stack.join(" "),
            dirty.join(" ")
        );
    }
    s
}
